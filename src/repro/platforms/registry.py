"""Factories for the seven evaluated platforms, keyed by paper label."""

from __future__ import annotations

from repro.platforms.base import BandwidthPlatform, InDramPlatform, Platform
from repro.platforms.params import (
    AMBIT_CYCLES,
    AMBIT_POWER,
    CPU_POWER,
    CPU_SPEC,
    DRISA_1T1C_CYCLES,
    DRISA_1T1C_POWER,
    DRISA_3T1C_CYCLES,
    DRISA_3T1C_POWER,
    GPU_POWER,
    GPU_SPEC,
    HMC_POWER,
    HMC_SPEC,
    PIM_ASSEMBLER_CYCLES,
    PIM_ASSEMBLER_POWER,
)


def pim_assembler() -> InDramPlatform:
    """PIM-Assembler (paper label ``P-A``)."""
    return InDramPlatform(
        name="P-A",
        cycles=PIM_ASSEMBLER_CYCLES,
        power=PIM_ASSEMBLER_POWER,
    )


def ambit() -> InDramPlatform:
    """Ambit: majority/AND/OR in-DRAM platform, 7-cycle X(N)OR."""
    return InDramPlatform(name="Ambit", cycles=AMBIT_CYCLES, power=AMBIT_POWER)


def drisa_1t1c() -> InDramPlatform:
    """DRISA-1T1C (paper label ``D1``): NOR-based in-DRAM logic."""
    return InDramPlatform(
        name="D1",
        cycles=DRISA_1T1C_CYCLES,
        power=DRISA_1T1C_POWER,
        # DRISA-1T1C re-organises arrays for higher internal parallelism
        # (CAL: overall assembly slowdown 2.8x vs P-A despite the 1.9x
        # micro-benchmark gap).
        lane_factor=0.81,
    )


def drisa_3t1c() -> InDramPlatform:
    """DRISA-3T1C (paper label ``D3``): 3T1C AND-based in-DRAM logic."""
    return InDramPlatform(
        name="D3",
        cycles=DRISA_3T1C_CYCLES,
        power=DRISA_3T1C_POWER,
        # The 3T1C array trades density for in-cell compute, so more
        # arrays compute concurrently (CAL: overall slowdown 2.5x vs
        # P-A despite the 3.7x micro-benchmark gap).
        lane_factor=2.35,
    )


def cpu() -> BandwidthPlatform:
    """Intel Core-i7 6700, dual-channel DDR4."""
    return BandwidthPlatform(
        name="CPU",
        spec=CPU_SPEC,
        power=CPU_POWER,
        # CAL: a scalar/AVX2 hash loop on 4 cores sustains ~45 M
        # queries/s at k=16.
        query_base_ns=22.0,
        compute_fraction=0.30,
    )


def gpu() -> BandwidthPlatform:
    """NVIDIA GTX 1080Ti."""
    return BandwidthPlatform(
        name="GPU",
        spec=GPU_SPEC,
        power=GPU_POWER,
        # CAL: the GPU-Euler-style baseline sustains ~60 M k-mer
        # queries/s at k=16 (atomic-contention bound); tuned so the
        # hashmap stage is >60% of GPU time and the P-A speed-up grows
        # from ~5.2x (k=16) to ~9.8x (k=32) as in Fig. 9a.
        query_base_ns=19.0,
        # keys wider than the native 32-bit word need two-word atomics
        # and double the probe traffic -> slightly super-linear growth
        key_width_exponent=1.26,
        compute_fraction=0.40,
    )


def hmc() -> BandwidthPlatform:
    """Hybrid Memory Cube 2.0 with near-vault atomics."""
    return BandwidthPlatform(
        name="HMC",
        spec=HMC_SPEC,
        power=HMC_POWER,
        query_base_ns=10.0,
        compute_fraction=0.40,
    )


_FACTORIES = {
    "P-A": pim_assembler,
    "Ambit": ambit,
    "D1": drisa_1t1c,
    "D3": drisa_3t1c,
    "CPU": cpu,
    "GPU": gpu,
    "HMC": hmc,
}


def available_platforms() -> list[str]:
    return list(_FACTORIES)


def make_platform(name: str) -> Platform:
    """Instantiate a platform by its paper label."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; available: {available_platforms()}"
        ) from None
    return factory()


def microbenchmark_platforms() -> list[Platform]:
    """The Fig. 3b line-up, in the paper's plotting order."""
    return [make_platform(n) for n in ("CPU", "GPU", "HMC", "Ambit", "D1", "D3", "P-A")]


def assembly_platforms() -> list[Platform]:
    """The Fig. 9 line-up (GPU + the in-DRAM platforms)."""
    return [make_platform(n) for n in ("GPU", "P-A", "Ambit", "D3", "D1")]
