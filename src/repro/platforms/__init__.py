"""Analytic performance models of the compared platforms.

CPU / GPU / HMC 2.0 are bandwidth-bound von-Neumann models; Ambit /
DRISA-1T1C / DRISA-3T1C / PIM-Assembler are AAP-cycle-count in-DRAM
models.  Constants and their provenance live in
:mod:`repro.platforms.params`; instantiation goes through
:mod:`repro.platforms.registry`.
"""

from repro.platforms.base import (
    BandwidthPlatform,
    InDramPlatform,
    Platform,
    ThroughputPoint,
)
from repro.platforms.params import (
    AAP_NS,
    DEVICE_ACTIVATION_BITS,
    BandwidthSpec,
    PimCycleCosts,
    PowerSpec,
)
from repro.platforms.registry import (
    ambit,
    assembly_platforms,
    available_platforms,
    cpu,
    drisa_1t1c,
    drisa_3t1c,
    gpu,
    hmc,
    make_platform,
    microbenchmark_platforms,
    pim_assembler,
)

__all__ = [
    "BandwidthPlatform",
    "InDramPlatform",
    "Platform",
    "ThroughputPoint",
    "AAP_NS",
    "DEVICE_ACTIVATION_BITS",
    "BandwidthSpec",
    "PimCycleCosts",
    "PowerSpec",
    "ambit",
    "assembly_platforms",
    "available_platforms",
    "cpu",
    "drisa_1t1c",
    "drisa_3t1c",
    "gpu",
    "hmc",
    "make_platform",
    "microbenchmark_platforms",
    "pim_assembler",
]
