"""Platform abstractions for the cross-platform comparisons.

Two families cover all seven evaluated platforms:

* :class:`InDramPlatform` — Ambit, DRISA-1T1C, DRISA-3T1C and
  PIM-Assembler itself: performance is cycle-count x AAP latency x
  ganged activation width, with a platform-specific cycle table
  (:class:`repro.platforms.params.PimCycleCosts`).
* :class:`BandwidthPlatform` — CPU, GPU and HMC 2.0: performance is
  bounded by (effective) memory bandwidth for streaming kernels and by
  random-access behaviour for hash probing.

Each platform also carries a :class:`~repro.platforms.params.PowerSpec`
for the Fig. 9b power comparison and exposes the primitive costs the
assembly execution model (:mod:`repro.eval.execution`) composes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.platforms.params import (
    AAP_NS,
    DEVICE_ACTIVATION_BITS,
    BandwidthSpec,
    PimCycleCosts,
    PowerSpec,
)


@dataclass(frozen=True)
class ThroughputPoint:
    """One bar of Fig. 3b: a platform's raw throughput for one op."""

    platform: str
    operation: str
    vector_bits: int
    bits_per_second: float

    @property
    def tbits_per_second(self) -> float:
        return self.bits_per_second / 1e12


class Platform(abc.ABC):
    """Common interface of all compared platforms."""

    def __init__(self, name: str, power: PowerSpec) -> None:
        self.name = name
        self.power = power

    # ----- raw micro-benchmark throughput (Fig. 3b) -------------------------

    @abc.abstractmethod
    def xnor_throughput_bps(self, vector_bits: int) -> float:
        """Sustained bulk-XNOR throughput, result bits per second."""

    @abc.abstractmethod
    def add_throughput_bps(self, vector_bits: int, word_bits: int = 32) -> float:
        """Sustained element-wise addition throughput, operand bits/s."""

    def throughput_point(
        self, operation: str, vector_bits: int, word_bits: int = 32
    ) -> ThroughputPoint:
        if operation == "xnor":
            bps = self.xnor_throughput_bps(vector_bits)
        elif operation == "add":
            bps = self.add_throughput_bps(vector_bits, word_bits)
        else:
            raise ValueError(f"unknown operation {operation!r}")
        return ThroughputPoint(self.name, operation, vector_bits, bps)

    # ----- power --------------------------------------------------------------

    def average_power_w(self, utilisation: float) -> float:
        return self.power.average_power_w(utilisation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class InDramPlatform(Platform):
    """A processing-in-DRAM platform driven by AAP cycle counts.

    Args:
        name: display name (paper labels: ``P-A``, ``Ambit``, ``D1``,
            ``D3``).
        cycles: per-operation row-cycle table.
        power: average-power model.
        activation_bits: bits engaged by one ganged AAP across the
            device (identical physical configuration for all platforms).
        lane_factor: relative number of concurrently computing
            sub-arrays vs PIM-Assembler's mapping (CAL; captures the
            different array organisations of the DRISA variants).
        aap_ns: one AAP in nanoseconds.
    """

    def __init__(
        self,
        name: str,
        cycles: PimCycleCosts,
        power: PowerSpec,
        activation_bits: int = DEVICE_ACTIVATION_BITS,
        lane_factor: float = 1.0,
        aap_ns: float = AAP_NS,
    ) -> None:
        super().__init__(name, power)
        if activation_bits <= 0:
            raise ValueError("activation_bits must be positive")
        if lane_factor <= 0:
            raise ValueError("lane_factor must be positive")
        self.cycles = cycles
        self.activation_bits = activation_bits
        self.lane_factor = lane_factor
        self.aap_ns = aap_ns

    # ----- micro-benchmarks ----------------------------------------------------

    def xnor_throughput_bps(self, vector_bits: int) -> float:
        """One bulk XNOR wave processes ``activation_bits`` in
        ``xnor_cycles (+ row_init)`` AAPs; long vectors pipeline waves
        back-to-back, so throughput is wave-size over wave-latency.

        ``lane_factor`` deliberately does NOT apply here: the paper's
        micro-benchmark pins every platform to the identical physical
        memory configuration.
        """
        if vector_bits <= 0:
            raise ValueError("vector_bits must be positive")
        cycles = self.cycles.xnor_cycles + self.cycles.row_init_cycles
        wave_ns = cycles * self.aap_ns
        return self.activation_bits / (wave_ns * 1e-9)

    def add_throughput_bps(self, vector_bits: int, word_bits: int = 32) -> float:
        """Bit-serial addition over ``word_bits`` bit planes."""
        if vector_bits <= 0 or word_bits <= 0:
            raise ValueError("sizes must be positive")
        cycles = (
            self.cycles.add_total_cycles_per_bit * word_bits
            + self.cycles.row_init_cycles
        )
        wave_ns = cycles * self.aap_ns
        # In the bit-plane layout one wave adds `activation_bits`
        # independent words (one per column stripe), i.e. it consumes
        # activation_bits * word_bits operand bits in `cycles` AAPs.
        wave_operand_bits = self.activation_bits * word_bits
        return wave_operand_bits / (wave_ns * 1e-9)

    # ----- assembly primitives ---------------------------------------------------

    def compare_ns(self) -> float:
        """One k-mer row comparison (PIM_XNOR) in one sub-array lane."""
        cycles = self.cycles.xnor_cycles + self.cycles.row_init_cycles
        return cycles * self.aap_ns

    def insert_ns(self) -> float:
        """One MEM_insert (row write through the GRB)."""
        return self.aap_ns

    def add_ns(self, word_bits: int) -> float:
        """One bulk addition over ``word_bits`` bit planes."""
        cycles = (
            self.cycles.add_total_cycles_per_bit * word_bits
            + self.cycles.row_init_cycles
        )
        return cycles * self.aap_ns

    def lanes(self, parallelism_degree: int = 1, chips: int = 1) -> float:
        """Concurrently computing 256-bit sub-array stripes."""
        if parallelism_degree <= 0 or chips <= 0:
            raise ValueError("parallelism_degree and chips must be positive")
        stripes = self.activation_bits / 256
        return stripes * self.lane_factor * parallelism_degree * chips


class BandwidthPlatform(Platform):
    """A platform whose bulk-op throughput is memory-bandwidth bound.

    Args:
        spec: bandwidth/traffic constants.
        power: average-power model.
        query_base_ns: per-hash-query overhead at k-mer width 32 bits
            (hashing + probe + atomic update) under full concurrency
            (CAL against the paper's GPU hashmap share).
        key_width_exponent: growth of the per-query cost with the key
            width in 32-bit words (CAL against the k=16 -> k=32 speedup
            trend of Fig. 9a).
        compute_fraction: share of per-query time that is computation
            rather than data movement (drives MBR/RUR, Fig. 11).
    """

    def __init__(
        self,
        name: str,
        spec: BandwidthSpec,
        power: PowerSpec,
        query_base_ns: float,
        key_width_exponent: float = 0.61,
        compute_fraction: float = 0.35,
    ) -> None:
        super().__init__(name, power)
        if query_base_ns <= 0:
            raise ValueError("query_base_ns must be positive")
        if not 0.0 < compute_fraction < 1.0:
            raise ValueError("compute_fraction must be in (0, 1)")
        self.spec = spec
        self.query_base_ns = query_base_ns
        self.key_width_exponent = key_width_exponent
        self.compute_fraction = compute_fraction

    # ----- micro-benchmarks --------------------------------------------------------

    def xnor_throughput_bps(self, vector_bits: int) -> float:
        if vector_bits <= 0:
            raise ValueError("vector_bits must be positive")
        bytes_per_result_byte = self.spec.xnor_traffic_factor
        result_bytes_per_s = (
            self.spec.effective_bandwidth_gbps * 1e9 / bytes_per_result_byte
        )
        return result_bytes_per_s * 8.0

    def add_throughput_bps(self, vector_bits: int, word_bits: int = 32) -> float:
        if vector_bits <= 0 or word_bits <= 0:
            raise ValueError("sizes must be positive")
        operand_bytes_per_s = (
            self.spec.effective_bandwidth_gbps * 1e9 / self.spec.add_traffic_factor
        )
        return operand_bytes_per_s * 8.0

    # ----- assembly primitives -------------------------------------------------------

    def query_ns(self, k: int) -> float:
        """One hash-table query (probe + insert/increment) for a k-mer."""
        if k <= 0:
            raise ValueError("k must be positive")
        key_words = max(1.0, 2.0 * k / 32.0)
        return self.query_base_ns * key_words**self.key_width_exponent

    def stream_ns_per_byte(self) -> float:
        return 1e9 / (self.spec.effective_bandwidth_gbps * 1e9)

    def random_probe_ns(self) -> float:
        """Effective cost of one uncoalesced random access at full
        concurrency: bytes-per-probe over effective bandwidth."""
        return (
            self.spec.random_access_bytes
            / (self.spec.effective_bandwidth_gbps * 1e9)
            * 1e9
        )
