"""Calibrated per-platform constants for the comparison models.

Every baseline of the paper's evaluation is reduced to a small set of
constants.  Where a value comes from a public spec it is cited; where it
is a *calibration* (an efficiency factor standing in for behaviour we
cannot measure without the authors' testbed) it is marked ``CAL`` with
the paper observation it is tuned against.  All Fig. 3b / Fig. 9 / Fig.
11 results derive from these tables plus the operation-count model in
:mod:`repro.eval.workloads` — nothing else is tuned.

Platform inventory (paper Section II-B / IV):

* **CPU** — Intel Core-i7 6700: 4 cores / 8 threads, two 64-bit
  DDR4-1866/2133 channels -> 34.1 GB/s peak external bandwidth.
* **GPU** — NVIDIA GTX 1080Ti: 3584 CUDA cores @ 1.5 GHz, 352-bit
  GDDR5X -> 484 GB/s peak device bandwidth.
* **HMC 2.0** — 32 vaults x 10 GB/s = 320 GB/s internal bandwidth.
* **Ambit** — in-DRAM majority/AND/OR; X(N)OR costs 7 memory cycles
  including row initialisation (paper Section I).
* **DRISA-1T1C (D1)** — NOR-based in-DRAM logic; X(N)OR via multiple
  NOR cycles.
* **DRISA-3T1C (D3)** — 3T1C AND-based cells; lower density and more
  cycles per X(N)OR.
* **PIM-Assembler (P-A)** — 1 compute cycle per XNOR after 2 staging
  RowClones; addition 2 cycles per bit plane after staging.

All in-DRAM platforms share the identical physical configuration the
paper prescribes (8 banks, 1024x256 sub-arrays); the per-AAP latency
comes from :mod:`repro.core.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timing import DEFAULT_TIMING

#: Bits engaged by one ganged AAP across the whole 8-bank device: a
#: standard 8 KiB DRAM row per bank (striped over the bank's active
#: MAT's sub-arrays) x 8 banks.
DEVICE_ACTIVATION_BITS: int = 8 * 64 * 1024

#: One AAP (ACTIVATE-ACTIVATE-PRECHARGE) in nanoseconds, shared by every
#: in-DRAM platform model (identical physical configuration).
AAP_NS: float = DEFAULT_TIMING.t_aap


@dataclass(frozen=True)
class PimCycleCosts:
    """Row-cycle counts per logical operation for an in-DRAM platform.

    ``xnor_cycles`` is the end-to-end cost of one bulk XNOR over the
    activation width, operand staging and any row initialisation
    included.  ``add_cycles_per_bit`` is the steady-state compute cost
    of one ripple bit-plane (sum + carry for P-A; the platform's
    full-adder sequence otherwise), and ``add_stage_cycles_per_bit``
    the per-plane operand staging overhead (zero where the platform's
    per-bit count already folds copies in).
    """

    xnor_cycles: float
    add_cycles_per_bit: float
    add_stage_cycles_per_bit: float = 0.0
    #: extra row-initialisation AAPs per operation wave (Ambit-style
    #: designs must pre-set control rows; P-A does not).
    row_init_cycles: float = 0.0

    @property
    def add_total_cycles_per_bit(self) -> float:
        return self.add_cycles_per_bit + self.add_stage_cycles_per_bit


#: PIM-Assembler: 2 RowClones + 1 two-row-activation compute; addition
#: is the 2-cycle sum/carry pair per plane (Section II-A) plus 2
#: staging RowClones per plane pair.
PIM_ASSEMBLER_CYCLES = PimCycleCosts(
    xnor_cycles=3.0, add_cycles_per_bit=2.0, add_stage_cycles_per_bit=2.0
)

#: Ambit: X(N)OR takes 7 memory cycles, row initialisation included
#: (quoted in the paper's Section I); addition through majority logic
#: needs ~10 cycles per bit (4 copies + 2 TRA + init, per the Ambit
#: full-adder construction; copies folded in).
AMBIT_CYCLES = PimCycleCosts(xnor_cycles=7.0, add_cycles_per_bit=10.0)

#: DRISA-1T1C: NOR-based logic, X(N)OR in ~5.7 cycle-equivalents.
#: CAL: reproduces the paper's P-A/D1 throughput ratio of 1.9x.
DRISA_1T1C_CYCLES = PimCycleCosts(xnor_cycles=5.7, add_cycles_per_bit=8.0)

#: DRISA-3T1C: AND-based 3T1C cells; X(N)OR in ~11.1 cycle-equivalents.
#: CAL: reproduces the paper's P-A/D3 throughput ratio of 3.7x.
DRISA_3T1C_CYCLES = PimCycleCosts(xnor_cycles=11.1, add_cycles_per_bit=14.0)


@dataclass(frozen=True)
class BandwidthSpec:
    """A von-Neumann (or near-memory) platform limited by bandwidth.

    Attributes:
        peak_bandwidth_gbps: peak GB/s of the relevant memory system.
        streaming_efficiency: achieved/peak for long unit-stride streams
            (CAL against vendor STREAM-type results).
        random_access_bytes: effective bytes consumed per random access
            (one DRAM burst incl. wasted words) — drives the hash-probe
            model of the assembly workload.
        xnor_traffic_factor: bytes moved per result byte for a bulk
            XNOR (read a, read b, write out -> 3).
        add_traffic_factor: same for element-wise addition.
    """

    peak_bandwidth_gbps: float
    streaming_efficiency: float
    random_access_bytes: float
    xnor_traffic_factor: float = 3.0
    add_traffic_factor: float = 3.0

    @property
    def effective_bandwidth_gbps(self) -> float:
        return self.peak_bandwidth_gbps * self.streaming_efficiency


#: Core-i7 6700.  The 2^27..2^29-bit micro-benchmark working sets
#: (16-64 MiB) are partially L3-resident on the 8 MiB part, so the
#: effective bulk-op bandwidth sits between DDR4-2133 dual channel
#: (34.1 GB/s) and the L3 tier.  CAL: 108 GB/s peak-equivalent
#: reproduces the paper's 8.4x average P-A/CPU XNOR throughput gap.
CPU_SPEC = BandwidthSpec(
    peak_bandwidth_gbps=108.0,
    streaming_efficiency=0.85,
    random_access_bytes=64.0,
)

#: GTX 1080Ti, 484 GB/s GDDR5X peak.  CAL: achieved efficiency 0.55
#: for the 3-stream XNOR kernel (row conflicts + write-allocate
#: behaviour), placing the GPU below every in-DRAM platform as the
#: paper's Fig. 3b discussion requires.  Random accesses waste a
#: 32-byte sector minimum; hash probing is poorly coalesced -> 128 B
#: effective per probe (CAL vs the paper's GPU hashmap share >60%).
GPU_SPEC = BandwidthSpec(
    peak_bandwidth_gbps=484.0,
    streaming_efficiency=0.55,
    random_access_bytes=128.0,
)

#: HMC 2.0: 32 vaults x 10 GB/s internal.  Near-memory atomics carry
#: read-modify-write traffic (factor 4 incl. command overhead) so the
#: effective streaming efficiency is lower than a GPU's.
HMC_SPEC = BandwidthSpec(
    peak_bandwidth_gbps=320.0,
    streaming_efficiency=0.60,
    random_access_bytes=64.0,
    xnor_traffic_factor=4.0,
    add_traffic_factor=4.0,
)


@dataclass(frozen=True)
class PowerSpec:
    """Average-power model: ``P = idle + dynamic * utilisation``.

    CAL: the dynamic terms are tuned so the Fig. 9b power levels
    reproduce the paper's (P-A ~38 W average, GPU ~7.5x higher, best
    PIM baseline ~2.8x higher).
    """

    idle_w: float
    dynamic_w: float

    def average_power_w(self, utilisation: float) -> float:
        if not 0.0 <= utilisation <= 1.0:
            raise ValueError("utilisation must be within [0, 1]")
        return self.idle_w + self.dynamic_w * utilisation


#: GTX 1080Ti board (250 W TDP) + host share under an assembly load.
GPU_POWER = PowerSpec(idle_w=55.0, dynamic_w=324.0)
#: Core-i7 package + DRAM.
CPU_POWER = PowerSpec(idle_w=20.0, dynamic_w=75.0)
#: HMC 2.0 cube (logic layer + DRAM layers).
HMC_POWER = PowerSpec(idle_w=12.0, dynamic_w=48.0)
#: Ambit: standard DRAM activations, many more of them per op.
AMBIT_POWER = PowerSpec(idle_w=8.0, dynamic_w=137.0)
#: DRISA-1T1C: high-frequency in-DRAM NOR logic, the most power-hungry
#: PIM baseline (consistent with the DRISA paper's own reporting).
DRISA_1T1C_POWER = PowerSpec(idle_w=10.0, dynamic_w=216.0)
#: DRISA-3T1C: larger cells, fewer parallel arrays.
DRISA_3T1C_POWER = PowerSpec(idle_w=9.0, dynamic_w=169.0)
#: PIM-Assembler: single-cycle X(N)OR removes most activations; the
#: paper reports ~38.4 W average across the three procedures.
PIM_ASSEMBLER_POWER = PowerSpec(idle_w=6.0, dynamic_w=43.8)
