"""Columnar packed bit-plane storage: one uint64 tensor per device.

Every sub-array used to own a private ``(rows, cols)`` ``np.uint8``
matrix — one full byte per bit, one Python object per sub-array.  The
paper's throughput model is the opposite shape: all (bank, MAT) pairs
execute the same AAP on their own sub-array *simultaneously*, so the
natural host mirror is one contiguous tensor holding the bits of every
instantiated sub-array, packed 64 columns per machine word::

    tensor[slot, row, word]            # np.uint64, word = column/64

:class:`BitPlaneStore` owns that tensor.  Sub-arrays become lightweight
view handles (a slot index plus a store reference); whole-bank kernels
(:mod:`repro.core.bitplane`, the hashmap bulk path) index the tensor
directly and compute XNOR/popcount/compare over packed words — XNOR is
``~(a ^ b)`` on uint64, popcount is ``np.bitwise_count`` (16-bit lookup
table fallback) — across all sub-arrays in one NumPy expression.

Pack boundary rule
==================

Packed words are an internal representation with one invariant: **tail
bits (column indices >= cols in the last word) are always zero.**  Only
this module, :mod:`repro.core.bitplane` and the hashmap bulk path may
touch words; everything else (controller, sense amplifier, GRB, DPU,
tests) sees unpacked 0/1 ``uint8`` rows through the pack/unpack
adapters below.  Any operation that can set tail bits (``~`` in
particular) must mask with :meth:`BitPlaneStore.col_mask` before
storing, so ``pack(unpack(x)) == x`` holds for every stored word.

Growth
======

A full default device holds 32 768 sub-arrays (~1 GB packed), so the
tensor cannot be allocated eagerly; capacity doubles as
:meth:`BitPlaneStore.new_slot` hands out slots.  Growth *reallocates
the tensor*: never hold a word view across a call that may instantiate
a sub-array.

Observability: the store maintains a ``storage.bytes`` gauge and
per-label (per-bank) ``storage.pack_rows.<label>`` /
``storage.unpack_rows.<label>`` conversion counters, so
boundary-crossing churn — the packed-era performance bug class — is
visible in ``inspect`` and ``metrics.json``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.observability.metrics import (
    STORAGE_BYTES,
    STORAGE_SLOTS,
    inc,
    set_gauge,
)

__all__ = [
    "WORD_BITS",
    "BitPlaneStore",
    "col_mask",
    "compare_many_packed",
    "hamming_many_packed",
    "pack_rows",
    "popcount_words",
    "unpack_rows",
    "words_for",
]

#: columns per packed machine word
WORD_BITS = 64

#: byte budget for the ``(Q, n, w)`` broadcast intermediates of the
#: many-query kernels; chunking over queries keeps paper-scale batches
#: (tens of thousands of queries) inside a fixed working set
DEFAULT_CHUNK_BYTES = 1 << 26

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

try:  # numpy >= 2.0
    _bit_count = np.bitwise_count
except AttributeError:  # pragma: no cover - exercised only on old numpy
    _POP16 = np.array(
        [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8
    )

    def _bit_count(words: np.ndarray) -> np.ndarray:
        w = np.asarray(words, dtype=np.uint64)
        total = _POP16[(w & np.uint64(0xFFFF)).astype(np.intp)].astype(
            np.uint8
        )
        for shift in (16, 32, 48):
            part = (w >> np.uint64(shift)) & np.uint64(0xFFFF)
            total = total + _POP16[part.astype(np.intp)]
        return total


def words_for(cols: int) -> int:
    """Packed words per row: ``ceil(cols / 64)``."""
    if cols <= 0:
        raise ValueError("cols must be positive")
    return -(-cols // WORD_BITS)


def col_mask(cols: int) -> np.ndarray:
    """``(words,)`` uint64 mask with the first ``cols`` bits set.

    The last word's mask is the tail mask: storing anything ANDed with
    this preserves the tail-bits-are-zero invariant.
    """
    w = words_for(cols)
    mask = np.full(w, _FULL, dtype=np.uint64)
    tail = cols % WORD_BITS
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def width_mask(cols: int, width: int | None) -> np.ndarray:
    """Mask covering the first ``width`` of ``cols`` columns."""
    if width is None or width >= cols:
        return col_mask(cols)
    if width <= 0:
        raise ValueError("width must be positive")
    w = words_for(cols)
    mask = np.zeros(w, dtype=np.uint64)
    full_words = width // WORD_BITS
    mask[:full_words] = _FULL
    tail = width % WORD_BITS
    if tail:
        mask[full_words] = np.uint64((1 << tail) - 1)
    return mask


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack unpacked 0/1 rows ``(..., cols)`` into ``(..., words)`` uint64.

    Column ``c`` lands in word ``c // 64``, bit ``c % 64`` (LSB-first),
    independent of host endianness; tail bits are zero by construction.
    """
    arr = np.ascontiguousarray(bits, dtype=np.uint8)
    cols = arr.shape[-1]
    words = words_for(cols)
    packed = np.packbits(arr, axis=-1, bitorder="little")
    pad = words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(arr.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    out = np.ascontiguousarray(packed).view("<u8")
    if out.dtype != np.uint64:  # pragma: no cover - big-endian host
        out = out.astype(np.uint64)
    return out


def unpack_rows(words: np.ndarray, cols: int) -> np.ndarray:
    """Unpack ``(..., words)`` uint64 back to 0/1 rows ``(..., cols)``."""
    arr = np.asarray(words)
    if arr.shape[-1] != words_for(cols):
        raise ValueError(
            f"expected {words_for(cols)} words for {cols} columns, "
            f"got {arr.shape[-1]}"
        )
    if sys.byteorder == "little":
        by = np.ascontiguousarray(arr, dtype=np.uint64).view(np.uint8)
    else:  # pragma: no cover - big-endian host
        by = arr.astype("<u8").view(np.uint8)
    return np.unpackbits(by, axis=-1, bitorder="little", count=cols)


def popcount_words(words: np.ndarray, axis: int | None = -1) -> np.ndarray:
    """Per-element popcount summed over ``axis`` (int64)."""
    counts = _bit_count(np.asarray(words, dtype=np.uint64)).astype(np.int64)
    if axis is None:
        return counts
    return counts.sum(axis=axis)


def compare_many_packed(
    q_words: np.ndarray,
    block: np.ndarray,
    mask: np.ndarray | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Boolean match matrix ``(Q, n)`` over packed words.

    A query matches a block row when their masked words are identical.
    The ``(q, n, w)`` XOR intermediate is evaluated in query chunks of
    at most ``chunk_bytes`` so paper-scale batches never materialise a
    multi-GB broadcast.
    """
    q = np.asarray(q_words, dtype=np.uint64)
    b = np.asarray(block, dtype=np.uint64)
    if mask is not None:
        b = b & mask
    n, w = b.shape
    out = np.empty((q.shape[0], n), dtype=bool)
    step = max(1, chunk_bytes // max(1, n * w * 8))
    for lo in range(0, q.shape[0], step):
        qc = q[lo : lo + step]
        if mask is not None:
            qc = qc & mask
        diff = qc[:, None, :] ^ b[None, :, :]
        out[lo : lo + step] = ~diff.any(axis=2)
    return out


def hamming_many_packed(
    q_words: np.ndarray,
    block: np.ndarray,
    mask: np.ndarray | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Hamming distances ``(Q, n)`` over packed words, query-chunked."""
    q = np.asarray(q_words, dtype=np.uint64)
    b = np.asarray(block, dtype=np.uint64)
    if mask is not None:
        b = b & mask
    n, w = b.shape
    out = np.empty((q.shape[0], n), dtype=np.int64)
    step = max(1, chunk_bytes // max(1, n * w * 8))
    for lo in range(0, q.shape[0], step):
        qc = q[lo : lo + step]
        if mask is not None:
            qc = qc & mask
        out[lo : lo + step] = popcount_words(qc[:, None, :] ^ b[None, :, :])
    return out


class BitPlaneStore:
    """Packed bit storage for every sub-array of one device.

    Layout: ``tensor[slot, row, word]`` with C-contiguous strides
    ``(rows * words, words, 1)`` uint64 elements — a whole-bank slab
    (all slots, one row range) is one basic-indexing view.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.words = words_for(cols)
        #: full-row mask; ``_col_mask[-1]`` is the tail mask
        self._col_mask = col_mask(cols)
        self._tensor = np.zeros((0, rows, self.words), dtype=np.uint64)
        self._n_slots = 0
        self._labels: list[str] = []
        #: optional SECDED sidecar: one code byte per stored word,
        #: maintained by every mutator once :meth:`enable_ecc` ran
        self._ecc: "np.ndarray | None" = None
        self._ecc_encoder = None
        self._ecc_rows_encoded = 0

    # ----- geometry / bookkeeping -----------------------------------------

    @property
    def n_slots(self) -> int:
        return self._n_slots

    @property
    def nbytes(self) -> int:
        """Bytes of the (capacity-sized) backing tensor."""
        return int(self._tensor.nbytes)

    @property
    def slot_nbytes(self) -> int:
        """Packed bytes of one sub-array's bits."""
        return self.rows * self.words * 8

    @property
    def unpacked_slot_nbytes(self) -> int:
        """What one sub-array cost in the uint8-per-bit representation."""
        return self.rows * self.cols

    @property
    def tensor(self) -> np.ndarray:
        """The live packed tensor (bulk kernels only; see the pack
        boundary rule in the module docstring).  Invalidated by
        :meth:`new_slot`."""
        return self._tensor

    @property
    def col_mask_words(self) -> np.ndarray:
        """Read-only full-row column mask ``(words,)``."""
        return self._col_mask

    def new_slot(self, label: str = "unbound") -> int:
        """Claim the next slot (growing the tensor by doubling)."""
        slot = self._n_slots
        if slot >= self._tensor.shape[0]:
            capacity = max(1, self._tensor.shape[0] * 2)
            grown = np.zeros(
                (capacity, self.rows, self.words), dtype=np.uint64
            )
            if slot:
                grown[:slot] = self._tensor
            self._tensor = grown
            if self._ecc is not None:
                grown_ecc = np.zeros(
                    (capacity, self.rows, self.words), dtype=np.uint8
                )
                if slot:
                    grown_ecc[:slot] = self._ecc
                self._ecc = grown_ecc
        self._n_slots += 1
        self._labels.append(label)
        set_gauge(STORAGE_BYTES, float(self._tensor.nbytes))
        set_gauge(STORAGE_SLOTS, float(self._n_slots))
        return slot

    def _check_slot(self, slot: int) -> int:
        if not 0 <= slot < self._n_slots:
            raise IndexError(f"slot {slot} out of range 0..{self._n_slots - 1}")
        return slot

    def _count(self, direction: str, slot: int, n: int) -> None:
        inc(f"storage.{direction}_rows", n)
        inc(f"storage.{direction}_rows.{self._labels[slot]}", n)

    # ----- SECDED sidecar (repro.core.integrity) ---------------------------

    @property
    def ecc_enabled(self) -> bool:
        return self._ecc is not None

    @property
    def ecc_plane(self) -> np.ndarray:
        """Live code-byte tensor ``[slot, row, word] -> uint8`` (the
        scrubber's view); raises when ECC was never enabled."""
        if self._ecc is None:
            raise ValueError("ECC sidecar is not enabled on this store")
        return self._ecc

    def enable_ecc(self, encoder) -> None:
        """Attach a per-word codec and encode every claimed slot.

        ``encoder`` maps a uint64 word array to a same-shape uint8 code
        array (see :func:`repro.core.integrity.encode_secded`; passed as
        a callable so storage stays import-free of the codec).  Idempotent
        re-enables simply re-encode.  Every later mutator keeps the
        touched rows' code bytes coherent and tallies the re-encoded
        rows; the integrity engine drains that tally to charge ECC_ENC
        work, so sidecar maintenance is never free.
        """
        self._ecc_encoder = encoder
        self._ecc = np.zeros(self._tensor.shape, dtype=np.uint8)
        if self._n_slots:
            self._ecc[: self._n_slots] = encoder(self._tensor[: self._n_slots])
            self._ecc_rows_encoded += self._n_slots * self.rows

    def drain_encoded_rows(self) -> int:
        """Rows re-encoded since the last drain (for ECC_ENC charging)."""
        n = self._ecc_rows_encoded
        self._ecc_rows_encoded = 0
        return n

    def _reencode_row(self, slot: int, row: int) -> None:
        if self._ecc is not None:
            self._ecc[slot, row] = self._ecc_encoder(self._tensor[slot, row])
            self._ecc_rows_encoded += 1

    def _reencode_rows(self, slot: int, start: int, stop: int) -> None:
        if self._ecc is not None:
            self._ecc[slot, start:stop] = self._ecc_encoder(
                self._tensor[slot, start:stop]
            )
            self._ecc_rows_encoded += max(0, stop - start)

    # ----- packed word access (bulk kernels) ------------------------------

    def row_words(self, slot: int, row: int) -> np.ndarray:
        """Live ``(words,)`` view of one row (no conversion)."""
        return self._tensor[self._check_slot(slot), row]

    def block_words(self, slot: int, start: int, stop: int) -> np.ndarray:
        """Live ``(stop-start, words)`` view of a row block."""
        return self._tensor[self._check_slot(slot), start:stop]

    def set_row_words(self, slot: int, row: int, words: np.ndarray) -> None:
        """Store one row of packed words (caller upholds the tail rule)."""
        self._tensor[self._check_slot(slot), row] = words
        self._reencode_row(slot, row)

    def copy_row(self, slot: int, src: int, des: int) -> None:
        """RowClone: pure word copy, no conversion."""
        t = self._tensor[self._check_slot(slot)]
        t[des] = t[src]
        if self._ecc is not None:
            # the clone carries the source's code bytes verbatim —
            # no re-encode work
            e = self._ecc[slot]
            e[des] = e[src]

    def clear_slot(self, slot: int) -> None:
        self._tensor[self._check_slot(slot)].fill(0)
        if self._ecc is not None:
            # the SECDED code of the all-zero word is zero
            self._ecc[slot].fill(0)

    # ----- unpacked uint8 boundary (controller / host path) ---------------

    def read_row(self, slot: int, row: int) -> np.ndarray:
        """One row as a fresh unpacked 0/1 uint8 array."""
        self._count("unpack", slot, 1)
        return unpack_rows(self._tensor[self._check_slot(slot), row], self.cols)

    def read_rows(self, slot: int, start: int, stop: int) -> np.ndarray:
        """A row block as fresh unpacked 0/1 uint8 rows."""
        self._count("unpack", slot, max(0, stop - start))
        return unpack_rows(
            self._tensor[self._check_slot(slot), start:stop], self.cols
        )

    def write_row(self, slot: int, row: int, bits: np.ndarray) -> None:
        """Pack one unpacked 0/1 row into storage."""
        self._count("pack", slot, 1)
        self._tensor[self._check_slot(slot), row] = pack_rows(bits)
        self._reencode_row(slot, row)

    def write_rows(self, slot: int, start: int, bits: np.ndarray) -> None:
        """Pack a ``(n, cols)`` unpacked block into rows ``start..``."""
        arr = np.asarray(bits, dtype=np.uint8)
        self._count("pack", slot, arr.shape[0])
        self._tensor[
            self._check_slot(slot), start : start + arr.shape[0]
        ] = pack_rows(arr)
        self._reencode_rows(slot, start, start + arr.shape[0])

    def snapshot_slot(self, slot: int) -> np.ndarray:
        """Full unpacked ``(rows, cols)`` copy of one slot (debug/tests);
        not counted as boundary churn."""
        return unpack_rows(self._tensor[self._check_slot(slot)], self.cols)

    # ----- packed bit-field access (hash-table counters) ------------------

    def read_fields(
        self,
        slots: np.ndarray,
        rows: np.ndarray,
        bit_offsets: np.ndarray,
        width: int,
    ) -> np.ndarray:
        """Gather ``width``-bit fields at ``(slot, row, bit)`` positions.

        Vectorised over the index arrays; fields may straddle two
        adjacent words.  Returns int64 values.
        """
        if not 0 < width <= WORD_BITS:
            raise ValueError("field width must be in 1..64")
        s = np.asarray(slots, dtype=np.intp)
        r = np.asarray(rows, dtype=np.intp)
        bit = np.asarray(bit_offsets, dtype=np.int64)
        w0 = (bit // WORD_BITS).astype(np.intp)
        off = (bit % WORD_BITS).astype(np.uint64)
        lo = self._tensor[s, r, w0] >> off
        spill = (bit % WORD_BITS) + width > WORD_BITS
        if np.any(spill):
            hi = self._tensor[s[spill], r[spill], w0[spill] + 1]
            lo = lo.copy()
            lo[spill] |= hi << (np.uint64(WORD_BITS) - off[spill])
        fmask = (
            _FULL
            if width == WORD_BITS
            else np.uint64((1 << width) - 1)
        )
        return (lo & fmask).astype(np.int64)

    def write_fields(
        self,
        slots: np.ndarray,
        rows: np.ndarray,
        bit_offsets: np.ndarray,
        width: int,
        values: np.ndarray,
    ) -> None:
        """Scatter ``width``-bit fields (read-modify-write on words).

        Duplicate ``(slot, row, word)`` targets are applied
        sequentially via ``ufunc.at``, so two fields sharing a word
        never clobber each other.
        """
        if not 0 < width <= WORD_BITS:
            raise ValueError("field width must be in 1..64")
        s = np.asarray(slots, dtype=np.int64)
        r = np.asarray(rows, dtype=np.int64)
        bit = np.asarray(bit_offsets, dtype=np.int64)
        fmask = (
            _FULL
            if width == WORD_BITS
            else np.uint64((1 << width) - 1)
        )
        vals = np.asarray(values).astype(np.uint64) & fmask
        flat = self._tensor.reshape(-1)
        base = (s * self.rows + r) * self.words
        w0 = bit // WORD_BITS
        off = (bit % WORD_BITS).astype(np.uint64)
        idx = base + w0
        np.bitwise_and.at(flat, idx, ~(fmask << off))
        np.bitwise_or.at(flat, idx, vals << off)
        spill = (bit % WORD_BITS) + width > WORD_BITS
        if np.any(spill):
            sh = np.uint64(WORD_BITS) - off[spill]
            np.bitwise_and.at(flat, idx[spill] + 1, ~(fmask >> sh))
            np.bitwise_or.at(flat, idx[spill] + 1, vals[spill] >> sh)
        if self._ecc is not None:
            touched = np.unique(s * self.rows + r)
            su = (touched // self.rows).astype(np.intp)
            ru = (touched % self.rows).astype(np.intp)
            self._ecc[su, ru] = self._ecc_encoder(self._tensor[su, ru])
            self._ecc_rows_encoded += int(touched.size)
