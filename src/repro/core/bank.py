"""A bank: a grid of MATs routed in an H-tree manner (lazy storage)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mat import Mat
from repro.core.storage import BitPlaneStore
from repro.dram.geometry import BankGeometry


@dataclass
class Bank:
    """One bank of the PIM-Assembler hierarchy."""

    geometry: BankGeometry = field(default_factory=BankGeometry)
    #: the device-wide packed bit store (``None`` in standalone tests)
    store: "BitPlaneStore | None" = None
    #: conversion-counter label (``bank<i>`` on a device)
    label: str = "unbound"

    def __post_init__(self) -> None:
        self._mats: dict[int, Mat] = {}

    def mat(self, index: int) -> Mat:
        if not 0 <= index < self.geometry.num_mats:
            raise IndexError(
                f"MAT index {index} out of range 0..{self.geometry.num_mats - 1}"
            )
        if index not in self._mats:
            self._mats[index] = Mat(
                self.geometry.mat, store=self.store, label=self.label
            )
        return self._mats[index]

    @property
    def num_mats(self) -> int:
        return self.geometry.num_mats

    @property
    def instantiated_mats(self) -> int:
        return len(self._mats)
