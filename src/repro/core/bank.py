"""A bank: a grid of MATs routed in an H-tree manner (lazy storage)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mat import Mat
from repro.dram.geometry import BankGeometry


@dataclass
class Bank:
    """One bank of the PIM-Assembler hierarchy."""

    geometry: BankGeometry = field(default_factory=BankGeometry)

    def __post_init__(self) -> None:
        self._mats: dict[int, Mat] = {}

    def mat(self, index: int) -> Mat:
        if not 0 <= index < self.geometry.num_mats:
            raise IndexError(
                f"MAT index {index} out of range 0..{self.geometry.num_mats - 1}"
            )
        if index not in self._mats:
            self._mats[index] = Mat(self.geometry.mat)
        return self._mats[index]

    @property
    def num_mats(self) -> int:
        return self.geometry.num_mats

    @property
    def instantiated_mats(self) -> int:
        return len(self._mats)
