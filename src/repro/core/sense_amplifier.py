"""Logic-level model of the reconfigurable sense amplifier (Fig. 2).

The analog layer (:mod:`repro.dram.sense_voltage`) resolves *one* bit
line; this module lifts the same behaviour to whole 256-bit rows as
vectorised NumPy operations, and encodes the control-signal table of the
paper's Fig. 2a so the controller can drive the SA exactly the way the
hardware would.

Control signals (Fig. 2a table):

=========  ====  ====  ======  =====  =====
function   Enm   Enx   Enmux   Enc1   Enc2
=========  ====  ====  ======  =====  =====
W/R         1     1      0       x      x
XNOR2       0     1      1       1      1
Carry       1     0      0       0      1
Sum         0     1      1       1      0  (latch enabled)
=========  ====  ====  ======  =====  =====

The table is exposed as :data:`CONTROL_SIGNALS` and validated by the
test suite against the SA's functional behaviour; the controller asserts
it issues matching enable sets for every command it executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.isa import SAOp

#: Enable-signal sets per SA function, from the paper's Fig. 2a.
#: ``None`` means don't-care.
CONTROL_SIGNALS: Mapping[str, Mapping[str, int | None]] = {
    "write_read": {"Enm": 1, "Enx": 1, "Enmux": 0, "Enc1": None, "Enc2": None},
    "xnor2": {"Enm": 0, "Enx": 1, "Enmux": 1, "Enc1": 1, "Enc2": 1},
    "carry": {"Enm": 1, "Enx": 0, "Enmux": 0, "Enc1": 0, "Enc2": 1},
    "sum": {"Enm": 0, "Enx": 1, "Enmux": 1, "Enc1": 1, "Enc2": 0},
}


def _as_bits(row: np.ndarray) -> np.ndarray:
    arr = np.asarray(row)
    if arr.dtype != np.uint8:
        arr = arr.astype(np.uint8)
    # single-pass max check (see SubArray._check_bits for the micro-bench)
    if arr.max(initial=0) > 1:
        raise ValueError("rows must contain only 0/1 bits")
    return arr


@dataclass
class SenseAmplifierArray:
    """One stripe of reconfigurable SAs (one per bit line).

    The only state is the per-column D-latch that carries the addition
    carry between the TRA cycle and the sum cycle.
    """

    columns: int
    vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.columns <= 0:
            raise ValueError("columns must be positive")
        self._latch = np.zeros(self.columns, dtype=np.uint8)

    @property
    def latch(self) -> np.ndarray:
        """Current latch contents (copy; the latch is SA-internal)."""
        return self._latch.copy()

    def _check(self, *rows: np.ndarray) -> list[np.ndarray]:
        out = []
        for row in rows:
            bits = _as_bits(row)
            if bits.shape != (self.columns,):
                raise ValueError(
                    f"row shape {bits.shape} != ({self.columns},)"
                )
            out.append(bits)
        return out

    # ----- two-row activation family ------------------------------------

    def compute2(self, di: np.ndarray, dj: np.ndarray, op: SAOp) -> np.ndarray:
        """Resolve a two-row activation into the selected logic output.

        NOR2/NAND2 come from the shifted-VTC inverters (threshold
        detection of the shared-charge level); XOR2 from the add-on AND
        gate; XNOR2/AND2/OR2 from the MUX'd complements.
        """
        a, b = self._check(di, dj)
        ones = a + b  # 0, 1, or 2 stored ones per column
        nor2 = (ones == 0).astype(np.uint8)
        nand2 = (ones < 2).astype(np.uint8)
        if op is SAOp.NOR2:
            return nor2
        if op is SAOp.NAND2:
            return nand2
        xor2 = (nand2 & (1 - nor2)).astype(np.uint8)
        if op is SAOp.XOR2:
            return xor2
        if op is SAOp.XNOR2:
            return (1 - xor2).astype(np.uint8)
        if op is SAOp.AND2:
            return (1 - nand2).astype(np.uint8)
        if op is SAOp.OR2:
            return (1 - nor2).astype(np.uint8)
        raise ValueError(f"unsupported SA operation: {op}")

    # ----- addition family ----------------------------------------------

    def carry(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """TRA majority cycle; the result is also captured in the latch."""
        x, y, z = self._check(a, b, c)
        maj = ((x + y + z) >= 2).astype(np.uint8)
        self._latch = maj.copy()
        return maj

    def sum_with_latch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sum cycle: XOR of two fresh operands with the latched carry.

        Matches the paper: "By activating the latch enable, the add-on
        XOR gate can generate Sum output in one cycle between two new
        input data and Carry from previous cycle."
        """
        x, y = self._check(a, b)
        return (x ^ y ^ self._latch).astype(np.uint8)

    def load_latch(self, bits: np.ndarray) -> None:
        """Explicitly load the latch (used when a carry row is re-staged)."""
        (b,) = self._check(bits)
        self._latch = b.copy()

    def clear_latch(self) -> None:
        self._latch = np.zeros(self.columns, dtype=np.uint8)


def reference_compute2(di: np.ndarray, dj: np.ndarray, op: SAOp) -> np.ndarray:
    """Pure-NumPy golden model used by the tests (no SA involved)."""
    a = _as_bits(di).astype(bool)
    b = _as_bits(dj).astype(bool)
    table = {
        SAOp.XNOR2: ~(a ^ b),
        SAOp.XOR2: a ^ b,
        SAOp.NOR2: ~(a | b),
        SAOp.NAND2: ~(a & b),
        SAOp.AND2: a & b,
        SAOp.OR2: a | b,
    }
    return table[op].astype(np.uint8)


def full_adder_reference(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Golden (sum, carry) of a bit-wise full adder over three rows."""
    x = _as_bits(a).astype(np.int64)
    y = _as_bits(b).astype(np.int64)
    z = _as_bits(c).astype(np.int64)
    total = x + y + z
    return (total % 2).astype(np.uint8), (total >= 2).astype(np.uint8)
