"""The AAP instruction set of PIM-Assembler.

The paper's "Software Support" section defines three instruction types,
differing only in the number of activated source rows:

* ``AAP(src, des, size)`` — type 1: RowClone-style copy.
* ``AAP(src1, src2, des, size)`` — type 2: two-row activation; the
  reconfigurable SA produces XNOR2 (or NOR/NAND/XOR/AND/OR, depending on
  the MUX selectors) and writes it to the destination row.
* ``AAP(src1, src2, src3, des, size)`` — type 3: Ambit-style TRA; the
  majority of the three sources (the addition carry) lands on the
  destination.

Sizes must be a multiple of the DRAM row size; otherwise the application
pads with dummy data (the mapping layer in :mod:`repro.mapping` is
responsible for that padding).

This module defines the address space and the instruction dataclasses;
:mod:`repro.core.controller` executes them against sub-array state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SAOp(enum.Enum):
    """Operations selectable through the reconfigurable SA's output MUX."""

    XNOR2 = "xnor2"
    XOR2 = "xor2"
    NOR2 = "nor2"
    NAND2 = "nand2"
    AND2 = "and2"
    OR2 = "or2"


@dataclass(frozen=True, order=True)
class RowAddress:
    """Physical address of one sub-array row.

    The hierarchy mirrors :class:`repro.dram.geometry.DeviceGeometry`:
    ``bank -> mat -> subarray -> row``.
    """

    bank: int
    mat: int
    subarray: int
    row: int

    def __post_init__(self) -> None:
        for name in ("bank", "mat", "subarray", "row"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def with_row(self, row: int) -> "RowAddress":
        return RowAddress(self.bank, self.mat, self.subarray, row)

    @property
    def subarray_key(self) -> tuple[int, int, int]:
        """Identity of the containing sub-array (for locality checks)."""
        return (self.bank, self.mat, self.subarray)

    def same_subarray(self, other: "RowAddress") -> bool:
        return self.subarray_key == other.subarray_key


@dataclass(frozen=True)
class AapCopy:
    """Type-1 AAP: copy ``src`` row to ``des`` row (RowClone FPM)."""

    src: RowAddress
    des: RowAddress

    def __post_init__(self) -> None:
        if not self.src.same_subarray(self.des):
            raise ValueError(
                "type-1 AAP copies within one sub-array; use the global "
                "row buffer path (MemRead/MemWrite) across sub-arrays"
            )

    mnemonic = "AAP1"


@dataclass(frozen=True)
class AapCompute2:
    """Type-2 AAP: two-row activation compute into ``des``."""

    src1: RowAddress
    src2: RowAddress
    des: RowAddress
    op: SAOp = SAOp.XNOR2

    def __post_init__(self) -> None:
        if not (
            self.src1.same_subarray(self.src2)
            and self.src1.same_subarray(self.des)
        ):
            raise ValueError("type-2 AAP operands must share a sub-array")
        if self.src1.row == self.src2.row:
            raise ValueError("type-2 AAP requires two distinct source rows")

    mnemonic = "AAP2"


@dataclass(frozen=True)
class AapCompute3:
    """Type-3 AAP: triple-row activation; majority(src1..3) -> des."""

    src1: RowAddress
    src2: RowAddress
    src3: RowAddress
    des: RowAddress

    def __post_init__(self) -> None:
        sources = (self.src1, self.src2, self.src3)
        if not all(s.same_subarray(self.des) for s in sources):
            raise ValueError("type-3 AAP operands must share a sub-array")
        rows = {s.row for s in sources}
        if len(rows) != 3:
            raise ValueError("type-3 AAP requires three distinct source rows")

    mnemonic = "AAP3"


@dataclass(frozen=True)
class SumCycle:
    """The latch-assisted sum cycle: des = src1 ^ src2 ^ latched_carry.

    This models the add-on XOR gate consuming the D-latch contents (the
    carry produced by a preceding :class:`AapCompute3`) together with a
    fresh two-row activation of the addend rows.
    """

    src1: RowAddress
    src2: RowAddress
    carry: RowAddress
    des: RowAddress

    def __post_init__(self) -> None:
        operands = (self.src1, self.src2, self.carry)
        if not all(s.same_subarray(self.des) for s in operands):
            raise ValueError("sum-cycle operands must share a sub-array")

    mnemonic = "SUM"


@dataclass(frozen=True)
class MemWrite:
    """Write one row of data from the host through the global row buffer."""

    des: RowAddress

    mnemonic = "MEM_WR"


@dataclass(frozen=True)
class MemRead:
    """Read one row of data to the host through the global row buffer."""

    src: RowAddress

    mnemonic = "MEM_RD"


@dataclass(frozen=True)
class RowInit:
    """Initialise a row to all-0 or all-1.

    Hardware realisation: a RowClone from one of the two reserved
    constant rows every Ambit-class design keeps — one AAP, charged as
    such, but traced under its own mnemonic so a replay knows the fill
    value (a plain ``AAP1`` entry cannot carry it).
    """

    des: RowAddress
    value: int = 0

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("init value must be 0 or 1")

    mnemonic = "ROW_INIT"


@dataclass(frozen=True)
class LatchClear:
    """Reset the SA's carry latch (a precharge-time side effect; free).

    Traced so a command stream is a complete description of latch
    state: without it, a replayed ``SUM`` could consume a stale carry
    the original run had cleared.
    """

    subarray: tuple[int, int, int]

    mnemonic = "LATCH_CLR"


@dataclass(frozen=True)
class DpuOp:
    """A MAT-level DPU operation over one sense-amplifier stripe.

    ``kind`` is one of ``and_reduce`` / ``or_reduce`` / ``popcount`` /
    ``scalar_add`` — the simple non-bulk bit-wise ops the paper assigns
    to the low-overhead Digital Processing Unit.
    """

    subarray: tuple[int, int, int]
    kind: str

    VALID_KINDS = ("and_reduce", "or_reduce", "popcount", "scalar_add")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(f"unknown DPU op kind: {self.kind!r}")

    mnemonic = "DPU"


Instruction = (
    AapCopy
    | AapCompute2
    | AapCompute3
    | SumCycle
    | MemWrite
    | MemRead
    | RowInit
    | LatchClear
    | DpuOp
)

#: Every trace mnemonic the platform can emit, in canonical order.
#: ``repro.core.timing.command_cost_table`` must price each of these
#: (tested by ``tests/core/test_isa_costs.py``); the analysis layer
#: rejects trace documents containing anything else.
ALL_MNEMONICS: tuple[str, ...] = (
    "AAP1",
    "AAP2",
    "AAP3",
    "SUM",
    "LATCH_LD",
    "LATCH_CLR",
    "ROW_INIT",
    "MEM_WR",
    "MEM_RD",
    "DPU",
    # refresh / data-at-rest integrity stream (repro.core.integrity);
    # charged straight through the ledger, never part of AAP programs
    "REF",
    "ECC_CHK",
    "ECC_ENC",
    "ECC_FIX",
)
