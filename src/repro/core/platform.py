"""High-level PIM-Assembler platform facade.

:class:`PimAssembler` is the public API of the accelerator: it owns a
device, a controller and a stats ledger, and exposes the three in-memory
functions the paper's algorithm reconstruction is written in —
``PIM_XNOR`` (bulk comparison), ``PIM_Add`` (bulk addition) and
``MEM_insert`` (memory write) — plus helpers for laying data out in
rows, columns and bit planes.

Typical use::

    pim = PimAssembler.small()          # a test-sized device
    a = pim.store_row(bits_a)
    b = pim.store_row(bits_b)
    xnor = pim.pim_xnor(a, b)           # full 256-bit row in 3 cycles
    print(pim.stats.totals().time_ns)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.controller import Controller
from repro.core.device import Device
from repro.core.energy import EnergyParameters, DEFAULT_ENERGY
from repro.core.integrity import IntegrityConfig, IntegrityEngine
from repro.core.isa import RowAddress, SAOp
from repro.core.resilience import ResilienceEngine, ResiliencePolicy
from repro.core.stats import StatsLedger
from repro.core.timing import TimingParameters, DEFAULT_TIMING
from repro.observability.session import connect_ledger
from repro.errors import AllocationError, SubarrayQuarantinedError
from repro.dram.geometry import (
    BankGeometry,
    DeviceGeometry,
    MatGeometry,
    SubArrayGeometry,
    default_geometry,
)


@dataclass(frozen=True)
class WordColumns:
    """A set of per-column integer words stored as bit planes.

    ``planes[i]`` is the row holding bit ``i`` (LSB first) of up to
    ``cols`` independent words — the layout the traversal stage uses for
    in/out-degree vectors (paper Fig. 8).
    """

    planes: tuple[RowAddress, ...]
    count: int

    @property
    def bits(self) -> int:
        return len(self.planes)


class PimAssembler:
    """The PIM-Assembler accelerator: device + controller + ledger."""

    def __init__(
        self,
        geometry: DeviceGeometry | None = None,
        timing: TimingParameters = DEFAULT_TIMING,
        energy: EnergyParameters = DEFAULT_ENERGY,
    ) -> None:
        self.geometry = geometry or default_geometry()
        self.device = Device(self.geometry)
        self.stats = StatsLedger()
        # no-op unless an ObservabilitySession is active; lets resumes
        # (which rebuild the platform mid-run) reconnect automatically
        connect_ledger(self.stats)
        self.controller = Controller(
            device=self.device,
            ledger=self.stats,
            timing=timing,
            energy=energy,
        )
        #: bump allocator: next free data row per sub-array
        self._next_row: dict[tuple[int, int, int], int] = {}
        #: data-at-rest integrity engine (attach_integrity)
        self._integrity: IntegrityEngine | None = None

    # ----- construction helpers ---------------------------------------------

    @classmethod
    def small(
        cls,
        subarrays: int = 4,
        rows: int = 64,
        cols: int = 32,
        mats: int = 1,
    ) -> "PimAssembler":
        """A deliberately tiny device for tests and examples.

        ``mats`` spreads the sub-arrays over that many MATs (each with
        its own GRB/DPU) — needed when host-I/O parallelism matters.
        """
        geometry = DeviceGeometry(
            bank=BankGeometry(
                mat=MatGeometry(
                    subarray=SubArrayGeometry(rows=rows, cols=cols, compute_rows=8),
                    subarrays_x=subarrays,
                    subarrays_y=1,
                ),
                mats_x=mats,
                mats_y=1,
            ),
            num_banks=1,
        )
        return cls(geometry=geometry)

    @property
    def row_bits(self) -> int:
        return self.geometry.row_bits

    # ----- resilience -----------------------------------------------------------

    @property
    def resilience(self) -> ResilienceEngine | None:
        return self.controller.resilience

    def protect(
        self, policy: "ResiliencePolicy | str"
    ) -> ResilienceEngine:
        """Attach a resilience engine implementing ``policy``.

        Returns the engine (also reachable as ``pim.resilience``); pass
        ``"off"`` to keep an engine attached but verification disabled.
        """
        engine = ResilienceEngine(policy, stats=self.stats)
        self.controller.resilience = engine
        return engine

    # ----- data-at-rest integrity -----------------------------------------------

    @property
    def integrity(self) -> IntegrityEngine | None:
        return self._integrity

    def attach_integrity(self, config: IntegrityConfig) -> IntegrityEngine:
        """Attach the retention-rot / ECC / refresh-scrub subsystem.

        Enables the SECDED sidecar on the device store (when the config
        asks for it) and returns the engine (also ``pim.integrity``).
        The pipeline drives it through :meth:`integrity_sync`.
        """
        engine = IntegrityEngine(
            config,
            store=self.device.store,
            stats=self.stats,
            timing=self.controller.timing,
            energy=self.controller.energy,
            slot_keys=self._slot_key_map,
            resilience=lambda: self.controller.resilience,
        )
        self._integrity = engine
        return engine

    def integrity_sync(self) -> None:
        """Rot checkpoint: inject elapsed windows, refresh and scrub.

        A no-op without an attached engine, so the pipeline can call it
        unconditionally at read/stage granularity.
        """
        if self._integrity is not None:
            self._integrity.sync()

    def _slot_key_map(self) -> dict[int, tuple[int, int, int]]:
        """Store slot -> sub-array key over the instantiated hierarchy."""
        mapping: dict[int, tuple[int, int, int]] = {}
        for bank_idx, bank in self.device._banks.items():
            for mat_idx, mat in bank._mats.items():
                for sub_idx, sub in mat._subarrays.items():
                    mapping[sub.slot] = (bank_idx, mat_idx, sub_idx)
        return mapping

    # ----- allocation ----------------------------------------------------------

    def subarray_keys(self) -> Iterator[tuple[int, int, int]]:
        return self.device.subarray_keys()

    def usable_subarray_keys(self) -> list[tuple[int, int, int]]:
        """Every sub-array key, minus those the resilience engine retired."""
        engine = self.resilience
        keys = list(self.device.subarray_keys())
        if engine is None:
            return keys
        return [key for key in keys if not engine.is_quarantined(key)]

    def allocate_row(
        self, subarray_key: tuple[int, int, int] = (0, 0, 0)
    ) -> RowAddress:
        """Reserve the next free data row of a sub-array.

        Pure bookkeeping: does not instantiate the (lazy) sub-array.
        Rows the resilience engine marked *weak* are skipped (spare-row
        remapping), and a quarantined sub-array refuses allocations
        outright.
        """
        geometry = self.geometry.bank.mat.subarray
        self.device.validate_address(
            RowAddress(*subarray_key, row=0)
        )
        engine = self.resilience
        if engine is not None and engine.is_quarantined(subarray_key):
            raise SubarrayQuarantinedError(subarray_key)
        next_row = self._next_row.get(subarray_key, 0)
        while (
            engine is not None
            and next_row < geometry.data_rows
            and engine.is_weak_row(subarray_key, next_row)
        ):
            next_row += 1
        if next_row >= geometry.data_rows:
            raise AllocationError(
                f"sub-array {subarray_key} has no free data rows "
                f"({geometry.data_rows} in use)"
            )
        self._next_row[subarray_key] = next_row + 1
        bank, mat, subarray = subarray_key
        return RowAddress(bank=bank, mat=mat, subarray=subarray, row=next_row)

    def rows_in_use(self, subarray_key: tuple[int, int, int]) -> int:
        return self._next_row.get(subarray_key, 0)

    def _pad(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size > self.row_bits:
            raise ValueError(
                f"vector of {arr.size} bits exceeds the row size "
                f"{self.row_bits}; use store_vector for multi-row data"
            )
        if arr.size < self.row_bits:
            arr = np.pad(arr, (0, self.row_bits - arr.size))
        return arr

    # ----- MEM functions ---------------------------------------------------------

    def store_row(
        self,
        bits: np.ndarray,
        subarray_key: tuple[int, int, int] = (0, 0, 0),
    ) -> RowAddress:
        """MEM_insert of one row (padded to the row width with zeros)."""
        address = self.allocate_row(subarray_key)
        self.controller.write_row(address, self._pad(bits))
        return address

    def mem_insert(self, address: RowAddress, bits: np.ndarray) -> None:
        """MEM_insert to an explicit address (hash-table updates)."""
        self.controller.write_row(address, self._pad(bits))

    def read_row(self, address: RowAddress, bits: int | None = None) -> np.ndarray:
        """Read a row back; optionally truncated to the first ``bits``."""
        row = self.controller.read_row(address)
        return row if bits is None else row[:bits]

    # ----- PIM_XNOR --------------------------------------------------------------

    def pim_xnor(
        self,
        a: RowAddress,
        b: RowAddress,
        des: RowAddress | None = None,
        staged: bool = False,
    ) -> np.ndarray:
        """Bulk bit-wise XNOR of two rows (1 where the bits agree)."""
        if des is None:
            sub = self.device.subarray_at(a)
            des = a.with_row(sub.compute_row(3))
        return self.controller.xnor_rows(a, b, des, staged=staged)

    def pim_compare(
        self,
        a: RowAddress,
        b: RowAddress,
        valid_bits: int | None = None,
    ) -> bool:
        """PIM_XNOR + DPU AND-reduce: True iff the rows match.

        Args:
            valid_bits: compare only the first ``valid_bits`` columns
                (a k-mer occupies 2k of the row's bits).
        """
        sub = self.device.subarray_at(a)
        des = a.with_row(sub.compute_row(3))
        xnor = self.controller.xnor_rows(a, b, des)
        mask = None
        if valid_bits is not None:
            if not 0 < valid_bits <= self.row_bits:
                raise ValueError("valid_bits out of range")
            mask = np.zeros(self.row_bits, dtype=np.uint8)
            mask[:valid_bits] = 1
        return self.controller.dpu_match(des, mask, bits=xnor)

    # ----- PIM_Add ----------------------------------------------------------------

    def store_word_columns(
        self,
        values: Sequence[int],
        bits: int,
        subarray_key: tuple[int, int, int] = (0, 0, 0),
    ) -> WordColumns:
        """Store up to ``cols`` integers as LSB-first bit planes."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        vals = np.asarray(values, dtype=np.int64)
        if vals.size > self.row_bits:
            raise ValueError("more words than columns")
        if (vals < 0).any() or (vals >= (1 << bits)).any():
            raise ValueError(f"values must fit in {bits} unsigned bits")
        planes = []
        for i in range(bits):
            plane_bits = ((vals >> i) & 1).astype(np.uint8)
            planes.append(self.store_row(plane_bits, subarray_key))
        return WordColumns(planes=tuple(planes), count=vals.size)

    def read_word_columns(self, words: WordColumns) -> np.ndarray:
        """Read bit planes back into integers."""
        values = np.zeros(self.row_bits, dtype=np.int64)
        for i, plane in enumerate(words.planes):
            values += self.controller.read_row(plane).astype(np.int64) << i
        return values[: words.count]

    def pim_add(
        self,
        a: WordColumns,
        b: WordColumns,
        subarray_key: tuple[int, int, int] = (0, 0, 0),
    ) -> WordColumns:
        """Bulk per-column addition: 2 cycles per bit position.

        The result has ``max(bits) + 1`` planes (the final carry becomes
        the MSB), covering ``max(a.count, b.count)`` words.
        """
        bits = max(a.bits, b.bits)
        a_planes = self._extend_planes(a, bits, subarray_key)
        b_planes = self._extend_planes(b, bits, subarray_key)
        sum_planes = [self.allocate_row(subarray_key) for _ in range(bits)]
        carry_row = self.allocate_row(subarray_key)
        self.controller.ripple_add(a_planes, b_planes, sum_planes, carry_row)
        planes = tuple(sum_planes) + (carry_row,)
        return WordColumns(planes=planes, count=max(a.count, b.count))

    def _extend_planes(
        self,
        words: WordColumns,
        bits: int,
        subarray_key: tuple[int, int, int],
    ) -> list[RowAddress]:
        """Zero-extend a word set to ``bits`` planes."""
        planes = list(words.planes)
        while len(planes) < bits:
            zero = self.allocate_row(subarray_key)
            self.controller.write_row(zero, np.zeros(self.row_bits, dtype=np.uint8))
            planes.append(zero)
        return planes

    # ----- bulk multi-row operations ------------------------------------------------

    def bulk_xnor(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        """XNOR of two arbitrary-length bit vectors.

        The vectors are chopped into row-sized stripes, distributed
        round-robin over the device's sub-arrays, and computed with
        ganged AAP commands (one time slot per stripe wave) — the
        micro-benchmark kernel of Fig. 3b.
        """
        a = np.asarray(a_bits, dtype=np.uint8).ravel()
        b = np.asarray(b_bits, dtype=np.uint8).ravel()
        if a.size != b.size:
            raise ValueError("operand lengths differ")
        if a.size == 0:
            raise ValueError("operands must be non-empty")
        width = self.row_bits
        n_rows = -(-a.size // width)  # ceil
        keys = list(self.device.subarray_keys(limit=min(n_rows, 64)))
        out = np.empty(n_rows * width, dtype=np.uint8)

        pending: list[tuple[RowAddress, RowAddress, RowAddress, int]] = []
        for stripe in range(n_rows):
            lo, hi = stripe * width, min((stripe + 1) * width, a.size)
            key = keys[stripe % len(keys)]
            ra = self.store_row(a[lo:hi], key)
            rb = self.store_row(b[lo:hi], key)
            sub = self.device.subarray_at(key)
            x1 = ra.with_row(sub.compute_row(1))
            x2 = ra.with_row(sub.compute_row(2))
            des = ra.with_row(sub.compute_row(3))
            self.controller.copy(ra, x1)
            self.controller.copy(rb, x2)
            pending.append((x1, x2, des, stripe))
            if len(pending) == len(keys) or stripe == n_rows - 1:
                results = self.controller.gang_compute2(
                    [(p[0], p[1], p[2]) for p in pending], SAOp.XNOR2
                )
                for (x1_, x2_, des_, s), res in zip(pending, results):
                    out[s * width : (s + 1) * width] = res
                pending.clear()
        return out[: a.size]

    # ----- checkpointing ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the whole platform.

        Captures everything a bit-identical resume needs: geometry and
        timing/energy parameters, every *instantiated* sub-array's bits
        and sense-amplifier latch (untouched sub-arrays are all-zero by
        construction, so laziness survives the round trip), each MAT's
        global row buffer, the bump-allocator cursors, the stats
        ledger, and — when attached — the fault model's exact RNG
        stream and the resilience engine's event/degradation state.

        Format 2 (columnar storage): sub-array bits travel as their
        stored packed uint64 words (little-endian bytes, key
        ``"words"``), a straight copy out of the device
        :class:`~repro.core.storage.BitPlaneStore` — restoring is the
        inverse copy, so ``from_state(s).state_dict() == s`` exactly.
        Each entry also carries a ``"sha256"`` digest of those word
        bytes: a journal whose resident data rotted (or was tampered
        with) between write and resume fails restore with a typed
        :class:`~repro.errors.JournalError` instead of resuming into a
        wrong answer.  :meth:`from_state` still accepts format-1
        journals (unpacked ``"bits"``, MSB-first packbits) written
        before the rewrite, and format-2 entries without digests.
        """
        import base64
        import dataclasses
        import hashlib

        subarrays = []
        grbs = []
        for bank_idx, bank in self.device._banks.items():
            for mat_idx, mat in bank._mats.items():
                if mat.grb.valid:
                    grbs.append(
                        {
                            "key": [bank_idx, mat_idx],
                            "data": base64.b64encode(
                                np.packbits(mat.grb._data)
                            ).decode("ascii"),
                        }
                    )
                for sub_idx, sub in mat._subarrays.items():
                    word_bytes = np.ascontiguousarray(
                        sub.store.tensor[sub.slot], dtype="<u8"
                    ).tobytes()
                    subarrays.append(
                        {
                            "key": [bank_idx, mat_idx, sub_idx],
                            "words": base64.b64encode(word_bytes).decode(
                                "ascii"
                            ),
                            "sha256": hashlib.sha256(word_bytes).hexdigest(),
                            "latch": base64.b64encode(
                                np.packbits(sub.sa._latch)
                            ).decode("ascii"),
                        }
                    )
        state = {
            "format": 2,
            "geometry": {
                "rows": self.geometry.bank.mat.subarray.rows,
                "cols": self.geometry.bank.mat.subarray.cols,
                "compute_rows": self.geometry.bank.mat.subarray.compute_rows,
                "subarrays_x": self.geometry.bank.mat.subarrays_x,
                "subarrays_y": self.geometry.bank.mat.subarrays_y,
                "mats_x": self.geometry.bank.mats_x,
                "mats_y": self.geometry.bank.mats_y,
                "num_banks": self.geometry.num_banks,
            },
            "timing": dataclasses.asdict(self.controller.timing),
            "energy": dataclasses.asdict(self.controller.energy),
            "next_row": {
                ",".join(map(str, key)): row
                for key, row in self._next_row.items()
            },
            "subarrays": subarrays,
            "grbs": grbs,
            "stats": self.stats.state_dict(),
            "faults": (
                None
                if self.controller.faults is None
                else self.controller.faults.state_dict()
            ),
            "resilience": (
                None
                if self.controller.resilience is None
                else self.controller.resilience.state_dict()
            ),
            "integrity": (
                None
                if self._integrity is None
                else self._integrity.state_dict()
            ),
        }
        return state

    @classmethod
    def from_state(cls, state: dict) -> "PimAssembler":
        """Rebuild a platform mid-run from :meth:`state_dict`."""
        import base64

        from repro.core.faults import FaultModel
        from repro.core.resilience import ResilienceEngine

        g = state["geometry"]
        geometry = DeviceGeometry(
            bank=BankGeometry(
                mat=MatGeometry(
                    subarray=SubArrayGeometry(
                        rows=g["rows"],
                        cols=g["cols"],
                        compute_rows=g["compute_rows"],
                    ),
                    subarrays_x=g["subarrays_x"],
                    subarrays_y=g["subarrays_y"],
                ),
                mats_x=g["mats_x"],
                mats_y=g["mats_y"],
            ),
            num_banks=g["num_banks"],
        )
        from repro.core.timing import TimingParameters
        from repro.core.energy import EnergyParameters

        pim = cls(
            geometry=geometry,
            timing=TimingParameters(**state["timing"]),
            energy=EnergyParameters(**state["energy"]),
        )
        rows, cols = g["rows"], g["cols"]

        def unpack(payload: str, size: int) -> np.ndarray:
            raw = np.frombuffer(
                base64.b64decode(payload.encode("ascii")), dtype=np.uint8
            )
            return np.unpackbits(raw)[:size]

        from repro.core.storage import pack_rows

        import hashlib

        from repro.errors import JournalError

        for entry in state["subarrays"]:
            sub = pim.device.subarray_at(tuple(entry["key"]))
            if "words" in entry:  # format 2: stored packed words verbatim
                word_bytes = base64.b64decode(entry["words"].encode("ascii"))
                expected = entry.get("sha256")
                if expected is not None:
                    actual = hashlib.sha256(word_bytes).hexdigest()
                    if actual != expected:
                        raise JournalError(
                            f"sub-array {tuple(entry['key'])} words fail "
                            f"their integrity digest (stored {expected[:12]}…,"
                            f" recomputed {actual[:12]}…) — the snapshot "
                            "rotted or was tampered with; refusing to "
                            "resume into a corrupt table"
                        )
                raw = np.frombuffer(word_bytes, dtype="<u8")
                sub.store.tensor[sub.slot] = raw.reshape(rows, -1).astype(
                    np.uint64
                )
            else:  # format 1: unpacked bits, MSB-first packbits
                sub.store.tensor[sub.slot] = pack_rows(
                    unpack(entry["bits"], rows * cols).reshape(rows, cols)
                )
            sub.sa._latch[:] = unpack(entry["latch"], cols)
        for entry in state["grbs"]:
            bank_idx, mat_idx = entry["key"]
            pim.device.mat_at(bank_idx, mat_idx).grb.load(
                unpack(entry["data"], cols)
            )
        pim._next_row = {
            tuple(int(p) for p in key.split(",")): int(row)
            for key, row in state["next_row"].items()
        }
        pim.stats.load_state(state["stats"])
        if state["faults"] is not None:
            pim.controller.faults = FaultModel.from_state(state["faults"])
        if state["resilience"] is not None:
            pim.controller.resilience = ResilienceEngine.from_state(
                state["resilience"], stats=pim.stats
            )
        if state.get("integrity") is not None:
            # reattaching re-enables the SECDED sidecar, which re-encodes
            # every restored slot; window progress and counters resume
            engine = pim.attach_integrity(
                IntegrityConfig.from_state(state["integrity"]["config"])
            )
            engine.load_state(state["integrity"])
            pim.device.store.drain_encoded_rows()  # restore encode is free
        return pim

    # ----- bookkeeping -----------------------------------------------------------------

    def phase(self, name: str):
        """Attribute subsequent commands to a named phase (Fig. 9 stages)."""
        return self.stats.phase(name)

    def reset_stats(self) -> None:
        self.stats.reset()
