"""Functional model of one computational sub-array.

A sub-array is a ``rows x cols`` bit matrix plus one stripe of
reconfigurable sense amplifiers.  Rows split into:

* **data rows** ``0 .. data_rows-1`` — operand storage behind the
  regular row decoder;
* **compute rows** ``x1 .. x8`` (physical rows ``data_rows .. rows-1``)
  — behind the 3:8 modified row decoder (MRD) that can raise two or
  three word lines at once.

The sub-array is *purely functional*: it mutates bits and returns
results; all timing/energy accounting lives in
:class:`repro.core.controller.Controller`, which is the only component
that issues operations in the real machine, too.

Since the columnar-storage rewrite the bits no longer live here: a
sub-array is a lightweight view handle — a slot index into the device's
shared :class:`~repro.core.storage.BitPlaneStore` — and every row it
hands out crosses the pack boundary (packed uint64 words inside,
unpacked 0/1 ``uint8`` at this API).  A sub-array constructed without a
store (unit tests, standalone examples) creates its own private
single-slot store, so the API is unchanged either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.isa import SAOp
from repro.core.sense_amplifier import SenseAmplifierArray
from repro.core.storage import BitPlaneStore
from repro.dram.geometry import SubArrayGeometry


@dataclass
class SubArray:
    """Behaviour of one computational sub-array over shared packed storage."""

    geometry: SubArrayGeometry = field(default_factory=SubArrayGeometry)
    #: shared device store; ``None`` creates a private single-slot store
    store: "BitPlaneStore | None" = None
    #: conversion-counter label (the owning bank's name on a device)
    label: str = "unbound"

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = BitPlaneStore(self.geometry.rows, self.geometry.cols)
        elif (
            self.store.rows != self.geometry.rows
            or self.store.cols != self.geometry.cols
        ):
            raise ValueError(
                f"store geometry ({self.store.rows}x{self.store.cols}) does "
                f"not match sub-array ({self.geometry.rows}x{self.geometry.cols})"
            )
        self._slot = self.store.new_slot(self.label)
        self.sa = SenseAmplifierArray(columns=self.geometry.cols)

    @property
    def slot(self) -> int:
        """This sub-array's slot in the shared packed store."""
        return self._slot

    # ----- row addressing -------------------------------------------------

    @property
    def rows(self) -> int:
        return self.geometry.rows

    @property
    def cols(self) -> int:
        return self.geometry.cols

    def compute_row(self, index: int) -> int:
        """Physical row number of compute row ``x{index}`` (1-based)."""
        if not 1 <= index <= self.geometry.compute_rows:
            raise ValueError(
                f"compute row index must be in 1..{self.geometry.compute_rows}"
            )
        return self.geometry.data_rows + index - 1

    def is_compute_row(self, row: int) -> bool:
        return self.geometry.data_rows <= row < self.geometry.rows

    def _check_row(self, row: int) -> int:
        if not 0 <= row < self.geometry.rows:
            raise IndexError(f"row {row} out of range 0..{self.geometry.rows - 1}")
        return row

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (self.geometry.cols,):
            raise ValueError(
                f"row data must have shape ({self.geometry.cols},), got {arr.shape}"
            )
        # hot path: max() is one pass with no temporary, unlike the old
        # np.isin(arr, (0, 1)).all() which built a bool array and
        # scanned twice (~6x slower per write_row at 256 columns)
        if arr.max(initial=0) > 1:
            raise ValueError("row data must be 0/1 bits")
        return arr

    # ----- memory behaviour -------------------------------------------------

    def write_row(self, row: int, bits: np.ndarray) -> None:
        self.store.write_row(
            self._slot, self._check_row(row), self._check_bits(bits)
        )

    def read_row(self, row: int) -> np.ndarray:
        return self.store.read_row(self._slot, self._check_row(row))

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        """Copy of a contiguous row block ``[start, stop)``."""
        self._check_row(start)
        if stop < start or stop > self.geometry.rows:
            raise IndexError(f"row range [{start}, {stop}) out of bounds")
        return self.store.read_rows(self._slot, start, stop)

    # ----- unpacked snapshots (read-only at the pack boundary) ---------------

    def row_view(self, row: int) -> np.ndarray:
        """Unpacked snapshot of one row; treat as read-only.

        Before the columnar store this was a live view; it is now a
        fresh unpack of the packed words, so mutations do NOT reach
        storage — writers go through :meth:`write_row` or the packed
        word APIs of :class:`~repro.core.storage.BitPlaneStore`.
        """
        return self.store.read_row(self._slot, self._check_row(row))

    def block_view(self, start: int, stop: int) -> np.ndarray:
        """Unpacked snapshot of the row block ``[start, stop)`` (read-only)."""
        self._check_row(start)
        if stop < start or stop > self.geometry.rows:
            raise IndexError(f"row range [{start}, {stop}) out of bounds")
        return self.store.read_rows(self._slot, start, stop)

    @property
    def raw_bits(self) -> np.ndarray:
        """Unpacked snapshot of the whole bit matrix (read-only).

        The bulk engine used to mutate through this; it now writes
        packed words directly (:attr:`store` / :attr:`slot`), and this
        accessor exists for tests and debugging that compare whole
        matrices.
        """
        return self.store.snapshot_slot(self._slot)

    def rowclone(self, src: int, des: int) -> None:
        """In-sub-array copy via back-to-back activation (AAP type 1)."""
        self.store.copy_row(
            self._slot, self._check_row(src), self._check_row(des)
        )

    # ----- compute behaviour --------------------------------------------------

    def compute2(self, src1: int, src2: int, des: int, op: SAOp) -> np.ndarray:
        """Two-row activation: ``des = op(src1, src2)``; returns the result.

        In hardware the sources must have been RowCloned into compute
        rows; the controller enforces that protocol — the functional
        model accepts any row pair so unit tests can probe it directly.
        """
        result = self.sa.compute2(
            self.store.read_row(self._slot, self._check_row(src1)),
            self.store.read_row(self._slot, self._check_row(src2)),
            op,
        )
        # the SA returns a fresh array; packing copies the values into
        # the row, so the result needs no further defensive copy
        self.store.write_row(self._slot, self._check_row(des), result)
        return result

    def tra_carry(self, src1: int, src2: int, src3: int, des: int) -> np.ndarray:
        """Triple-row activation: majority -> des, and into the SA latch."""
        rows = {self._check_row(src1), self._check_row(src2), self._check_row(src3)}
        if len(rows) != 3:
            raise ValueError("TRA requires three distinct rows")
        result = self.sa.carry(
            self.store.read_row(self._slot, src1),
            self.store.read_row(self._slot, src2),
            self.store.read_row(self._slot, src3),
        )
        self.store.write_row(self._slot, self._check_row(des), result)
        return result

    def sum_cycle(self, src1: int, src2: int, des: int) -> np.ndarray:
        """Latch-assisted sum: ``des = src1 ^ src2 ^ latch``."""
        result = self.sa.sum_with_latch(
            self.store.read_row(self._slot, self._check_row(src1)),
            self.store.read_row(self._slot, self._check_row(src2)),
        )
        self.store.write_row(self._slot, self._check_row(des), result)
        return result

    # ----- whole-array views (testing / debugging) ---------------------------

    def snapshot(self) -> np.ndarray:
        """Copy of the full bit matrix."""
        return self.store.snapshot_slot(self._slot)

    def clear(self) -> None:
        self.store.clear_slot(self._slot)
        self.sa.clear_latch()
