"""Functional model of one computational sub-array.

A sub-array is a ``rows x cols`` bit matrix plus one stripe of
reconfigurable sense amplifiers.  Rows split into:

* **data rows** ``0 .. data_rows-1`` — operand storage behind the
  regular row decoder;
* **compute rows** ``x1 .. x8`` (physical rows ``data_rows .. rows-1``)
  — behind the 3:8 modified row decoder (MRD) that can raise two or
  three word lines at once.

The sub-array is *purely functional*: it mutates bits and returns
results; all timing/energy accounting lives in
:class:`repro.core.controller.Controller`, which is the only component
that issues operations in the real machine, too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.isa import SAOp
from repro.core.sense_amplifier import SenseAmplifierArray
from repro.dram.geometry import SubArrayGeometry


@dataclass
class SubArray:
    """State and bit-level behaviour of one computational sub-array."""

    geometry: SubArrayGeometry = field(default_factory=SubArrayGeometry)

    def __post_init__(self) -> None:
        self._bits = np.zeros(
            (self.geometry.rows, self.geometry.cols), dtype=np.uint8
        )
        self.sa = SenseAmplifierArray(columns=self.geometry.cols)

    # ----- row addressing -------------------------------------------------

    @property
    def rows(self) -> int:
        return self.geometry.rows

    @property
    def cols(self) -> int:
        return self.geometry.cols

    def compute_row(self, index: int) -> int:
        """Physical row number of compute row ``x{index}`` (1-based)."""
        if not 1 <= index <= self.geometry.compute_rows:
            raise ValueError(
                f"compute row index must be in 1..{self.geometry.compute_rows}"
            )
        return self.geometry.data_rows + index - 1

    def is_compute_row(self, row: int) -> bool:
        return self.geometry.data_rows <= row < self.geometry.rows

    def _check_row(self, row: int) -> int:
        if not 0 <= row < self.geometry.rows:
            raise IndexError(f"row {row} out of range 0..{self.geometry.rows - 1}")
        return row

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (self.geometry.cols,):
            raise ValueError(
                f"row data must have shape ({self.geometry.cols},), got {arr.shape}"
            )
        if not np.isin(arr, (0, 1)).all():
            raise ValueError("row data must be 0/1 bits")
        return arr

    # ----- memory behaviour -------------------------------------------------

    def write_row(self, row: int, bits: np.ndarray) -> None:
        self._bits[self._check_row(row)] = self._check_bits(bits)

    def read_row(self, row: int) -> np.ndarray:
        return self._bits[self._check_row(row)].copy()

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        """Copy of a contiguous row block ``[start, stop)``."""
        self._check_row(start)
        if stop < start or stop > self.geometry.rows:
            raise IndexError(f"row range [{start}, {stop}) out of bounds")
        return self._bits[start:stop].copy()

    # ----- zero-copy access (bulk engine) ------------------------------------

    def row_view(self, row: int) -> np.ndarray:
        """View (no copy) of one row; treat as read-only.

        The controller and the bulk engine use views where the scalar
        path used to round-trip a full row copy per operation; callers
        that need to retain the data across writes must copy it.
        """
        return self._bits[self._check_row(row)]

    def block_view(self, start: int, stop: int) -> np.ndarray:
        """View (no copy) of the contiguous row block ``[start, stop)``."""
        self._check_row(start)
        if stop < start or stop > self.geometry.rows:
            raise IndexError(f"row range [{start}, {stop}) out of bounds")
        return self._bits[start:stop]

    @property
    def raw_bits(self) -> np.ndarray:
        """The live bit matrix itself (the bulk engine's bit-plane view).

        Mutations bypass the per-row validation of :meth:`write_row`;
        only :mod:`repro.core.bitplane` writes through this, and only
        with pre-validated 0/1 payloads.
        """
        return self._bits

    def rowclone(self, src: int, des: int) -> None:
        """In-sub-array copy via back-to-back activation (AAP type 1)."""
        self._bits[self._check_row(des)] = self._bits[self._check_row(src)]

    # ----- compute behaviour --------------------------------------------------

    def compute2(self, src1: int, src2: int, des: int, op: SAOp) -> np.ndarray:
        """Two-row activation: ``des = op(src1, src2)``; returns the result.

        In hardware the sources must have been RowCloned into compute
        rows; the controller enforces that protocol — the functional
        model accepts any row pair so unit tests can probe it directly.
        """
        result = self.sa.compute2(
            self._bits[self._check_row(src1)],
            self._bits[self._check_row(src2)],
            op,
        )
        # the SA returns a fresh array; storing copies the values into
        # the row, so the result needs no further defensive copy
        self._bits[self._check_row(des)] = result
        return result

    def tra_carry(self, src1: int, src2: int, src3: int, des: int) -> np.ndarray:
        """Triple-row activation: majority -> des, and into the SA latch."""
        rows = {self._check_row(src1), self._check_row(src2), self._check_row(src3)}
        if len(rows) != 3:
            raise ValueError("TRA requires three distinct rows")
        result = self.sa.carry(
            self._bits[src1], self._bits[src2], self._bits[src3]
        )
        self._bits[self._check_row(des)] = result
        return result

    def sum_cycle(self, src1: int, src2: int, des: int) -> np.ndarray:
        """Latch-assisted sum: ``des = src1 ^ src2 ^ latch``."""
        result = self.sa.sum_with_latch(
            self._bits[self._check_row(src1)],
            self._bits[self._check_row(src2)],
        )
        self._bits[self._check_row(des)] = result
        return result

    # ----- whole-array views (testing / debugging) ---------------------------

    def snapshot(self) -> np.ndarray:
        """Copy of the full bit matrix."""
        return self._bits.copy()

    def clear(self) -> None:
        self._bits.fill(0)
        self.sa.clear_latch()
