"""DRAM command timing model.

Every in-memory primitive of PIM-Assembler is built out of
``ACTIVATE-ACTIVATE-PRECHARGE`` (AAP) command sequences, so the whole
performance model reduces to a handful of JEDEC-style timing constants.
The nominal values follow DDR3-1600 (the technology node of Ambit and
DRISA, against which the paper compares, and with which the paper states
an *identical physical memory configuration* is used):

====================  ======  =====================================
constant              value   meaning
====================  ======  =====================================
``t_ras``             35 ns   ACTIVATE to PRECHARGE (row open)
``t_rp``              15 ns   PRECHARGE period
``t_rcd``             15 ns   ACTIVATE to column access
``t_bl``              5 ns    burst transfer of one column word
====================  ======  =====================================

An **AAP** therefore costs ``2 * t_ras + t_rp`` = 85 ns and a single
**AP** (ACTIVATE-PRECHARGE, used when the result is latched in the SA
and written through the MUX in the same row cycle) costs
``t_ras + t_rp`` = 50 ns.  The paper counts costs in "memory cycles";
we expose both the cycle count and the wall-clock nanoseconds.

The *cycle counts per logical operation* are where PIM-Assembler differs
from the baselines and are central to reproducing Fig. 3b:

* PIM-Assembler XNOR2: operands are RowCloned into compute rows x1/x2
  (2 AAPs) and the two-row activation produces XNOR2 on the bit line in
  **1** further cycle -> 3 row cycles end-to-end, 1 compute cycle.
* Ambit XNOR2: **7** cycles (the paper's Section I: majority/AND/OR-based
  multi-cycle operations plus required row initialisation).
* PIM-Assembler addition: carry via TRA in 1 cycle, sum via the add-on
  XOR + latch in 1 more cycle -> **2** cycles per bit position.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any


@dataclass(frozen=True)
class TimingParameters:
    """JEDEC-style timing constants (nanoseconds)."""

    t_ras: float = 35.0
    t_rp: float = 15.0
    t_rcd: float = 15.0
    t_bl: float = 5.0
    #: clock period of the MAT-level DPU (a modest synthesised block at
    #: 45 nm; 1 GHz keeps it out of the critical path).
    t_dpu_clk: float = 1.0
    #: average refresh interval (tREFI, 64 ms / 8192 rows = 7.8 us).
    t_refi: float = 7800.0
    #: refresh cycle time (tRFC for a 4-8 Gb class device).
    t_rfc: float = 350.0

    def __post_init__(self) -> None:
        for name in (
            "t_ras", "t_rp", "t_rcd", "t_bl", "t_dpu_clk", "t_refi", "t_rfc",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_rfc >= self.t_refi:
            raise ValueError("t_rfc must be smaller than t_refi")

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the array is blocked by refresh.

        All in-DRAM computation shares the array with the mandatory
        refresh stream: bank throughput derates by tRFC / tREFI
        (~4.5% at the DDR3/4 nominal values).  The derating is common
        to every in-DRAM platform, so the paper's ratios are
        unaffected; it matters for absolute wall-clock numbers.
        """
        return self.t_rfc / self.t_refi

    def with_refresh(self, busy_ns: float) -> float:
        """Wall-clock time of ``busy_ns`` of array work incl. refresh."""
        if busy_ns < 0:
            raise ValueError("busy_ns must be non-negative")
        return busy_ns / (1.0 - self.refresh_overhead)

    @property
    def t_aap(self) -> float:
        """ACTIVATE-ACTIVATE-PRECHARGE: the bulk-copy/compute primitive."""
        return 2.0 * self.t_ras + self.t_rp

    @property
    def t_ap(self) -> float:
        """ACTIVATE-PRECHARGE: one row cycle (tRC)."""
        return self.t_ras + self.t_rp

    @property
    def t_read_row(self) -> float:
        """Read one full row out through the global row buffer."""
        return self.t_rcd + self.t_bl + self.t_rp

    @property
    def t_write_row(self) -> float:
        """Write one full row from the global row buffer."""
        return self.t_rcd + self.t_bl + self.t_rp


#: Cycle cost (in row cycles) of each logical in-memory operation for
#: PIM-Assembler.  The baselines' costs live in
#: :mod:`repro.platforms.params` so that every platform's assumptions sit
#: next to each other.
@dataclass(frozen=True)
class OperationCycles:
    """Row-cycle counts for PIM-Assembler's logical operations.

    ``xnor_compute`` is the single charge-sharing cycle of the new SA;
    ``xnor_total`` includes the two RowClones that stage the operands in
    the compute rows.  ``add_per_bit`` is the 2-cycle carry+sum pair.
    """

    copy: int = 1
    xnor_compute: int = 1
    xnor_stage: int = 2
    carry: int = 1
    sum_: int = 1

    @property
    def xnor_total(self) -> int:
        return self.xnor_stage + self.xnor_compute

    @property
    def add_per_bit(self) -> int:
        return self.carry + self.sum_

    def compress_3to2(self) -> int:
        """Cycles for one 3:2 carry-save compression of three rows."""
        return self.carry + self.sum_

    def ripple_add(self, bits: int) -> int:
        """Cycles for the final bit-serial add of two m-bit words.

        The paper's Fig. 8 text: "This process concluded after 2 x m
        cycles, where m is the number of bits in elements."
        """
        if bits <= 0:
            raise ValueError("bits must be positive")
        return 2 * bits


DEFAULT_TIMING = TimingParameters()
DEFAULT_CYCLES = OperationCycles()


@lru_cache(maxsize=None)
def command_latency_table(timing: TimingParameters) -> dict:
    """Mnemonic -> latency (ns), resolved once per timing configuration.

    ``TimingParameters`` derives every latency through properties, so a
    per-command lookup in a hot loop re-runs the arithmetic each time.
    Both schedulers (the trace replayer and the bulk engine's batched
    AAP scheduler) read this cached table instead; the frozen dataclass
    is hashable, so one table exists per distinct configuration.
    """
    return {
        "AAP1": timing.t_aap,
        "AAP2": timing.t_aap,
        "AAP3": timing.t_aap,
        "SUM": timing.t_aap,
        "LATCH_LD": timing.t_ap,
        # A row init is one RowClone from a reserved constant row; the
        # stats ledger charges it as AAP1, the trace keeps the mnemonic
        # (and the fill value) so replay stays faithful.
        "ROW_INIT": timing.t_aap,
        # Latch reset rides on the precharge of the surrounding AAP:
        # no extra command, no extra time.
        "LATCH_CLR": 0.0,
        "MEM_WR": timing.t_write_row,
        "MEM_RD": timing.t_read_row,
        "DPU": timing.t_dpu_clk,
        # Data-at-rest integrity commands (repro.core.integrity): a
        # refresh burst blocks the array for tRFC; an ECC syndrome
        # check reads a codeword row through the SA XOR path (one AAP);
        # a sidecar re-encode likewise; a correction writes the healed
        # word back through the row buffer.
        "REF": timing.t_rfc,
        "ECC_CHK": timing.t_aap,
        "ECC_ENC": timing.t_aap,
        "ECC_FIX": timing.t_write_row,
    }


@lru_cache(maxsize=None)
def command_cost_table(timing: TimingParameters, energy: Any) -> dict:
    """Mnemonic -> (latency ns, energy nJ) for one timing/energy pair.

    The energy object is ``repro.core.energy.EnergyParameters`` (typed
    loosely to keep this module import-free of the energy module, which
    imports timing).  Used by the batched AAP scheduler to charge whole
    gangs with two dict lookups instead of 2N property evaluations.
    """
    latencies = command_latency_table(timing)
    energies = {
        "AAP1": energy.e_aap_copy,
        "AAP2": energy.e_compute2,
        "AAP3": energy.e_tra,
        "SUM": energy.e_sum_cycle,
        "LATCH_LD": energy.e_activate,
        "ROW_INIT": energy.e_aap_copy,
        "LATCH_CLR": 0.0,
        "MEM_WR": energy.e_write_row,
        "MEM_RD": energy.e_read_row,
        "DPU": energy.e_dpu_op,
        "REF": energy.e_refresh,
        "ECC_CHK": energy.e_compute2,
        "ECC_ENC": energy.e_sum_cycle,
        "ECC_FIX": energy.e_write_row,
    }
    return {name: (latencies[name], energies[name]) for name in latencies}


@lru_cache(maxsize=None)
def command_energy_table(timing: TimingParameters, energy: Any) -> dict:
    """Mnemonic -> energy (nJ): the energy column of the cost table.

    Convenience view for consumers that only attribute energy (the
    power-timeline inspector, ``benchmarks/bench_power_timeline.py``)
    without re-deriving latencies.
    """
    return {
        name: cost[1]
        for name, cost in command_cost_table(timing, energy).items()
    }
