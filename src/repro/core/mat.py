"""A MAT: a grid of computational sub-arrays with shared GRD/GRB + DPU.

Sub-arrays are instantiated lazily: a full default device holds 32 768
sub-arrays (~8.6 GB of functional state), but any realistic functional
run touches only a handful.  Untouched sub-arrays hold all-zero bits by
definition, so laziness is observationally equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dpu import Dpu
from repro.core.storage import BitPlaneStore
from repro.core.subarray import SubArray
from repro.dram.geometry import MatGeometry
from repro.errors import BufferStateError


@dataclass
class GlobalRowBuffer:
    """The MAT-shared row buffer through which host reads/writes travel."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        self._data = np.zeros(self.width, dtype=np.uint8)
        self._valid = False

    def load(self, bits: np.ndarray) -> None:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (self.width,):
            raise ValueError(f"GRB expects shape ({self.width},)")
        self._data = arr.copy()
        self._valid = True

    def read(self) -> np.ndarray:
        if not self._valid:
            raise BufferStateError("global row buffer read before load")
        return self._data.copy()

    @property
    def valid(self) -> bool:
        return self._valid

    def invalidate(self) -> None:
        self._valid = False


@dataclass
class Mat:
    """One MAT of the PIM-Assembler hierarchy (lazy sub-array storage)."""

    geometry: MatGeometry = field(default_factory=MatGeometry)
    #: the device-wide packed bit store; ``None`` lets each sub-array
    #: fall back to a private store (standalone MATs in tests)
    store: "BitPlaneStore | None" = None
    #: conversion-counter label of the owning bank
    label: str = "unbound"

    def __post_init__(self) -> None:
        self._subarrays: dict[int, SubArray] = {}
        self.dpu = Dpu(width=self.geometry.subarray.cols)
        self.grb = GlobalRowBuffer(width=self.geometry.subarray.cols)

    def subarray(self, index: int) -> SubArray:
        if not 0 <= index < self.geometry.num_subarrays:
            raise IndexError(
                f"sub-array index {index} out of range "
                f"0..{self.geometry.num_subarrays - 1}"
            )
        if index not in self._subarrays:
            self._subarrays[index] = SubArray(
                self.geometry.subarray, store=self.store, label=self.label
            )
        return self._subarrays[index]

    @property
    def num_subarrays(self) -> int:
        return self.geometry.num_subarrays

    @property
    def instantiated_subarrays(self) -> int:
        """How many sub-arrays have actually been touched (for tests)."""
        return len(self._subarrays)
