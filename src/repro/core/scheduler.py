"""Trace-driven command scheduling and timing validation.

The ledger charges each command's latency as if the machine were a
single queue; real DRAM overlaps commands to *different* sub-arrays and
banks.  :class:`TraceScheduler` replays a
:class:`~repro.core.trace.CommandTrace` against a resource model —
every sub-array is busy for its command's duration, every MAT's GRB
serialises host reads/writes, DPU ops ride their MAT — and reports the
*scheduled makespan*: the wall-clock a controller exploiting all
sub-array parallelism would need.

Uses:

* **parallelism audit** — ``speedup = serial_time / makespan`` measures
  how much sub-array-level parallelism an algorithm's command stream
  actually exposes (the hash-partitioned hashmap should be near the
  number of partitions; a single-sub-array reduction near 1);
* **timing validation** — the makespan can never exceed the serial sum
  and never undercut the busiest resource (critical path); both bounds
  are asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.timing import DEFAULT_TIMING, TimingParameters
from repro.core.trace import CommandTrace, TraceEntry


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of scheduling one trace."""

    makespan_ns: float
    serial_ns: float
    per_subarray_busy_ns: dict[tuple[int, int, int], float]
    commands: int

    @property
    def parallel_speedup(self) -> float:
        """serial / makespan — the exposed sub-array parallelism."""
        if self.makespan_ns <= 0:
            return 1.0
        return self.serial_ns / self.makespan_ns

    @property
    def critical_resource_ns(self) -> float:
        return max(self.per_subarray_busy_ns.values(), default=0.0)

    @property
    def utilisation(self) -> float:
        """Mean busy fraction of the touched sub-arrays."""
        if not self.per_subarray_busy_ns or self.makespan_ns <= 0:
            return 0.0
        mean_busy = sum(self.per_subarray_busy_ns.values()) / len(
            self.per_subarray_busy_ns
        )
        return mean_busy / self.makespan_ns


@dataclass
class TraceScheduler:
    """Greedy list scheduler over per-sub-array and per-MAT resources.

    Commands issue in trace order (the controller is in-order), but a
    command only waits for *its own* resources: the target sub-array,
    plus the MAT's GRB for host I/O (``MEM_RD``/``MEM_WR``).  This
    mirrors how independent sub-arrays proceed concurrently under one
    command stream with per-bank queues.
    """

    timing: TimingParameters = field(default_factory=lambda: DEFAULT_TIMING)

    def command_latency_ns(self, entry: TraceEntry) -> float:
        t = self.timing
        table = {
            "AAP1": t.t_aap,
            "AAP2": t.t_aap,
            "AAP3": t.t_aap,
            "SUM": t.t_aap,
            "LATCH_LD": t.t_ap,
            "MEM_WR": t.t_write_row,
            "MEM_RD": t.t_read_row,
            "DPU": t.t_dpu_clk,
        }
        try:
            return table[entry.mnemonic]
        except KeyError:
            raise ValueError(
                f"no latency model for mnemonic {entry.mnemonic!r}"
            ) from None

    def schedule(self, trace: CommandTrace) -> ScheduleReport:
        """Compute the parallel makespan of a trace."""
        subarray_free: dict[tuple[int, int, int], float] = {}
        grb_free: dict[tuple[int, int], float] = {}
        busy: dict[tuple[int, int, int], float] = {}
        makespan = 0.0
        serial = 0.0

        for entry in trace:
            latency = self.command_latency_ns(entry)
            serial += latency
            start = subarray_free.get(entry.subarray, 0.0)
            if entry.mnemonic in ("MEM_RD", "MEM_WR"):
                mat_key = entry.subarray[:2]
                start = max(start, grb_free.get(mat_key, 0.0))
            finish = start + latency
            subarray_free[entry.subarray] = finish
            if entry.mnemonic in ("MEM_RD", "MEM_WR"):
                grb_free[entry.subarray[:2]] = finish
            busy[entry.subarray] = busy.get(entry.subarray, 0.0) + latency
            makespan = max(makespan, finish)

        return ScheduleReport(
            makespan_ns=makespan,
            serial_ns=serial,
            per_subarray_busy_ns=busy,
            commands=len(trace),
        )


def audit_parallelism(
    trace: CommandTrace, timing: TimingParameters | None = None
) -> ScheduleReport:
    """One-call scheduling of a recorded trace."""
    scheduler = TraceScheduler(timing=timing or DEFAULT_TIMING)
    return scheduler.schedule(trace)
