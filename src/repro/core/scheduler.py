"""Trace-driven command scheduling and timing validation.

The ledger charges each command's latency as if the machine were a
single queue; real DRAM overlaps commands to *different* sub-arrays and
banks.  :class:`TraceScheduler` replays a
:class:`~repro.core.trace.CommandTrace` against a resource model —
every sub-array is busy for its command's duration, every MAT's GRB
serialises host reads/writes, DPU ops ride their MAT — and reports the
*scheduled makespan*: the wall-clock a controller exploiting all
sub-array parallelism would need.

Uses:

* **parallelism audit** — ``speedup = serial_time / makespan`` measures
  how much sub-array-level parallelism an algorithm's command stream
  actually exposes (the hash-partitioned hashmap should be near the
  number of partitions; a single-sub-array reduction near 1);
* **timing validation** — the makespan can never exceed the serial sum
  and never undercut the busiest resource (critical path); both bounds
  are asserted by the tests.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.timing import (
    DEFAULT_TIMING,
    TimingParameters,
    command_cost_table,
    command_latency_table,
)
from repro.core.trace import CommandTrace, TraceEntry
from repro.observability.metrics import inc, observe


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of scheduling one trace."""

    makespan_ns: float
    serial_ns: float
    per_subarray_busy_ns: dict[tuple[int, int, int], float]
    commands: int

    @property
    def parallel_speedup(self) -> float:
        """serial / makespan — the exposed sub-array parallelism."""
        if self.makespan_ns <= 0:
            return 1.0
        return self.serial_ns / self.makespan_ns

    @property
    def critical_resource_ns(self) -> float:
        return max(self.per_subarray_busy_ns.values(), default=0.0)

    @property
    def utilisation(self) -> float:
        """Mean busy fraction of the touched sub-arrays."""
        if not self.per_subarray_busy_ns or self.makespan_ns <= 0:
            return 0.0
        mean_busy = sum(self.per_subarray_busy_ns.values()) / len(
            self.per_subarray_busy_ns
        )
        return mean_busy / self.makespan_ns


@dataclass
class TraceScheduler:
    """Greedy list scheduler over per-sub-array and per-MAT resources.

    Commands issue in trace order (the controller is in-order), but a
    command only waits for *its own* resources: the target sub-array,
    plus the MAT's GRB for host I/O (``MEM_RD``/``MEM_WR``).  This
    mirrors how independent sub-arrays proceed concurrently under one
    command stream with per-bank queues.
    """

    timing: TimingParameters = field(default_factory=lambda: DEFAULT_TIMING)

    def command_latency_ns(self, entry: TraceEntry) -> float:
        try:
            return command_latency_table(self.timing)[entry.mnemonic]
        except KeyError:
            raise ValueError(
                f"no latency model for mnemonic {entry.mnemonic!r}"
            ) from None

    def schedule(self, trace: CommandTrace) -> ScheduleReport:
        """Compute the parallel makespan of a trace."""
        subarray_free: dict[tuple[int, int, int], float] = {}
        grb_free: dict[tuple[int, int], float] = {}
        busy: dict[tuple[int, int, int], float] = {}
        makespan = 0.0
        serial = 0.0

        for entry in trace:
            latency = self.command_latency_ns(entry)
            serial += latency
            start = subarray_free.get(entry.subarray, 0.0)
            if entry.mnemonic in ("MEM_RD", "MEM_WR"):
                mat_key = entry.subarray[:2]
                start = max(start, grb_free.get(mat_key, 0.0))
            finish = start + latency
            subarray_free[entry.subarray] = finish
            if entry.mnemonic in ("MEM_RD", "MEM_WR"):
                grb_free[entry.subarray[:2]] = finish
            busy[entry.subarray] = busy.get(entry.subarray, 0.0) + latency
            makespan = max(makespan, finish)

        return ScheduleReport(
            makespan_ns=makespan,
            serial_ns=serial,
            per_subarray_busy_ns=busy,
            commands=len(trace),
        )


def audit_parallelism(
    trace: CommandTrace, timing: TimingParameters | None = None
) -> ScheduleReport:
    """One-call scheduling of a recorded trace."""
    scheduler = TraceScheduler(timing=timing or DEFAULT_TIMING)
    return scheduler.schedule(trace)


# --------------------------------------------------------------------------
# Batched AAP scheduling (the bulk execution engine's timed view)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchReport:
    """Outcome of flushing one command batch to the ledger."""

    serial_ns: float
    makespan_ns: float
    commands: int

    @property
    def coalescing_speedup(self) -> float:
        """serial / makespan — parallelism exposed by gang coalescing."""
        if self.makespan_ns <= 0:
            return 1.0
        return self.serial_ns / self.makespan_ns


class BatchedAapScheduler:
    """Coalesces independent per-sub-array op streams into gang issues.

    The scalar controller charges every command as if the machine were
    one queue.  The bulk engine instead queues *counts* of commands per
    (mnemonic, resource) pair and flushes them in one pass: commands
    against different sub-arrays share command slots (gang issue, the
    SIMD execution of Section III), so wall-clock time is the busiest
    resource's serial time — the same resource model
    :class:`TraceScheduler` replays trace-entry by trace-entry, but
    computed in O(resources) instead of O(commands).

    Resources:

    * each sub-array serialises its own AAP/SUM/LATCH stream;
    * each MAT's GRB serialises host reads/writes (which also occupy
      the source/target sub-array);
    * each MAT's DPU runs reduce ops — a *separate* resource, which is
      what makes the XNOR→AND fusion free: the DPU reduce of row ``i``
      overlaps the AAP of row ``i+1``.

    Charging: at :meth:`flush` the batch's makespan is computed, and
    each mnemonic is recorded with its full energy and command count
    but with its serial time scaled by ``makespan / serial`` so the
    phase totals add up to the gang-scheduled wall-clock (documented in
    ``docs/CALIBRATION.md``).  Per-command costs come from the cached
    :func:`repro.core.timing.command_cost_table`.
    """

    def __init__(self, ledger, timing=None, energy=None, log=None) -> None:
        from repro.core.energy import DEFAULT_ENERGY  # energy imports timing

        self.ledger = ledger
        self.timing = timing or DEFAULT_TIMING
        self.energy = energy or DEFAULT_ENERGY
        self.costs = command_cost_table(self.timing, self.energy)
        #: optional :class:`repro.core.trace.ChargeLog` (duck-typed:
        #: anything with ``charge()``/``flush()``) fed for audit.
        self.log = log
        self._busy: dict[tuple, float] = defaultdict(float)
        self._time_ns: Counter = Counter()
        self._energy_nj: Counter = Counter()
        self._counts: Counter = Counter()

    # ----- queueing -------------------------------------------------------

    def charge(
        self,
        mnemonic: str,
        subarray_key: tuple[int, int, int],
        count: int = 1,
    ) -> None:
        """Queue ``count`` commands of one kind against one sub-array."""
        if count <= 0:
            return
        try:
            time_ns, energy_nj = self.costs[mnemonic]
        except KeyError:
            raise ValueError(
                f"no cost model for mnemonic {mnemonic!r}"
            ) from None
        total_ns = count * time_ns
        if self.log is not None:
            self.log.charge(mnemonic, subarray_key, count, total_ns)
        self._time_ns[mnemonic] += total_ns
        self._energy_nj[mnemonic] += count * energy_nj
        self._counts[mnemonic] += count
        if mnemonic == "DPU":
            self._busy[("dpu", *subarray_key[:2])] += total_ns
        else:
            self._busy[subarray_key] += total_ns
            if mnemonic in ("MEM_RD", "MEM_WR"):
                self._busy[("grb", *subarray_key[:2])] += total_ns

    # ----- op-fusion pass --------------------------------------------------

    def fused_compare(
        self, subarray_key: tuple[int, int, int], scanned: int
    ) -> None:
        """One fused XNOR→AND(-reduce) kernel over ``scanned`` rows.

        Issues the scan's AAP copy + AAP compute per candidate row on
        the sub-array and its AND/popcount reduce on the MAT's DPU —
        the DPU leg lands on its own resource, so the reduction is
        hidden behind the next row's activations (fusion rule 1).
        """
        self.charge("AAP1", subarray_key, scanned)
        self.charge("AAP2", subarray_key, scanned)
        self.charge("DPU", subarray_key, scanned)

    def fused_add(
        self, subarray_key: tuple[int, int, int], bit_planes: int
    ) -> None:
        """Carry+sum pairs for ``bit_planes`` positions as one batch.

        The 2-cycle-per-bit pair (SUM + TRA) of the ripple adder issues
        back to back without per-op dispatch (fusion rule 2).
        """
        self.charge("SUM", subarray_key, bit_planes)
        self.charge("AAP3", subarray_key, bit_planes)

    # ----- flushing ----------------------------------------------------------

    @property
    def pending_commands(self) -> int:
        return sum(self._counts.values())

    def flush(self) -> BatchReport:
        """Charge the queued batch to the ledger as one gang schedule."""
        serial = float(sum(self._time_ns.values()))
        makespan = max(self._busy.values(), default=0.0)
        commands = self.pending_commands
        if self.log is not None and commands:
            self.log.flush(serial, makespan, commands)
        scale = (makespan / serial) if serial > 0 else 0.0
        for mnemonic, count in self._counts.items():
            self.ledger.record(
                mnemonic,
                time_ns=self._time_ns[mnemonic] * scale,
                energy_nj=self._energy_nj[mnemonic],
                count=count,
            )
        self._busy.clear()
        self._time_ns.clear()
        self._energy_nj.clear()
        self._counts.clear()
        if commands:
            inc("pim.batch.flushes")
            observe("pim.batch.commands", commands)
            observe("pim.batch.makespan_ns", makespan)
            observe(
                "pim.batch.speedup",
                (serial / makespan) if makespan > 0 else 1.0,
            )
        return BatchReport(
            serial_ns=serial, makespan_ns=makespan, commands=commands
        )


# --------------------------------------------------------------------------
# Optimised-trace replay (the `--aap-opt` path)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GangReplayReport:
    """Outcome of replaying a gang-annotated optimised stream."""

    commands: int
    gang_slots: int
    ganged_commands: int
    skipped: int

    @property
    def command_slots(self) -> int:
        """Issue slots consumed: singles plus one per gang."""
        return self.commands - self.ganged_commands + self.gang_slots


class _NullLedger:
    """Absorbs charges when only the schedule report is wanted."""

    def record(self, *args: object, **kwargs: object) -> None:
        pass


def charge_stream(trace, timing=None, energy=None, log=None) -> BatchReport:
    """Price a recorded stream through the batched gang scheduler.

    Every command is queued against its (mnemonic, resource) pair and
    the batch is flushed once — the returned :class:`BatchReport`
    carries the serial time and the gang-coalesced makespan the bulk
    engine's resource model assigns the stream.  Nothing is charged to
    a real ledger; this is the reporting path ``optimize-trace`` and
    the benchmarks use to quote coalesced wall-clock.
    """
    scheduler = BatchedAapScheduler(
        _NullLedger(), timing=timing, energy=energy, log=log
    )
    for entry in trace:
        scheduler.charge(entry.mnemonic, entry.subarray)
    return scheduler.flush()


def replay_optimized(doc, controller) -> GangReplayReport:
    """Replay an optimised trace document, honouring its gang slots.

    ``meta["gangs"]`` windows (``[start, length]`` into the entry list,
    as emitted by the optimiser's gang-merge pass and validated by the
    equivalence judge's E005 rule) are issued through the controller's
    gang paths — one command slot, energy per member; everything else
    replays entry by entry like :func:`repro.core.trace.replay`,
    skipping ``MEM_RD``/``DPU`` observations.

    Raises:
        ValueError: on a gang window naming a non-gangable mnemonic or
            mixing mnemonics (malformed annotations; run the
            equivalence checker first).
    """
    from repro.core.isa import RowAddress, SAOp
    from repro.core.trace import replay_entry

    def addr(entry, row: int) -> RowAddress:
        bank, mat, sub = entry.subarray
        return RowAddress(bank=bank, mat=mat, subarray=sub, row=row)

    entries = doc.trace.entries()
    gang_at: dict[int, int] = {}
    for start, length in doc.meta.get("gangs") or []:
        gang_at[int(start)] = int(length)

    commands = slots = ganged = skipped = 0
    i = 0
    while i < len(entries):
        length = gang_at.get(i, 0)
        if length >= 2 and i + length <= len(entries):
            members = entries[i : i + length]
            mnemonics = {m.mnemonic for m in members}
            if len(mnemonics) != 1:
                raise ValueError(
                    f"gang at entry {i} mixes mnemonics {sorted(mnemonics)}"
                )
            mnemonic = members[0].mnemonic
            if mnemonic == "AAP1":
                controller.gang_copy(
                    [
                        (addr(e, e.rows[0]), addr(e, e.rows[1]))
                        for e in members
                    ]
                )
            elif mnemonic == "AAP2":
                controller.gang_compute2(
                    [
                        (
                            addr(e, e.rows[0]),
                            addr(e, e.rows[1]),
                            addr(e, e.rows[2]),
                        )
                        for e in members
                    ],
                    SAOp.XNOR2,
                )
            else:
                raise ValueError(
                    f"gang at entry {i} has non-gangable mnemonic "
                    f"{mnemonic!r}"
                )
            slots += 1
            ganged += length
            commands += length
            i += length
            continue
        if replay_entry(entries[i], controller):
            commands += 1
        else:
            skipped += 1
        i += 1
    return GangReplayReport(
        commands=commands,
        gang_slots=slots,
        ganged_commands=ganged,
        skipped=skipped,
    )
