"""Data-at-rest integrity: retention bit rot, SECDED ECC, refresh/scrub.

The fault model (:mod:`repro.core.faults`) perturbs *operations*; this
module perturbs *storage*.  PIM-Assembler's k-mer table resides in the
DRAM arrays for the whole run, so cells whose retention time falls
below the refresh window (:class:`repro.dram.retention.RetentionModel`)
silently lose bits between refreshes.  Three cooperating pieces close
the loop:

* **bit-rot injector** — driven purely by *simulated* time from the
  :class:`~repro.core.stats.StatsLedger`: each elapsed retention window
  draws a seeded binomial number of upsets over the packed
  :class:`~repro.core.storage.BitPlaneStore` tensor and XORs them in
  directly, bypassing the store mutators (rot is invisible to the ECC
  sidecar — that is the point).  Flips are a pure function of
  ``(seed, window index)``, so a resumed job replays the identical rot.
* **SECDED(72,64) codec** — a Hamming(71,64) code plus overall parity,
  one code byte per stored 64-bit word, vectorised with numpy XOR-folds
  over whole ``(slots, rows, words)`` planes.  Single-bit upsets are
  corrected in place; double-bit upsets are detected and surface as
  :class:`~repro.errors.UncorrectableFaultError` (strict decode) or as
  escalations into the resilience quarantine path (scrub).
* **refresh/scrub scheduler** — :meth:`IntegrityEngine.sync`, called
  between pipeline stages and inside the read loop, charges the covered
  refresh stream (``REF`` at tREFI cadence) and every ECC check/encode/
  fix through the ledger (no free repairs), and escalates repeatedly
  upset rows to the PR 1 resilience engine (weak-row retirement, then
  sub-array quarantine on uncorrectable loss).

The codec's bit layout: Hamming positions ``1..71`` carry the 64 data
bits at non-power-of-two positions and the 7 check bits at positions
``1, 2, 4, ..., 64``; the code byte stores check bit *i* at bit *i* of
positions ``2**i`` and the overall (SEC-vs-DED discriminating) parity
at bit 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.stats import StatsLedger
from repro.core.storage import BitPlaneStore, WORD_BITS, popcount_words
from repro.core.timing import TimingParameters, command_cost_table
from repro.dram.retention import RetentionModel
from repro.errors import FaultConfigError, UncorrectableFaultError
from repro.observability.metrics import inc
from repro.observability.spans import event, span

__all__ = [
    "IntegrityConfig",
    "IntegrityCounts",
    "IntegrityEngine",
    "decode_secded",
    "encode_secded",
    "scrub_planes",
]

#: Hamming check-bit positions (powers of two) within codeword 1..71
_CHECK_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
#: the 64 data-bit positions: everything in 1..71 that is not a check
_DATA_POSITIONS = tuple(
    p for p in range(1, 72) if p not in _CHECK_POSITIONS
)
assert len(_DATA_POSITIONS) == 64

#: ``_H_MASKS[i]`` selects the data bits whose Hamming position has bit
#: ``i`` set — check bit i is the XOR-fold of ``word & _H_MASKS[i]``
_H_MASKS = np.zeros(7, dtype=np.uint64)
for _d, _p in enumerate(_DATA_POSITIONS):
    for _i in range(7):
        if (_p >> _i) & 1:
            _H_MASKS[_i] |= np.uint64(1) << np.uint64(_d)

#: syndrome -> uint64 single-bit mask to flip in the data word
#: (zero when the syndrome does not point at a data bit)
_SYND_DATA_MASK = np.zeros(128, dtype=np.uint64)
#: syndrome -> True when a parity-odd syndrome means the *code byte*
#: itself took the hit (syndrome 0 = overall-parity bit, power of two =
#: that check bit); the data word is intact
_SYND_CODE_SIDE = np.zeros(128, dtype=bool)
_SYND_CODE_SIDE[0] = True
for _p in _CHECK_POSITIONS:
    _SYND_CODE_SIDE[_p] = True
for _d, _p in enumerate(_DATA_POSITIONS):
    _SYND_DATA_MASK[_p] = np.uint64(1) << np.uint64(_d)


def _parity64(words: np.ndarray) -> np.ndarray:
    """Elementwise parity of uint64 words, as uint8."""
    return (popcount_words(words, axis=None) & 1).astype(np.uint8)


def _parity8(code: np.ndarray) -> np.ndarray:
    """Elementwise parity of uint8 bytes."""
    p = np.asarray(code, dtype=np.uint8)
    p = p ^ (p >> 4)
    p = p ^ (p >> 2)
    p = p ^ (p >> 1)
    return p & np.uint8(1)


def encode_secded(words: np.ndarray) -> np.ndarray:
    """SECDED(72,64) code bytes for an array of uint64 words.

    Fully vectorised: seven XOR-folds (one per check bit) plus two
    parity folds over the whole input, whatever its shape.
    """
    w = np.asarray(words, dtype=np.uint64)
    code = np.zeros(w.shape, dtype=np.uint8)
    for i in range(7):
        code |= _parity64(w & _H_MASKS[i]) << np.uint8(i)
    overall = _parity64(w) ^ _parity8(code)
    return code | (overall << np.uint8(7))


def _encode_word(word: int) -> int:
    """Scalar reference encoder (tests pin the vectorised codec to it)."""
    code = 0
    for i in range(7):
        if bin(word & int(_H_MASKS[i])).count("1") & 1:
            code |= 1 << i
    overall = (bin(word).count("1") + bin(code).count("1")) & 1
    return code | (overall << 7)


def _correct_word(word: int, code: int) -> "tuple[int, int, str]":
    """Scalar reference decoder: ``(word, code, kind)`` where kind is
    ``"clean"`` / ``"data"`` / ``"code"`` / ``"double"``."""
    recomputed = _encode_word(word)
    synd = (recomputed ^ code) & 0x7F
    # overall parity covers every stored bit, so it flips on any single
    # error (data, check, or the parity bit itself)
    odd = (bin(word).count("1") + bin(code).count("1")) & 1
    if synd == 0 and odd == 0:
        return word, code, "clean"
    if odd == 1:
        if _SYND_DATA_MASK[synd]:
            return word ^ int(_SYND_DATA_MASK[synd]), code, "data"
        if _SYND_CODE_SIDE[synd]:
            return word, _encode_word(word), "code"
        return word, code, "double"
    return word, code, "double"


def syndromes(words: np.ndarray, code: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """``(syndrome, parity_odd)`` planes for stored words + code bytes.

    ``syndrome`` is the 7-bit recomputed-vs-stored check difference;
    ``parity_odd`` is 1 where the 72 stored bits have odd parity (the
    encoder always writes even overall parity).
    """
    w = np.asarray(words, dtype=np.uint64)
    c = np.asarray(code, dtype=np.uint8)
    recomputed = np.zeros(w.shape, dtype=np.uint8)
    for i in range(7):
        recomputed |= _parity64(w & _H_MASKS[i]) << np.uint8(i)
    synd = (recomputed ^ c) & np.uint8(0x7F)
    odd = _parity64(w) ^ _parity8(c)
    return synd, odd


def scrub_planes(
    words: np.ndarray, code: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Correct every single-bit upset in ``words``/``code`` in place.

    Returns boolean planes ``(corrected, uncorrectable)`` over the
    input shape.  Single data-bit upsets are flipped back; single
    code-byte upsets re-encode the byte; double-bit (parity-even,
    nonzero-syndrome) and aliased syndromes are *uncorrectable* — the
    data stays as found and the code byte is re-encoded to match, so a
    detected loss is booked exactly once instead of re-firing on every
    later scrub pass.
    """
    w = words
    c = code
    synd, odd = syndromes(w, c)
    idx = synd.astype(np.intp)
    single = odd == 1
    data_hit = single & (_SYND_DATA_MASK[idx] != 0)
    if data_hit.any():
        where = np.nonzero(data_hit)
        w[where] ^= _SYND_DATA_MASK[idx[where]]
    code_hit = single & _SYND_CODE_SIDE[idx]
    uncorrectable = (~single & (synd != 0)) | (
        single & ~data_hit & ~_SYND_CODE_SIDE[idx]
    )
    refresh = code_hit | uncorrectable
    if refresh.any():
        where = np.nonzero(refresh)
        c[where] = encode_secded(w[where])
    return data_hit | code_hit, uncorrectable


def decode_secded(
    words: np.ndarray,
    code: np.ndarray,
    subarray_key: "tuple[int, int, int]" = (0, 0, 0),
) -> np.ndarray:
    """Strict decode: corrected copy of ``words``, or a typed raise.

    Raises:
        UncorrectableFaultError: any word carries a detected-but-
            uncorrectable (double-bit or aliased) upset.
    """
    w = np.array(words, dtype=np.uint64, copy=True)
    c = np.array(code, dtype=np.uint8, copy=True)
    _, uncorrectable = scrub_planes(w, c)
    if uncorrectable.any():
        raise UncorrectableFaultError(
            subarray_key, "retention", int(uncorrectable.sum())
        )
    return w


@dataclass(frozen=True)
class IntegrityConfig:
    """Configuration of the rot → ECC → refresh/scrub loop.

    Attributes:
        ecc: ``"secded"`` maintains the per-word code sidecar and
            corrects on scrub; ``"off"`` injects rot but never repairs
            (the ablation arm of the acceptance property).
        retention_interval_s: simulated refresh window (tREFW); one rot
            draw happens per elapsed window.
        seed: root of the per-window injection streams.
        model: analytic retention model supplying the per-cell upset
            probability per window.
        upset_probability: override of the model's per-bit-per-window
            probability — the lever tests and chaos scenarios use for
            accelerated aging without a silly-short window.
        weak_row_threshold: correctable upsets one row absorbs before
            the scrubber retires it as weak (remap policies only).
    """

    ecc: str = "secded"
    retention_interval_s: float = 0.064
    seed: int = 0xB17507
    model: RetentionModel = field(default_factory=RetentionModel)
    upset_probability: "float | None" = None
    weak_row_threshold: int = 8

    def __post_init__(self) -> None:
        if self.ecc not in ("off", "secded"):
            raise FaultConfigError(
                f"ecc must be 'off' or 'secded', got {self.ecc!r}"
            )
        if self.retention_interval_s <= 0:
            raise FaultConfigError("retention_interval_s must be positive")
        if self.upset_probability is not None and not (
            0.0 <= self.upset_probability <= 1.0
        ):
            raise FaultConfigError("upset_probability must be within [0, 1]")
        if self.weak_row_threshold < 1:
            raise FaultConfigError("weak_row_threshold must be >= 1")

    @property
    def per_window_probability(self) -> float:
        """Per-bit upset probability per retention window."""
        if self.upset_probability is not None:
            return self.upset_probability
        return self.model.upset_probability_per_window(
            self.retention_interval_s
        )

    def state_dict(self) -> dict:
        return {
            "ecc": self.ecc,
            "retention_interval_s": self.retention_interval_s,
            "seed": self.seed,
            "model": self.model.state_dict(),
            "upset_probability": self.upset_probability,
            "weak_row_threshold": self.weak_row_threshold,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IntegrityConfig":
        return cls(
            ecc=state["ecc"],
            retention_interval_s=float(state["retention_interval_s"]),
            seed=int(state["seed"]),
            model=RetentionModel.from_state(state["model"]),
            upset_probability=(
                None
                if state["upset_probability"] is None
                else float(state["upset_probability"])
            ),
            weak_row_threshold=int(state["weak_row_threshold"]),
        )


@dataclass(frozen=True)
class IntegrityCounts:
    """What the integrity subsystem saw and did (one engine lifetime)."""

    windows: int = 0
    flips_injected: int = 0
    words_corrected: int = 0
    words_uncorrectable: int = 0
    rows_scrubbed: int = 0
    rows_encoded: int = 0
    table_rows_scrubbed: int = 0
    table_repairs: int = 0

    def as_dict(self) -> dict:
        return {
            "windows": self.windows,
            "flips_injected": self.flips_injected,
            "words_corrected": self.words_corrected,
            "words_uncorrectable": self.words_uncorrectable,
            "rows_scrubbed": self.rows_scrubbed,
            "rows_encoded": self.rows_encoded,
            "table_rows_scrubbed": self.table_rows_scrubbed,
            "table_repairs": self.table_repairs,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "IntegrityCounts":
        return cls(**{k: int(v) for k, v in state.items()})


class IntegrityEngine:
    """Run-time state of the data-at-rest integrity subsystem.

    One engine is attached per platform
    (:meth:`repro.core.platform.PimAssembler.attach_integrity`); the
    pipeline calls :meth:`sync` at its rot checkpoints.  The engine is
    deliberately loosely coupled: it sees the store, the stats ledger,
    the timing/energy cost tables and two late-bound resolvers — one
    mapping store slots to sub-array keys, one yielding the current
    resilience engine — so attach order never matters.
    """

    def __init__(
        self,
        config: IntegrityConfig,
        store: BitPlaneStore,
        stats: StatsLedger,
        timing: TimingParameters,
        energy,
        slot_keys: "Callable[[], dict] | None" = None,
        resilience: "Callable[[], object | None] | None" = None,
    ) -> None:
        self.config = config
        self._store = store
        self._stats = stats
        self._timing = timing
        self._energy = energy
        self._slot_keys = slot_keys
        self._resilience = resilience
        self._windows_done = 0
        self._tallies: dict[str, int] = {
            "windows": 0,
            "flips_injected": 0,
            "words_corrected": 0,
            "words_uncorrectable": 0,
            "rows_scrubbed": 0,
            "rows_encoded": 0,
            "table_rows_scrubbed": 0,
            "table_repairs": 0,
        }
        #: correctable upsets per (slot, row) — weak-row escalation
        self._row_upsets: dict[tuple[int, int], int] = {}
        if config.ecc == "secded" and not store.ecc_enabled:
            store.enable_ecc(encode_secded)

    # ----- bookkeeping helpers ---------------------------------------------

    @property
    def window_ns(self) -> float:
        return self.config.retention_interval_s * 1e9

    def counts(self) -> IntegrityCounts:
        return IntegrityCounts(**self._tallies)

    def _charge(self, mnemonic: str, count: int) -> None:
        if count <= 0:
            return
        latency, energy_nj = command_cost_table(self._timing, self._energy)[
            mnemonic
        ]
        self._stats.record(
            mnemonic, latency * count, energy_nj * count, count=count
        )

    def _subarray_key(self, slot: int) -> "tuple[int, int, int]":
        if self._slot_keys is not None:
            key = self._slot_keys().get(slot)
            if key is not None:
                return key
        return (0, 0, slot)

    # ----- the rot / refresh / scrub checkpoint ----------------------------

    def sync(self) -> IntegrityCounts:
        """Advance rot to the current simulated time, refresh, scrub.

        Windows are derived from the ledger's total simulated time, so
        rot between two syncs is exactly the rot of the simulated
        interval the workload spent — on either execution engine, at
        whatever call cadence the pipeline chooses.
        """
        pending = int(self._stats.elapsed_ns() // self.window_ns) - (
            self._windows_done
        )
        if pending > 0:
            with span(
                "integrity.scrub", lane="integrity", windows=pending
            ):
                first = self._windows_done
                for index in range(first, first + pending):
                    self._inject_window(index)
                self._windows_done = first + pending
                self._tallies["windows"] += pending
                inc("integrity.refresh.windows", pending)
                # the refresh stream of the covered interval: one REF
                # burst (tRFC) per elapsed tREFI
                self._charge(
                    "REF",
                    max(
                        1,
                        int(round(pending * self.window_ns / self._timing.t_refi)),
                    ),
                )
                if self.config.ecc == "secded":
                    self._scrub_pass()
        self._drain_encodes()
        return self.counts()

    def _drain_encodes(self) -> None:
        if not self._store.ecc_enabled:
            return
        encoded = self._store.drain_encoded_rows()
        if encoded:
            self._tallies["rows_encoded"] += encoded
            self._charge("ECC_ENC", encoded)

    def _inject_window(self, index: int) -> None:
        """Draw and apply one window's seeded upsets to the word planes."""
        store = self._store
        n = store.n_slots
        probability = self.config.per_window_probability
        if n == 0 or probability <= 0.0:
            return
        flat = store.tensor[:n].reshape(-1)
        total_bits = flat.size * WORD_BITS
        rng = np.random.default_rng((self.config.seed, index))
        upsets = int(rng.binomial(total_bits, min(1.0, probability)))
        if upsets == 0:
            return
        positions = rng.integers(0, total_bits, size=upsets, dtype=np.int64)
        word_index = positions >> 6
        bit = (positions & 63).astype(np.uint64)
        # never rot a tail bit: those columns do not exist physically,
        # and the packed-store invariant keeps them zero
        in_row = (word_index % store.words).astype(np.intp)
        live = ((store.col_mask_words[in_row] >> bit) & np.uint64(1)) == 1
        word_index, bit = word_index[live], bit[live]
        if word_index.size:
            np.bitwise_xor.at(flat, word_index, np.uint64(1) << bit)
            self._tallies["flips_injected"] += int(word_index.size)
            inc("integrity.flips_injected", int(word_index.size))

    def _scrub_pass(self) -> None:
        """One whole-store ECC pass: check every row, heal, escalate."""
        store = self._store
        n = store.n_slots
        if n == 0:
            return
        words = store.tensor[:n]
        code = store.ecc_plane[:n]
        corrected, uncorrectable = scrub_planes(words, code)
        rows_checked = n * store.rows
        self._tallies["rows_scrubbed"] += rows_checked
        inc("integrity.scrub.rows", rows_checked)
        # every sub-array checks its own rows behind its own sense amps,
        # so the pass is gang-parallel across slots: latency is one
        # sub-array's row depth, energy is charged for every row touched
        latency, energy_nj = command_cost_table(self._timing, self._energy)[
            "ECC_CHK"
        ]
        self._stats.record(
            "ECC_CHK",
            latency * store.rows,
            energy_nj * rows_checked,
            count=rows_checked,
        )
        n_corrected = int(corrected.sum())
        n_uncorrectable = int(uncorrectable.sum())
        if not (n_corrected or n_uncorrectable):
            return
        self._tallies["words_corrected"] += n_corrected
        self._tallies["words_uncorrectable"] += n_uncorrectable
        inc("integrity.ecc.corrected", n_corrected)
        inc("integrity.ecc.uncorrectable", n_uncorrectable)
        # every healed or re-encoded word is written back through the
        # row buffer — repairs are charged, never free
        self._charge("ECC_FIX", n_corrected + n_uncorrectable)
        engine = self._resilience() if self._resilience is not None else None
        if n_corrected:
            for slot, row in np.argwhere(corrected.any(axis=2)):
                cell = (int(slot), int(row))
                hits = self._row_upsets.get(cell, 0) + 1
                self._row_upsets[cell] = hits
                if hits >= self.config.weak_row_threshold and engine is not None:
                    engine.mark_weak_row(self._subarray_key(cell[0]), cell[1])
        if n_uncorrectable:
            event(
                "integrity.uncorrectable",
                lane="integrity",
                words=n_uncorrectable,
            )
            if engine is not None:
                for slot, row in np.argwhere(uncorrectable.any(axis=2)):
                    engine.note_uncorrected(
                        self._subarray_key(int(slot)), int(row)
                    )

    # ----- table-scrub reporting (assembly/hashmap satellite) ---------------

    def note_table_scrub(self, checked: int, repaired: int) -> None:
        """Fold a hash-table scrub pass into the integrity counters, so
        the table scrubber and the ECC scrubber report one repair
        stream."""
        self._tallies["table_rows_scrubbed"] += checked
        self._tallies["table_repairs"] += repaired
        inc("integrity.scrub.table_rows", checked)
        if repaired:
            inc("integrity.scrub.table_repairs", repaired)

    # ----- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "config": self.config.state_dict(),
            "windows_done": self._windows_done,
            "tallies": dict(self._tallies),
            "row_upsets": [
                [slot, row, count]
                for (slot, row), count in sorted(self._row_upsets.items())
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore window progress and counters (config stays as built)."""
        self._windows_done = int(state["windows_done"])
        for name, value in state["tallies"].items():
            if name in self._tallies:
                self._tallies[name] = int(value)
        self._row_upsets = {
            (int(slot), int(row)): int(count)
            for slot, row, count in state["row_upsets"]
        }
