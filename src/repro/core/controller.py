"""PIM-Assembler's memory controller (Ctrl).

The controller is the single component that *issues commands*: it
executes ISA instructions against device state (functional view) and
charges their latency/energy to the :class:`~repro.core.stats.StatsLedger`
(timed view).  Higher layers — the platform facade and the assembly
mapping — only ever talk to the controller, exactly as software talks to
the real chip through the three AAP instruction types.

Gang execution
==============

PIM-Assembler's throughput comes from every (bank, MAT) pair executing
the same command on its own sub-array simultaneously.  The controller
models this with *gangs*: a list of same-shape instructions executed in
one time slot.  Wall-clock time is charged once, energy once per member.

Addition protocol
=================

Per-bit ripple addition is the 2-cycle pair the paper describes:

1. **Sum cycle** — two-row activation of ``a_i``/``b_i``; the add-on XOR
   gate combines their XOR2 with the D-latch contents (the carry left by
   the *previous* bit's TRA), producing ``sum_i = a_i ^ b_i ^ c_{i-1}``.
2. **Carry cycle** — TRA over ``a_i``, ``b_i`` and the carry row
   (holding ``c_{i-1}``), producing ``c_i = maj(a_i, b_i, c_{i-1})``,
   captured both in the carry row and the latch.

Hence an m-bit add costs exactly ``2 * m`` row cycles — the figure the
paper quotes for the traversal-stage degree computation (Fig. 8).  The
3:2 carry-save compression used to reduce many 1-bit rows costs one
extra latch-load cycle (3 cycles per compression); the steady-state
2-cycle claim is the per-bit pair above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.device import Device
from repro.core.energy import EnergyParameters, DEFAULT_ENERGY
from repro.core.isa import (
    AapCompute2,
    AapCompute3,
    AapCopy,
    RowAddress,
    SAOp,
)
from repro.core.faults import FaultModel
from repro.core.stats import StatsLedger
from repro.core.timing import TimingParameters, DEFAULT_TIMING


@dataclass
class Controller:
    """Executes AAP command streams against a :class:`Device`."""

    device: Device
    ledger: StatsLedger = field(default_factory=StatsLedger)
    timing: TimingParameters = DEFAULT_TIMING
    energy: EnergyParameters = DEFAULT_ENERGY
    #: optional process-variation fault injection (see repro.core.faults)
    faults: FaultModel | None = None

    def __post_init__(self) -> None:
        self._trace = None

    def _apply_faults(
        self, sub, des_row: int, result, mechanism: str
    ):
        """Corrupt an in-memory op's output per the fault model."""
        if self.faults is None or not self.faults.enabled:
            return result
        corrupted = self.faults.corrupt(result, mechanism)
        if corrupted is not result:
            sub.write_row(des_row, corrupted)
        return corrupted

    # ----- tracing ------------------------------------------------------------

    def attach_trace(self, trace) -> None:
        """Record subsequent commands into a
        :class:`repro.core.trace.CommandTrace` (None detaches)."""
        self._trace = trace

    def _record_trace(
        self,
        mnemonic: str,
        subarray: tuple[int, int, int],
        rows: tuple[int, ...],
        payload: np.ndarray | None = None,
    ) -> None:
        if self._trace is not None:
            self._trace.record(mnemonic, subarray, rows, payload)

    # ----- accounting helpers ----------------------------------------------

    def _charge(self, mnemonic: str, time_ns: float, energy_nj: float, gang: int = 1) -> None:
        self.ledger.record(
            mnemonic, time_ns=time_ns, energy_nj=energy_nj * gang, count=gang
        )

    # ----- single-instruction execution --------------------------------------

    def copy(self, src: RowAddress, des: RowAddress) -> None:
        """Type-1 AAP: RowClone ``src`` into ``des`` (same sub-array)."""
        instr = AapCopy(src=src, des=des)
        self.device.validate_address(src)
        self.device.validate_address(des)
        sub = self.device.subarray_at(src)
        sub.rowclone(src.row, des.row)
        self._record_trace(instr.mnemonic, src.subarray_key, (src.row, des.row))
        self._charge(instr.mnemonic, self.timing.t_aap, self.energy.e_aap_copy)

    def compute2(
        self,
        src1: RowAddress,
        src2: RowAddress,
        des: RowAddress,
        op: SAOp = SAOp.XNOR2,
    ) -> np.ndarray:
        """Type-2 AAP: two-row activation compute; returns the result row."""
        instr = AapCompute2(src1=src1, src2=src2, des=des, op=op)
        for addr in (src1, src2, des):
            self.device.validate_address(addr)
        sub = self.device.subarray_at(src1)
        result = sub.compute2(src1.row, src2.row, des.row, op)
        result = self._apply_faults(sub, des.row, result, "compute2")
        self._record_trace(
            instr.mnemonic, src1.subarray_key, (src1.row, src2.row, des.row)
        )
        self._charge(instr.mnemonic, self.timing.t_aap, self.energy.e_compute2)
        return result

    def tra_carry(
        self,
        src1: RowAddress,
        src2: RowAddress,
        src3: RowAddress,
        des: RowAddress,
    ) -> np.ndarray:
        """Type-3 AAP: TRA majority -> des (and the SA latch)."""
        instr = AapCompute3(src1=src1, src2=src2, src3=src3, des=des)
        for addr in (src1, src2, src3, des):
            self.device.validate_address(addr)
        sub = self.device.subarray_at(src1)
        result = sub.tra_carry(src1.row, src2.row, src3.row, des.row)
        result = self._apply_faults(sub, des.row, result, "tra")
        self._record_trace(
            instr.mnemonic,
            src1.subarray_key,
            (src1.row, src2.row, src3.row, des.row),
        )
        self._charge(instr.mnemonic, self.timing.t_aap, self.energy.e_tra)
        return result

    def sum_cycle(
        self, src1: RowAddress, src2: RowAddress, des: RowAddress
    ) -> np.ndarray:
        """Latch-assisted sum: ``des = src1 ^ src2 ^ latch``."""
        for addr in (src1, src2, des):
            self.device.validate_address(addr)
        if not (src1.same_subarray(src2) and src1.same_subarray(des)):
            raise ValueError("sum-cycle operands must share a sub-array")
        sub = self.device.subarray_at(src1)
        result = sub.sum_cycle(src1.row, src2.row, des.row)
        result = self._apply_faults(sub, des.row, result, "sum")
        self._record_trace("SUM", src1.subarray_key, (src1.row, src2.row, des.row))
        self._charge("SUM", self.timing.t_aap, self.energy.e_sum_cycle)
        return result

    def load_latch(self, src: RowAddress) -> None:
        """Capture one row into the SA latch (one row cycle)."""
        self.device.validate_address(src)
        sub = self.device.subarray_at(src)
        sub.sa.load_latch(sub.read_row(src.row))
        self._record_trace("LATCH_LD", src.subarray_key, (src.row,))
        self._charge("LATCH_LD", self.timing.t_ap, self.energy.e_activate)

    def clear_latch(self, subarray_key: tuple[int, int, int]) -> None:
        """Reset the carry latch (precharge-time side effect; free)."""
        self.device.subarray_at(subarray_key).sa.clear_latch()

    def write_row(self, des: RowAddress, bits: np.ndarray) -> None:
        """Host write through the global row buffer."""
        self.device.validate_address(des)
        mat = self.device.mat_at(des.bank, des.mat)
        arr = np.asarray(bits, dtype=np.uint8)
        mat.grb.load(arr)
        self.device.subarray_at(des).write_row(des.row, mat.grb.read())
        self._record_trace("MEM_WR", des.subarray_key, (des.row,), payload=arr)
        self._charge("MEM_WR", self.timing.t_write_row, self.energy.e_write_row)

    def read_row(self, src: RowAddress) -> np.ndarray:
        """Host read through the global row buffer."""
        self.device.validate_address(src)
        mat = self.device.mat_at(src.bank, src.mat)
        mat.grb.load(self.device.subarray_at(src).read_row(src.row))
        self._record_trace("MEM_RD", src.subarray_key, (src.row,))
        self._charge("MEM_RD", self.timing.t_read_row, self.energy.e_read_row)
        return mat.grb.read()

    # ----- DPU path -----------------------------------------------------------

    def dpu_match(
        self, result_row: RowAddress, mask: np.ndarray | None = None
    ) -> bool:
        """AND-reduce a PIM_XNOR result row: True iff rows matched.

        Args:
            result_row: row holding the XNOR2 output.
            mask: optional validity mask (1 where the comparison is
                meaningful, e.g. the 2k bits of a k-mer).
        """
        self.device.validate_address(result_row)
        mat = self.device.mat_at(result_row.bank, result_row.mat)
        bits = self.device.subarray_at(result_row).read_row(result_row.row)
        if mask is None:
            outcome = mat.dpu.and_reduce(bits)
        else:
            outcome = mat.dpu.masked_and_reduce(bits, mask)
        self._charge("DPU", self.timing.t_dpu_clk, self.energy.e_dpu_op)
        return bool(outcome)

    def dpu_scalar_add(
        self,
        subarray_key: tuple[int, int, int],
        a: int,
        b: int,
        bits: int = 8,
    ) -> int:
        """Non-bulk add on the MAT's DPU (counter increments etc.)."""
        bank, mat_index, _ = subarray_key
        mat = self.device.mat_at(bank, mat_index)
        result = mat.dpu.scalar_add(a, b, bits=bits)
        self._charge("DPU", self.timing.t_dpu_clk, self.energy.e_dpu_op)
        return result

    def dpu_popcount(self, row: RowAddress) -> int:
        self.device.validate_address(row)
        mat = self.device.mat_at(row.bank, row.mat)
        bits = self.device.subarray_at(row).read_row(row.row)
        count = mat.dpu.popcount(bits)
        self._charge("DPU", self.timing.t_dpu_clk, self.energy.e_dpu_op)
        return count

    # ----- gang (SIMD) execution ----------------------------------------------

    def gang_compute2(
        self,
        ops: Sequence[tuple[RowAddress, RowAddress, RowAddress]],
        op: SAOp = SAOp.XNOR2,
    ) -> list[np.ndarray]:
        """Execute the same two-row compute across many sub-arrays at once.

        All member operations occupy distinct sub-arrays and run in one
        command slot: time charged once, energy per member.
        """
        if not ops:
            raise ValueError("gang must be non-empty")
        keys = {src1.subarray_key for src1, _, _ in ops}
        if len(keys) != len(ops):
            raise ValueError("gang members must live in distinct sub-arrays")
        results = []
        for src1, src2, des in ops:
            AapCompute2(src1=src1, src2=src2, des=des, op=op)  # validate
            sub = self.device.subarray_at(src1)
            results.append(sub.compute2(src1.row, src2.row, des.row, op))
        self._charge(
            "AAP2", self.timing.t_aap, self.energy.e_compute2, gang=len(ops)
        )
        return results

    def gang_copy(self, ops: Sequence[tuple[RowAddress, RowAddress]]) -> None:
        """RowClone across many sub-arrays in one command slot."""
        if not ops:
            raise ValueError("gang must be non-empty")
        keys = {src.subarray_key for src, _ in ops}
        if len(keys) != len(ops):
            raise ValueError("gang members must live in distinct sub-arrays")
        for src, des in ops:
            AapCopy(src=src, des=des)  # validate
            self.device.subarray_at(src).rowclone(src.row, des.row)
        self._charge(
            "AAP1", self.timing.t_aap, self.energy.e_aap_copy, gang=len(ops)
        )

    # ----- compound operations -------------------------------------------------

    def xnor_rows(
        self,
        a: RowAddress,
        b: RowAddress,
        des: RowAddress,
        staged: bool = False,
    ) -> np.ndarray:
        """Full PIM_XNOR: stage operands into compute rows, then compute.

        Args:
            a, b: operand rows (any rows of one sub-array).
            des: destination row.
            staged: when True the operands are assumed to already sit in
                compute rows x1/x2 (e.g. the temp row of the hash-table
                layout), skipping the two staging RowClones.

        Returns:
            The XNOR2 row (1 where bits agree).
        """
        if not (a.same_subarray(b) and a.same_subarray(des)):
            raise ValueError("PIM_XNOR operands must share a sub-array")
        if staged:
            return self.compute2(a, b, des, SAOp.XNOR2)
        sub = self.device.subarray_at(a)
        x1 = a.with_row(sub.compute_row(1))
        x2 = a.with_row(sub.compute_row(2))
        self.copy(a, x1)
        self.copy(b, x2)
        return self.compute2(x1, x2, des, SAOp.XNOR2)

    def compare_scan(
        self,
        temp: RowAddress,
        start_row: int,
        n_rows: int,
        valid_bits: int | None = None,
    ) -> int | None:
        """Sequential PIM_XNOR scan of a row block against a query row.

        The hardware protocol of Fig. 6/7: the temp row is RowCloned
        into compute row x1 once; then for each candidate row the
        controller RowClones it into x2, fires the two-row-activation
        XNOR into x3 and lets the DPU's AND unit decide.  The scan
        stops at the first match (the DPU outcome gates the next
        command).

        Functionally this is evaluated vectorised over the whole block;
        the ledger is charged exactly what the sequential hardware
        sequence would issue: 1 staging AAP + per scanned row
        (1 AAP copy + 1 AAP compute + 1 DPU op).

        Args:
            temp: the query row.
            start_row: first candidate row (physical index).
            n_rows: number of candidate rows.
            valid_bits: compare only the first ``valid_bits`` columns.

        Returns:
            The matching slot offset (0-based from ``start_row``), or
            ``None`` when no row matches.
        """
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        self.device.validate_address(temp)
        sub = self.device.subarray_at(temp)
        x1 = sub.compute_row(1)
        x2 = sub.compute_row(2)
        x3 = sub.compute_row(3)

        # Stage the query into x1 (one AAP), mirroring xnor_rows.
        sub.rowclone(temp.row, x1)
        self._record_trace("AAP1", temp.subarray_key, (temp.row, x1))
        self._charge("AAP1", self.timing.t_aap, self.energy.e_aap_copy)
        if n_rows == 0:
            return None

        query = sub.read_row(x1)
        block = sub.read_rows(start_row, start_row + n_rows)
        width = query.size if valid_bits is None else valid_bits
        matches = (block[:, :width] == query[:width]).all(axis=1)
        if self.faults is not None and self.faults.enabled:
            # Each scanned row's XNOR result can flip bits: a true
            # match is missed when any of the `width` result bits
            # flips; a mismatch becomes a false match only when every
            # differing bit flips (probability rate^hamming).
            rate = self.faults.compute2_rate
            if rate > 0.0:
                rng = self.faults._rng
                hamming = (block[:, :width] != query[:width]).sum(axis=1)
                miss = matches & (
                    rng.random(n_rows) > (1.0 - rate) ** width
                )
                false_hit = (~matches) & (
                    rng.random(n_rows) < rate ** np.maximum(hamming, 1)
                )
                matches = (matches & ~miss) | false_hit
        hit = int(np.argmax(matches)) if matches.any() else None
        scanned = n_rows if hit is None else hit + 1

        # Leave the machine state as the sequential scan would: the
        # last candidate in x2 and its XNOR result in x3.
        last = start_row + scanned - 1
        sub.rowclone(last, x2)
        sub.compute2(x1, x2, x3, SAOp.XNOR2)

        if self._trace is not None:
            key = temp.subarray_key
            for offset in range(scanned):
                row = start_row + offset
                self._record_trace("AAP1", key, (row, x2))
                self._record_trace("AAP2", key, (x1, x2, x3))
                self._record_trace("DPU", key, (x3,))

        self.ledger.record(
            "AAP1",
            time_ns=scanned * self.timing.t_aap,
            energy_nj=scanned * self.energy.e_aap_copy,
            count=scanned,
        )
        self.ledger.record(
            "AAP2",
            time_ns=scanned * self.timing.t_aap,
            energy_nj=scanned * self.energy.e_compute2,
            count=scanned,
        )
        self.ledger.record(
            "DPU",
            time_ns=scanned * self.timing.t_dpu_clk,
            energy_nj=scanned * self.energy.e_dpu_op,
            count=scanned,
        )
        return hit

    def ripple_add(
        self,
        a_rows: Sequence[RowAddress],
        b_rows: Sequence[RowAddress],
        sum_rows: Sequence[RowAddress],
        carry_row: RowAddress,
    ) -> None:
        """Bit-serial addition of two bit-plane words: 2 cycles per bit.

        ``a_rows``/``b_rows``/``sum_rows`` list the bit planes LSB first;
        each row holds that bit position for 256 independent words (one
        per column).  ``carry_row`` is scratch; it must start at zero
        (the controller clears it) and ends holding the carry out of the
        MSB.
        """
        if not (len(a_rows) == len(b_rows) == len(sum_rows)):
            raise ValueError("operand bit-plane lists must have equal length")
        if not a_rows:
            raise ValueError("ripple_add needs at least one bit plane")
        key = a_rows[0].subarray_key
        for addr in (*a_rows, *b_rows, *sum_rows, carry_row):
            if addr.subarray_key != key:
                raise ValueError("ripple_add operands must share a sub-array")
        sub = self.device.subarray_at(carry_row)
        sub.write_row(carry_row.row, np.zeros(sub.cols, dtype=np.uint8))
        sub.sa.clear_latch()
        for a_i, b_i, s_i in zip(a_rows, b_rows, sum_rows):
            self.sum_cycle(a_i, b_i, s_i)
            self.tra_carry(a_i, b_i, carry_row, carry_row)

    def compress_3to2(
        self,
        r1: RowAddress,
        r2: RowAddress,
        r3: RowAddress,
        sum_des: RowAddress,
        carry_des: RowAddress,
    ) -> None:
        """Carry-save 3:2 compression of three rows (Fig. 8's C/S step).

        Costs 3 cycles: one latch load (capture ``r3`` as the incoming
        carry), one sum cycle, one TRA carry cycle.
        """
        self.load_latch(r3)
        self.sum_cycle(r1, r2, sum_des)
        self.tra_carry(r1, r2, r3, carry_des)

    # ----- extended operations ---------------------------------------------------

    def init_row(self, des: RowAddress, value: int = 0) -> None:
        """Initialise a row to all-0 or all-1.

        Hardware realisation: a RowClone from one of the two reserved
        constant rows every Ambit-class design keeps (one AAP) — hence
        the AAP1 cost, not a host write.
        """
        if value not in (0, 1):
            raise ValueError("init value must be 0 or 1")
        self.device.validate_address(des)
        sub = self.device.subarray_at(des)
        fill = np.full(sub.cols, value, dtype=np.uint8)
        sub.write_row(des.row, fill)
        self._record_trace("AAP1", des.subarray_key, (des.row, des.row))
        self._charge("AAP1", self.timing.t_aap, self.energy.e_aap_copy)

    def not_row(self, src: RowAddress, des: RowAddress) -> np.ndarray:
        """Bit-wise NOT via the reconfigurable SA: ``NOT a = XNOR(a, 0)``.

        Costs one init (AAP1) of a zero compute row plus one staging
        copy and one compute cycle — cheaper than Ambit's dual-row NOT
        gadget, another dividend of the X(N)OR-native SA.
        """
        if not src.same_subarray(des):
            raise ValueError("not_row operands must share a sub-array")
        sub = self.device.subarray_at(src)
        x1 = src.with_row(sub.compute_row(1))
        x2 = src.with_row(sub.compute_row(2))
        self.copy(src, x1)
        self.init_row(x2, 0)
        return self.compute2(x1, x2, des, SAOp.XNOR2)

    def move_row(self, src: RowAddress, des: RowAddress) -> None:
        """Inter-sub-array row move through the shared GRB.

        Same-sub-array moves degenerate to a RowClone; cross-sub-array
        moves ride the MAT's global row buffer (read + write, the
        routing traffic the Fig. 11 memory-wall study counts).
        """
        self.device.validate_address(src)
        self.device.validate_address(des)
        if src.same_subarray(des):
            self.copy(src, des)
            return
        data = self.device.subarray_at(src).read_row(src.row)
        mat = self.device.mat_at(des.bank, des.mat)
        mat.grb.load(data)
        self.device.subarray_at(des).write_row(des.row, mat.grb.read())
        self._record_trace("MEM_RD", src.subarray_key, (src.row,))
        self._record_trace("MEM_WR", des.subarray_key, (des.row,), payload=data)
        self._charge("MEM_RD", self.timing.t_read_row, self.energy.e_read_row)
        self._charge("MEM_WR", self.timing.t_write_row, self.energy.e_write_row)

    def xor3_rows(
        self,
        r1: RowAddress,
        r2: RowAddress,
        r3: RowAddress,
        des: RowAddress,
    ) -> np.ndarray:
        """Three-input XOR (parity) via latch-assisted sum: 2 cycles.

        ``des = r1 ^ r2 ^ r3`` — the sum output of a full adder, used
        by parity checks over row groups.
        """
        self.load_latch(r3)
        return self.sum_cycle(r1, r2, des)
