"""PIM-Assembler's memory controller (Ctrl).

The controller is the single component that *issues commands*: it
executes ISA instructions against device state (functional view) and
charges their latency/energy to the :class:`~repro.core.stats.StatsLedger`
(timed view).  Higher layers — the platform facade and the assembly
mapping — only ever talk to the controller, exactly as software talks to
the real chip through the three AAP instruction types.

Gang execution
==============

PIM-Assembler's throughput comes from every (bank, MAT) pair executing
the same command on its own sub-array simultaneously.  The controller
models this with *gangs*: a list of same-shape instructions executed in
one time slot.  Wall-clock time is charged once, energy once per member.
Ganged operations run through the same fault-injection path as their
single-op counterparts, so an attached
:class:`~repro.core.faults.FaultModel` perturbs them identically.

Addition protocol
=================

Per-bit ripple addition is the 2-cycle pair the paper describes:

1. **Sum cycle** — two-row activation of ``a_i``/``b_i``; the add-on XOR
   gate combines their XOR2 with the D-latch contents (the carry left by
   the *previous* bit's TRA), producing ``sum_i = a_i ^ b_i ^ c_{i-1}``.
2. **Carry cycle** — TRA over ``a_i``, ``b_i`` and the carry row
   (holding ``c_{i-1}``), producing ``c_i = maj(a_i, b_i, c_{i-1})``,
   captured both in the carry row and the latch.

Hence an m-bit add costs exactly ``2 * m`` row cycles — the figure the
paper quotes for the traversal-stage degree computation (Fig. 8).  The
3:2 carry-save compression used to reduce many 1-bit rows costs one
extra latch-load cycle (3 cycles per compression); the steady-state
2-cycle claim is the per-bit pair above.

Verified execution
==================

With a :class:`~repro.core.resilience.ResilienceEngine` attached
(``controller.resilience``), every compute-class operation (two-row
activation, TRA, sum cycle — the mechanisms Table I stresses) gains a
verify step: the result's parity is recomputed through the add-on XOR
path and reduced on the DPU, charged as ``VRF_AAP``/``VRF_DPU``.  A
detected mismatch re-executes the operation up to ``max_retries``
times with exponential operand re-staging (each retry at a derated
effective fault rate); an operation that stays corrupt is an
*uncorrectable* event — recorded, optionally raised, and under the
remap policy escalated to weak-row marking and sub-array quarantine.
RowClone transfers are full-swing and are *not* per-op verified;
resident tables built from them are covered by the pipeline's
between-stage scrub instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.device import Device
from repro.core.energy import EnergyParameters, DEFAULT_ENERGY
from repro.core.isa import (
    AapCompute2,
    AapCompute3,
    AapCopy,
    RowAddress,
    SAOp,
)
from repro.core.faults import FaultModel
from repro.core.resilience import (
    VERIFY_AAP_CYCLES,
    VERIFY_DPU_OPS,
    ResilienceEngine,
)
from repro.core.stats import StatsLedger
from repro.core.storage import popcount_words, width_mask
from repro.core.timing import TimingParameters, DEFAULT_TIMING
from repro.errors import UncorrectableFaultError
from repro.observability.spans import span


@dataclass
class Controller:
    """Executes AAP command streams against a :class:`Device`."""

    device: Device
    ledger: StatsLedger = field(default_factory=StatsLedger)
    timing: TimingParameters = DEFAULT_TIMING
    energy: EnergyParameters = DEFAULT_ENERGY
    #: optional process-variation fault injection (see repro.core.faults)
    faults: FaultModel | None = None
    #: optional detect/correct/degrade engine (see repro.core.resilience)
    resilience: ResilienceEngine | None = None

    def __post_init__(self) -> None:
        self._trace = None
        self.charge_log = None

    def _apply_faults(
        self, sub, des_row: int, result, mechanism: str
    ):
        """Corrupt an in-memory op's output per the fault model."""
        if self.faults is None or not self.faults.enabled:
            return result
        corrupted = self.faults.corrupt(result, mechanism)
        if corrupted is not result:
            sub.write_row(des_row, corrupted)
        return corrupted

    def _verifying(self) -> ResilienceEngine | None:
        """The attached engine, when its policy asks for detection."""
        eng = self.resilience
        return eng if eng is not None and eng.policy.detect else None

    def _charge_verify(self, eng: ResilienceEngine | None, count: int = 1) -> None:
        """Charge ``count`` parity checks (extra AAP + DPU cycles)."""
        t_aap = VERIFY_AAP_CYCLES * self.timing.t_aap
        e_aap = VERIFY_AAP_CYCLES * self.energy.e_sum_cycle
        t_dpu = VERIFY_DPU_OPS * self.timing.t_dpu_clk
        e_dpu = VERIFY_DPU_OPS * self.energy.e_dpu_op
        self.ledger.record(
            "VRF_AAP",
            time_ns=count * t_aap,
            energy_nj=count * e_aap,
            count=count * VERIFY_AAP_CYCLES,
        )
        self.ledger.record(
            "VRF_DPU",
            time_ns=count * t_dpu,
            energy_nj=count * e_dpu,
            count=count * VERIFY_DPU_OPS,
        )
        if eng is not None:
            eng.note_verify(
                count * (t_aap + t_dpu), count * (e_aap + e_dpu), ops=count
            )

    def scrub_row(self, src: RowAddress, expected: np.ndarray) -> bool:
        """Parity-check one resident row: True iff it is intact.

        The scrub pass over long-resident structures (the k-mer table)
        recomputes each row's parity through the add-on XOR path and
        reduces it on the DPU — the same ``VRF`` cycles a per-op check
        costs.  ``expected`` is the row's reference content (the host
        shadow the hash table keeps); the functional model compares
        bits directly.
        """
        self.device.validate_address(src)
        stored = self.device.subarray_at(src).read_row(src.row)
        self._charge_verify(self.resilience)
        return bool(
            np.array_equal(stored, np.asarray(expected, dtype=np.uint8))
        )

    def _commit_result(
        self,
        sub,
        key: tuple[int, int, int],
        des_row: int,
        clean: np.ndarray,
        mechanism: str,
        mnemonic: str,
        time_ns: float,
        energy_nj: float,
        charge_initial: bool = True,
    ) -> np.ndarray:
        """Charge, fault-inject and (under a detect policy) verify one op.

        ``clean`` is the fault-free result the sub-array just produced
        (currently resident in ``des_row``).  The verify loop models
        the in-memory parity check: a mismatch re-executes the
        operation — recharging its cycles — with exponentially
        re-staged operands (fault rate derated by ``restage_derate``
        per attempt) until it passes or the retry budget is exhausted.
        """
        if charge_initial:
            self._charge(mnemonic, time_ns, energy_nj)
        faults = self.faults
        inject = (
            faults is not None
            and faults.enabled
            and faults.rate_for(mechanism) > 0.0
        )
        eng = self._verifying()
        if eng is None:
            if inject:
                return self._apply_faults(sub, des_row, clean, mechanism)
            return clean

        policy = eng.policy
        result = faults.corrupt(clean, mechanism) if inject else clean
        attempt = 0
        while True:
            self._charge_verify(eng)
            if np.array_equal(result, clean):
                if attempt:
                    eng.note_corrected()
                break
            eng.note_detected()
            if not policy.retry or attempt >= policy.max_retries:
                eng.note_uncorrected(key, des_row)
                if policy.raise_on_uncorrected:
                    sub.write_row(des_row, result)
                    raise UncorrectableFaultError(key, mechanism, attempt + 1)
                break
            attempt += 1
            eng.note_retry()
            # re-execution at re-staged (derated) margins
            self._charge(mnemonic, time_ns, energy_nj)
            result = faults.corrupt(
                clean, mechanism, scale=policy.restage_derate**attempt
            )
        if not np.array_equal(result, clean):
            sub.write_row(des_row, result)
        elif result is not clean:
            sub.write_row(des_row, clean)
            result = clean
        return result

    # ----- tracing ------------------------------------------------------------

    def attach_trace(self, trace) -> None:
        """Record subsequent commands into a
        :class:`repro.core.trace.CommandTrace` (None detaches)."""
        self._trace = trace

    def attach_charge_log(self, log) -> None:
        """Feed batched-scheduler charges into a
        :class:`repro.core.trace.ChargeLog` (None detaches).

        The controller itself never writes the log; it only holds it so
        every :class:`~repro.core.scheduler.BatchedAapScheduler` built
        against this controller (the bulk engine's, the Wallace
        reducer's) can pick it up.
        """
        self.charge_log = log

    def mark(self, label: str) -> None:
        """Drop a window marker into the attached trace, if any.

        Pipeline stages call this around layout-owning windows
        (``hashmap:begin`` ... ``hashmap:end``, scrub passes) so the
        trace verifier knows when the k-mer-table row designations are
        in force.  A no-op without a trace, or with a trace sink that
        does not track marks.
        """
        mark = getattr(self._trace, "mark", None)
        if mark is not None:
            mark(label)

    def _record_trace(
        self,
        mnemonic: str,
        subarray: tuple[int, int, int],
        rows: tuple[int, ...],
        payload: np.ndarray | None = None,
    ) -> None:
        if self._trace is not None:
            self._trace.record(mnemonic, subarray, rows, payload)

    # ----- accounting helpers ----------------------------------------------

    def _charge(self, mnemonic: str, time_ns: float, energy_nj: float, gang: int = 1) -> None:
        self.ledger.record(
            mnemonic, time_ns=time_ns, energy_nj=energy_nj * gang, count=gang
        )

    # ----- single-instruction execution --------------------------------------

    def copy(self, src: RowAddress, des: RowAddress) -> None:
        """Type-1 AAP: RowClone ``src`` into ``des`` (same sub-array)."""
        instr = AapCopy(src=src, des=des)
        self.device.validate_address(src)
        self.device.validate_address(des)
        sub = self.device.subarray_at(src)
        sub.rowclone(src.row, des.row)
        if self.faults is not None and self.faults.copy_rate > 0.0:
            self._apply_faults(sub, des.row, sub.row_view(des.row), "copy")
        self._record_trace(instr.mnemonic, src.subarray_key, (src.row, des.row))
        self._charge(instr.mnemonic, self.timing.t_aap, self.energy.e_aap_copy)

    def compute2(
        self,
        src1: RowAddress,
        src2: RowAddress,
        des: RowAddress,
        op: SAOp = SAOp.XNOR2,
    ) -> np.ndarray:
        """Type-2 AAP: two-row activation compute; returns the result row."""
        instr = AapCompute2(src1=src1, src2=src2, des=des, op=op)
        for addr in (src1, src2, des):
            self.device.validate_address(addr)
        sub = self.device.subarray_at(src1)
        clean = sub.compute2(src1.row, src2.row, des.row, op)
        self._record_trace(
            instr.mnemonic, src1.subarray_key, (src1.row, src2.row, des.row)
        )
        return self._commit_result(
            sub,
            src1.subarray_key,
            des.row,
            clean,
            "compute2",
            instr.mnemonic,
            self.timing.t_aap,
            self.energy.e_compute2,
        )

    def tra_carry(
        self,
        src1: RowAddress,
        src2: RowAddress,
        src3: RowAddress,
        des: RowAddress,
    ) -> np.ndarray:
        """Type-3 AAP: TRA majority -> des (and the SA latch)."""
        instr = AapCompute3(src1=src1, src2=src2, src3=src3, des=des)
        for addr in (src1, src2, src3, des):
            self.device.validate_address(addr)
        sub = self.device.subarray_at(src1)
        clean = sub.tra_carry(src1.row, src2.row, src3.row, des.row)
        self._record_trace(
            instr.mnemonic,
            src1.subarray_key,
            (src1.row, src2.row, src3.row, des.row),
        )
        return self._commit_result(
            sub,
            src1.subarray_key,
            des.row,
            clean,
            "tra",
            instr.mnemonic,
            self.timing.t_aap,
            self.energy.e_tra,
        )

    def sum_cycle(
        self, src1: RowAddress, src2: RowAddress, des: RowAddress
    ) -> np.ndarray:
        """Latch-assisted sum: ``des = src1 ^ src2 ^ latch``."""
        for addr in (src1, src2, des):
            self.device.validate_address(addr)
        if not (src1.same_subarray(src2) and src1.same_subarray(des)):
            raise ValueError("sum-cycle operands must share a sub-array")
        sub = self.device.subarray_at(src1)
        clean = sub.sum_cycle(src1.row, src2.row, des.row)
        self._record_trace("SUM", src1.subarray_key, (src1.row, src2.row, des.row))
        return self._commit_result(
            sub,
            src1.subarray_key,
            des.row,
            clean,
            "sum",
            "SUM",
            self.timing.t_aap,
            self.energy.e_sum_cycle,
        )

    def load_latch(self, src: RowAddress) -> None:
        """Capture one row into the SA latch (one row cycle)."""
        self.device.validate_address(src)
        sub = self.device.subarray_at(src)
        sub.sa.load_latch(sub.row_view(src.row))
        self._record_trace("LATCH_LD", src.subarray_key, (src.row,))
        self._charge("LATCH_LD", self.timing.t_ap, self.energy.e_activate)

    def clear_latch(self, subarray_key: tuple[int, int, int]) -> None:
        """Reset the carry latch (precharge-time side effect; free)."""
        self.device.subarray_at(subarray_key).sa.clear_latch()
        self._record_trace("LATCH_CLR", subarray_key, ())

    def write_row(self, des: RowAddress, bits: np.ndarray) -> None:
        """Host write through the global row buffer."""
        self.device.validate_address(des)
        mat = self.device.mat_at(des.bank, des.mat)
        arr = np.asarray(bits, dtype=np.uint8)
        mat.grb.load(arr)
        self.device.subarray_at(des).write_row(des.row, mat.grb.read())
        self._record_trace("MEM_WR", des.subarray_key, (des.row,), payload=arr)
        self._charge("MEM_WR", self.timing.t_write_row, self.energy.e_write_row)

    def read_row(self, src: RowAddress) -> np.ndarray:
        """Host read through the global row buffer."""
        self.device.validate_address(src)
        mat = self.device.mat_at(src.bank, src.mat)
        mat.grb.load(self.device.subarray_at(src).read_row(src.row))
        self._record_trace("MEM_RD", src.subarray_key, (src.row,))
        self._charge("MEM_RD", self.timing.t_read_row, self.energy.e_read_row)
        return mat.grb.read()

    # ----- DPU path -----------------------------------------------------------

    def dpu_match(
        self,
        result_row: RowAddress,
        mask: np.ndarray | None = None,
        bits: np.ndarray | None = None,
    ) -> bool:
        """AND-reduce a PIM_XNOR result row: True iff rows matched.

        Args:
            result_row: row holding the XNOR2 output.
            mask: optional validity mask (1 where the comparison is
                meaningful, e.g. the 2k bits of a k-mer).
            bits: the row's contents when the caller already has them
                (e.g. the XNOR result it just produced), skipping the
                redundant re-read of ``result_row``.
        """
        self.device.validate_address(result_row)
        mat = self.device.mat_at(result_row.bank, result_row.mat)
        if bits is None:
            bits = self.device.subarray_at(result_row).row_view(result_row.row)
        if mask is None:
            outcome = mat.dpu.and_reduce(bits)
        else:
            outcome = mat.dpu.masked_and_reduce(bits, mask)
        self._record_trace("DPU", result_row.subarray_key, (result_row.row,))
        self._charge("DPU", self.timing.t_dpu_clk, self.energy.e_dpu_op)
        return bool(outcome)

    def dpu_scalar_add(
        self,
        subarray_key: tuple[int, int, int],
        a: int,
        b: int,
        bits: int = 8,
    ) -> int:
        """Non-bulk add on the MAT's DPU (counter increments etc.)."""
        bank, mat_index, _ = subarray_key
        mat = self.device.mat_at(bank, mat_index)
        result = mat.dpu.scalar_add(a, b, bits=bits)
        self._record_trace("DPU", subarray_key, ())
        self._charge("DPU", self.timing.t_dpu_clk, self.energy.e_dpu_op)
        return result

    def dpu_popcount(self, row: RowAddress) -> int:
        self.device.validate_address(row)
        mat = self.device.mat_at(row.bank, row.mat)
        bits = self.device.subarray_at(row).row_view(row.row)
        count = mat.dpu.popcount(bits)
        self._record_trace("DPU", row.subarray_key, (row.row,))
        self._charge("DPU", self.timing.t_dpu_clk, self.energy.e_dpu_op)
        return count

    # ----- gang (SIMD) execution ----------------------------------------------

    def gang_compute2(
        self,
        ops: Sequence[tuple[RowAddress, RowAddress, RowAddress]],
        op: SAOp = SAOp.XNOR2,
    ) -> list[np.ndarray]:
        """Execute the same two-row compute across many sub-arrays at once.

        All member operations occupy distinct sub-arrays and run in one
        command slot: time charged once, energy per member.  Fault
        injection (and, with a resilience engine attached, per-member
        verification and retry — retries re-execute solo) follows the
        same path as :meth:`compute2`.
        """
        if not ops:
            raise ValueError("gang must be non-empty")
        keys = {src1.subarray_key for src1, _, _ in ops}
        if len(keys) != len(ops):
            raise ValueError("gang members must live in distinct sub-arrays")
        self._charge(
            "AAP2", self.timing.t_aap, self.energy.e_compute2, gang=len(ops)
        )
        results = []
        for src1, src2, des in ops:
            AapCompute2(src1=src1, src2=src2, des=des, op=op)  # validate
            sub = self.device.subarray_at(src1)
            clean = sub.compute2(src1.row, src2.row, des.row, op)
            results.append(
                self._commit_result(
                    sub,
                    src1.subarray_key,
                    des.row,
                    clean,
                    "compute2",
                    "AAP2",
                    self.timing.t_aap,
                    self.energy.e_compute2,
                    charge_initial=False,
                )
            )
        return results

    def gang_copy(self, ops: Sequence[tuple[RowAddress, RowAddress]]) -> None:
        """RowClone across many sub-arrays in one command slot.

        Routed through the same fault-injection path as :meth:`copy`
        (the ``copy`` mechanism; rate 0 unless a margin study stresses
        RowClone transfers).
        """
        if not ops:
            raise ValueError("gang must be non-empty")
        keys = {src.subarray_key for src, _ in ops}
        if len(keys) != len(ops):
            raise ValueError("gang members must live in distinct sub-arrays")
        inject = self.faults is not None and self.faults.copy_rate > 0.0
        for src, des in ops:
            AapCopy(src=src, des=des)  # validate
            sub = self.device.subarray_at(src)
            sub.rowclone(src.row, des.row)
            if inject:
                self._apply_faults(sub, des.row, sub.row_view(des.row), "copy")
        self._charge(
            "AAP1", self.timing.t_aap, self.energy.e_aap_copy, gang=len(ops)
        )

    # ----- compound operations -------------------------------------------------

    def xnor_rows(
        self,
        a: RowAddress,
        b: RowAddress,
        des: RowAddress,
        staged: bool = False,
    ) -> np.ndarray:
        """Full PIM_XNOR: stage operands into compute rows, then compute.

        Args:
            a, b: operand rows (any rows of one sub-array).
            des: destination row.
            staged: when True the operands are assumed to already sit in
                compute rows x1/x2 (e.g. the temp row of the hash-table
                layout), skipping the two staging RowClones.

        Returns:
            The XNOR2 row (1 where bits agree).
        """
        if not (a.same_subarray(b) and a.same_subarray(des)):
            raise ValueError("PIM_XNOR operands must share a sub-array")
        if staged:
            return self.compute2(a, b, des, SAOp.XNOR2)
        sub = self.device.subarray_at(a)
        x1 = a.with_row(sub.compute_row(1))
        x2 = a.with_row(sub.compute_row(2))
        self.copy(a, x1)
        self.copy(b, x2)
        return self.compute2(x1, x2, des, SAOp.XNOR2)

    def compare_scan(
        self,
        temp: RowAddress,
        start_row: int,
        n_rows: int,
        valid_bits: int | None = None,
    ) -> int | None:
        """Sequential PIM_XNOR scan of a row block against a query row.

        The hardware protocol of Fig. 6/7: the temp row is RowCloned
        into compute row x1 once; then for each candidate row the
        controller RowClones it into x2, fires the two-row-activation
        XNOR into x3 and lets the DPU's AND unit decide.  The scan
        stops at the first match (the DPU outcome gates the next
        command).

        Functionally this is evaluated vectorised over the whole block;
        the ledger is charged exactly what the sequential hardware
        sequence would issue: 1 staging AAP + per scanned row
        (1 AAP copy + 1 AAP compute + 1 DPU op), plus — under a detect
        policy — one ``VRF`` check per scanned row, and one scan-row
        re-execution per retry of a flagged comparison.

        Args:
            temp: the query row.
            start_row: first candidate row (physical index).
            n_rows: number of candidate rows.
            valid_bits: compare only the first ``valid_bits`` columns.

        Returns:
            The matching slot offset (0-based from ``start_row``), or
            ``None`` when no row matches.
        """
        with span("pim.compare_scan", rows=n_rows):
            return self._compare_scan_impl(temp, start_row, n_rows, valid_bits)

    def _compare_scan_impl(
        self,
        temp: RowAddress,
        start_row: int,
        n_rows: int,
        valid_bits: int | None,
    ) -> int | None:
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        self.device.validate_address(temp)
        sub = self.device.subarray_at(temp)
        x1 = sub.compute_row(1)
        x2 = sub.compute_row(2)
        x3 = sub.compute_row(3)

        # Stage the query into x1 (one AAP), mirroring xnor_rows.
        sub.rowclone(temp.row, x1)
        self._record_trace("AAP1", temp.subarray_key, (temp.row, x1))
        self._charge("AAP1", self.timing.t_aap, self.energy.e_aap_copy)
        if n_rows == 0:
            return None

        # Packed-word compare: the query and candidate block stay in
        # their stored uint64 representation; only the valid columns
        # participate via the width mask (tail bits are zero anyway).
        store, slot = sub.store, sub.slot
        width = sub.cols if valid_bits is None else valid_bits
        mask = width_mask(sub.cols, width)
        diff = (
            store.block_words(slot, start_row, start_row + n_rows) & mask
        ) ^ (store.row_words(slot, x1) & mask)
        matches = ~diff.any(axis=1)
        eng = self._verifying()
        if (
            self.faults is not None
            and self.faults.enabled
            and self.faults.compute2_rate > 0.0
        ):
            # Each scanned row's XNOR result can flip bits: a true
            # match is missed when any of the `width` result bits
            # flips; a mismatch becomes a false match only when every
            # differing bit flips (probability rate^hamming).
            rate = self.faults.compute2_rate
            hamming = popcount_words(diff)
            p_err = np.where(
                matches,
                1.0 - (1.0 - rate) ** width,
                rate ** np.maximum(hamming, 1),
            )
            err = self.faults.decide(n_rows, p_err)
            if eng is not None:
                err = self._scan_recover(
                    eng, err, matches, hamming, width, rate, temp, start_row
                )
            matches = matches ^ err
        hit = int(np.argmax(matches)) if matches.any() else None
        scanned = n_rows if hit is None else hit + 1

        if eng is not None:
            # the in-memory parity check rides every scanned comparison
            self._charge_verify(eng, count=scanned)

        # Leave the machine state as the sequential scan would: the
        # last candidate in x2 and its XNOR result in x3.
        last = start_row + scanned - 1
        sub.rowclone(last, x2)
        sub.compute2(x1, x2, x3, SAOp.XNOR2)

        if self._trace is not None:
            key = temp.subarray_key
            for offset in range(scanned):
                row = start_row + offset
                self._record_trace("AAP1", key, (row, x2))
                self._record_trace("AAP2", key, (x1, x2, x3))
                self._record_trace("DPU", key, (x3,))

        self.ledger.record(
            "AAP1",
            time_ns=scanned * self.timing.t_aap,
            energy_nj=scanned * self.energy.e_aap_copy,
            count=scanned,
        )
        self.ledger.record(
            "AAP2",
            time_ns=scanned * self.timing.t_aap,
            energy_nj=scanned * self.energy.e_compute2,
            count=scanned,
        )
        self.ledger.record(
            "DPU",
            time_ns=scanned * self.timing.t_dpu_clk,
            energy_nj=scanned * self.energy.e_dpu_op,
            count=scanned,
        )
        return hit

    def _scan_recover(
        self,
        eng: ResilienceEngine,
        err: np.ndarray,
        matches: np.ndarray,
        hamming: np.ndarray,
        width: int,
        rate: float,
        temp: RowAddress,
        start_row: int,
    ) -> np.ndarray:
        """Detect-and-retry over a scan's flagged comparisons.

        Every flagged comparison is re-executed (1 AAP copy + 1 AAP
        compute + 1 DPU each, charged) at exponentially re-staged
        margins; comparisons still flagged after the retry budget are
        uncorrectable and surface as scan errors.
        """
        detected = int(err.sum())
        if detected == 0:
            return err
        eng.note_detected(detected)
        policy = eng.policy
        if not policy.retry:
            for i in np.flatnonzero(err):
                eng.note_uncorrected(temp.subarray_key, start_row + int(i))
            return err
        remaining = err.copy()
        for attempt in range(1, policy.max_retries + 1):
            idx = np.flatnonzero(remaining)
            if idx.size == 0:
                break
            eng.note_retry(int(idx.size))
            self.ledger.record(
                "AAP1",
                time_ns=idx.size * self.timing.t_aap,
                energy_nj=idx.size * self.energy.e_aap_copy,
                count=int(idx.size),
            )
            self.ledger.record(
                "AAP2",
                time_ns=idx.size * self.timing.t_aap,
                energy_nj=idx.size * self.energy.e_compute2,
                count=int(idx.size),
            )
            self.ledger.record(
                "DPU",
                time_ns=idx.size * self.timing.t_dpu_clk,
                energy_nj=idx.size * self.energy.e_dpu_op,
                count=int(idx.size),
            )
            self._charge_verify(eng, count=int(idx.size))
            derated = rate * policy.restage_derate**attempt
            p_retry = np.where(
                matches[idx],
                1.0 - (1.0 - derated) ** width,
                derated ** np.maximum(hamming[idx], 1),
            )
            remaining[idx] = self.faults.decide(int(idx.size), p_retry)
        still = int(remaining.sum())
        if detected - still:
            eng.note_corrected(detected - still)
        for i in np.flatnonzero(remaining):
            eng.note_uncorrected(temp.subarray_key, start_row + int(i))
        return remaining

    def ripple_add(
        self,
        a_rows: Sequence[RowAddress],
        b_rows: Sequence[RowAddress],
        sum_rows: Sequence[RowAddress],
        carry_row: RowAddress,
    ) -> None:
        """Bit-serial addition of two bit-plane words: 2 cycles per bit.

        ``a_rows``/``b_rows``/``sum_rows`` list the bit planes LSB first;
        each row holds that bit position for 256 independent words (one
        per column).  ``carry_row`` is scratch; it must start at zero
        (the controller clears it) and ends holding the carry out of the
        MSB.
        """
        if not (len(a_rows) == len(b_rows) == len(sum_rows)):
            raise ValueError("operand bit-plane lists must have equal length")
        if not a_rows:
            raise ValueError("ripple_add needs at least one bit plane")
        key = a_rows[0].subarray_key
        for addr in (*a_rows, *b_rows, *sum_rows, carry_row):
            if addr.subarray_key != key:
                raise ValueError("ripple_add operands must share a sub-array")
        with span("pim.ripple_add", bits=len(a_rows)):
            # The carry zeroing is a real command (a RowClone off the
            # constant row), not free controller bookkeeping: trace and
            # charge it, and trace the latch reset, so a replayed
            # stream reproduces the adder's starting state.  Both were
            # silent device pokes before the trace verifier flagged the
            # replay hole.
            self.init_row(carry_row, 0)
            self.clear_latch(carry_row.subarray_key)
            for a_i, b_i, s_i in zip(a_rows, b_rows, sum_rows):
                self.sum_cycle(a_i, b_i, s_i)
                self.tra_carry(a_i, b_i, carry_row, carry_row)

    def compress_3to2(
        self,
        r1: RowAddress,
        r2: RowAddress,
        r3: RowAddress,
        sum_des: RowAddress,
        carry_des: RowAddress,
    ) -> None:
        """Carry-save 3:2 compression of three rows (Fig. 8's C/S step).

        Costs 3 cycles: one latch load (capture ``r3`` as the incoming
        carry), one sum cycle, one TRA carry cycle.
        """
        self.load_latch(r3)
        self.sum_cycle(r1, r2, sum_des)
        self.tra_carry(r1, r2, r3, carry_des)

    # ----- extended operations ---------------------------------------------------

    def init_row(self, des: RowAddress, value: int = 0) -> None:
        """Initialise a row to all-0 or all-1.

        Hardware realisation: a RowClone from one of the two reserved
        constant rows every Ambit-class design keeps (one AAP) — hence
        the AAP1 cost, not a host write.
        """
        if value not in (0, 1):
            raise ValueError("init value must be 0 or 1")
        self.device.validate_address(des)
        sub = self.device.subarray_at(des)
        fill = np.full(sub.cols, value, dtype=np.uint8)
        sub.write_row(des.row, fill)
        # Traced as ROW_INIT (carrying the fill value) rather than a
        # degenerate src==des AAP1: the self-copy form replayed as a
        # no-op, losing init-to-1 state.  The ledger keeps charging
        # AAP1 — the hardware cost is exactly one RowClone.
        self._record_trace(
            "ROW_INIT",
            des.subarray_key,
            (des.row,),
            payload=np.array([value], dtype=np.uint8),
        )
        self._charge("AAP1", self.timing.t_aap, self.energy.e_aap_copy)

    def not_row(self, src: RowAddress, des: RowAddress) -> np.ndarray:
        """Bit-wise NOT via the reconfigurable SA: ``NOT a = XNOR(a, 0)``.

        Costs one init (AAP1) of a zero compute row plus one staging
        copy and one compute cycle — cheaper than Ambit's dual-row NOT
        gadget, another dividend of the X(N)OR-native SA.
        """
        if not src.same_subarray(des):
            raise ValueError("not_row operands must share a sub-array")
        sub = self.device.subarray_at(src)
        x1 = src.with_row(sub.compute_row(1))
        x2 = src.with_row(sub.compute_row(2))
        self.copy(src, x1)
        self.init_row(x2, 0)
        return self.compute2(x1, x2, des, SAOp.XNOR2)

    def move_row(self, src: RowAddress, des: RowAddress) -> None:
        """Inter-sub-array row move through the shared GRB.

        Same-sub-array moves degenerate to a RowClone; cross-sub-array
        moves ride the MAT's global row buffer (read + write, the
        routing traffic the Fig. 11 memory-wall study counts).
        """
        self.device.validate_address(src)
        self.device.validate_address(des)
        if src.same_subarray(des):
            self.copy(src, des)
            return
        data = self.device.subarray_at(src).read_row(src.row)
        mat = self.device.mat_at(des.bank, des.mat)
        mat.grb.load(data)
        self.device.subarray_at(des).write_row(des.row, mat.grb.read())
        self._record_trace("MEM_RD", src.subarray_key, (src.row,))
        self._record_trace("MEM_WR", des.subarray_key, (des.row,), payload=data)
        self._charge("MEM_RD", self.timing.t_read_row, self.energy.e_read_row)
        self._charge("MEM_WR", self.timing.t_write_row, self.energy.e_write_row)

    def xor3_rows(
        self,
        r1: RowAddress,
        r2: RowAddress,
        r3: RowAddress,
        des: RowAddress,
    ) -> np.ndarray:
        """Three-input XOR (parity) via latch-assisted sum: 2 cycles.

        ``des = r1 ^ r2 ^ r3`` — the sum output of a full adder, used
        by parity checks over row groups.
        """
        self.load_latch(r3)
        return self.sum_cycle(r1, r2, des)
