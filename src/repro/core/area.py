"""Area-overhead model (paper Section II-B, "Area Overhead").

The paper counts three cost sources on top of a commodity DRAM chip and
expresses them in *equivalent DRAM rows* (one 256-column row ~ 256
cell transistors):

1. **SA add-ons** — ~50 extra transistors per sense amplifier, one SA
   per bit line: ``50 x 256`` transistors per sub-array.
2. **Modified row decoder** — two extra transistors in each compute
   row's word-line driver buffer chain: ``2 x 8 = 16`` transistors.
3. **Controller** — enable-bit drivers and sequencing, a small budget
   per sub-array.

Total: "51 DRAM rows (51 x 256 transistors) per sub-array, at the most,
which can be interpreted as ~5% of DRAM chip area" (51 / 1024 = 4.98 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dram.geometry import SubArrayGeometry


@dataclass(frozen=True)
class AreaParameters:
    """Transistor budgets of the add-on circuits."""

    #: extra transistors per reconfigurable SA (two inverters, AND, XOR,
    #: D-latch, 4:1 MUX and enable gating) — the paper's ~50.
    sa_addon_transistors: int = 50
    #: extra transistors per modified word-line driver.
    mrd_transistors_per_row: int = 2
    #: controller budget per sub-array (enable-bit drivers, decode).
    ctrl_transistors: int = 240

    def __post_init__(self) -> None:
        for name in (
            "sa_addon_transistors",
            "mrd_transistors_per_row",
            "ctrl_transistors",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class AreaReport:
    """Breakdown of the add-on transistor cost for one sub-array."""

    sa_transistors: int
    mrd_transistors: int
    ctrl_transistors: int
    equivalent_rows: int
    overhead_fraction: float

    @property
    def total_transistors(self) -> int:
        return self.sa_transistors + self.mrd_transistors + self.ctrl_transistors

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction


@dataclass(frozen=True)
class AreaModel:
    """Computes the chip-area overhead of PIM-Assembler's additions."""

    geometry: SubArrayGeometry = field(default_factory=SubArrayGeometry)
    params: AreaParameters = field(default_factory=AreaParameters)

    def report(self) -> AreaReport:
        g, p = self.geometry, self.params
        sa = p.sa_addon_transistors * g.cols
        mrd = p.mrd_transistors_per_row * g.compute_rows
        ctrl = p.ctrl_transistors
        total = sa + mrd + ctrl
        equivalent_rows = math.ceil(total / g.cols)
        return AreaReport(
            sa_transistors=sa,
            mrd_transistors=mrd,
            ctrl_transistors=ctrl,
            equivalent_rows=equivalent_rows,
            overhead_fraction=equivalent_rows / g.rows,
        )
