"""Fault injection: process-variation errors inside the functional sim.

Table I quantifies per-bit sensing error rates for the two in-memory
mechanisms; this module pushes those rates into the *functional*
simulator, so their application-level consequences (corrupt hash
tables, broken contigs) become observable — the bridge between the
circuit study and the assembly workload.

A :class:`FaultModel` holds per-mechanism bit-flip probabilities:

* ``compute2`` faults hit two-row-activation outputs (XNOR & friends);
* ``tra`` faults hit triple-row-activation majority outputs;
* ``sum`` faults hit the latch-assisted sum path (same add-on circuitry
  as compute2, so it defaults to the same rate).

Rates can be set directly or derived from the Table I Monte-Carlo
engine at a given variation level (:meth:`FaultModel.from_variation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.variation import MonteCarloSense, VariationSpec


@dataclass
class FaultModel:
    """Per-mechanism bit-flip probabilities for in-memory operations.

    Attributes:
        compute2_rate: flip probability per output bit of a two-row
            activation.
        tra_rate: flip probability per output bit of a TRA majority.
        sum_rate: flip probability per output bit of a sum cycle
            (defaults to ``compute2_rate`` when negative).
        seed: RNG seed (faults are reproducible).
    """

    compute2_rate: float = 0.0
    tra_rate: float = 0.0
    sum_rate: float = -1.0
    seed: int = 0xFA17

    def __post_init__(self) -> None:
        if self.sum_rate < 0:
            self.sum_rate = self.compute2_rate
        for name in ("compute2_rate", "tra_rate", "sum_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self._injected = 0

    @classmethod
    def from_variation(
        cls,
        percent: float,
        trials: int = 10_000,
        seed: int = 0xFA17,
    ) -> "FaultModel":
        """Derive rates from the Table I Monte-Carlo model.

        The Monte-Carlo error percentages are per-operation outcomes
        over random operand patterns — exactly the per-bit flip
        probability of a bulk row operation.
        """
        engine = MonteCarloSense(seed=seed)
        spec = VariationSpec(percent=percent)
        two_row = engine.run_two_row(spec, trials).error_percent / 100.0
        tra = engine.run_tra(spec, trials).error_percent / 100.0
        return cls(compute2_rate=two_row, tra_rate=tra, seed=seed)

    # ----- injection -----------------------------------------------------------

    @property
    def injected_faults(self) -> int:
        """Total bit flips injected so far."""
        return self._injected

    @property
    def enabled(self) -> bool:
        return max(self.compute2_rate, self.tra_rate, self.sum_rate) > 0.0

    def corrupt(self, bits: np.ndarray, mechanism: str) -> np.ndarray:
        """Flip each bit independently at the mechanism's rate."""
        rates = {
            "compute2": self.compute2_rate,
            "tra": self.tra_rate,
            "sum": self.sum_rate,
        }
        try:
            rate = rates[mechanism]
        except KeyError:
            raise ValueError(f"unknown mechanism {mechanism!r}") from None
        if rate <= 0.0:
            return bits
        flips = self._rng.random(bits.shape) < rate
        if not flips.any():
            return bits
        self._injected += int(flips.sum())
        return (bits ^ flips.astype(bits.dtype)).astype(np.uint8)


@dataclass(frozen=True)
class FaultReport:
    """Outcome summary of a fault-injection run (used by studies)."""

    variation_percent: float
    mechanism_rates: dict[str, float] = field(default_factory=dict)
    injected_faults: int = 0
    table_errors: int = 0
    assembly_correct: bool = True
