"""Fault injection: process-variation errors inside the functional sim.

Table I quantifies per-bit sensing error rates for the two in-memory
mechanisms; this module pushes those rates into the *functional*
simulator, so their application-level consequences (corrupt hash
tables, broken contigs) become observable — the bridge between the
circuit study and the assembly workload.

A :class:`FaultModel` holds per-mechanism bit-flip probabilities:

* ``compute2`` faults hit two-row-activation outputs (XNOR & friends);
* ``tra`` faults hit triple-row-activation majority outputs;
* ``sum`` faults hit the latch-assisted sum path (same add-on circuitry
  as compute2, so it defaults to the same rate);
* ``copy`` faults hit RowClone transfers (0 by default — back-to-back
  activation restores full-rail signals, but margin studies can stress
  it).

Rates can be set directly or derived from the Table I Monte-Carlo
engine at a given variation level (:meth:`FaultModel.from_variation`).

All sampling flows through the public :meth:`FaultModel.decide` /
:meth:`FaultModel.corrupt` APIs so that consumers (the controller's
``compare_scan`` shortcut, the resilience retry loop) share one seeded
stream and stay bit-reproducible.

Batched-sampling equivalence rule
=================================

The bulk execution engine samples faults for whole row blocks at once
instead of once per operation.  For a fixed seed this is **stream
equivalent** to the scalar per-op sequence because NumPy's
``Generator.random`` fills its output from the underlying bit
generator one double at a time, in C (row-major) order.  Hence:

* ``decide(a + b, rate)`` consumes exactly the uniforms of
  ``decide(a, rate)`` followed by ``decide(b, rate)``;
* ``decide((n, w), rate)`` consumes exactly the uniforms of ``n``
  consecutive ``decide(w, rate)`` calls, row by row.

A batched draw therefore reproduces the scalar per-op sampling
sequence **iff** (1) the batch covers ops in the same order the scalar
path would issue them, (2) each op contributes its elements in the
same (row-major) order, and (3) the batch draws only for ops that
would have drawn scalar-wise (the scalar path skips the RNG entirely
when a mechanism's rate is zero — a batch must never sample on behalf
of a zero-rate op).  :meth:`FaultModel.corrupt_block` applies the rule
for same-mechanism row batches; the property tests in
``tests/core/test_faults.py`` pin the equivalence down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.variation import MonteCarloSense, VariationSpec
from repro.errors import FaultConfigError


@dataclass
class FaultModel:
    """Per-mechanism bit-flip probabilities for in-memory operations.

    Attributes:
        compute2_rate: flip probability per output bit of a two-row
            activation.
        tra_rate: flip probability per output bit of a TRA majority.
        sum_rate: flip probability per output bit of a sum cycle
            (defaults to ``compute2_rate`` when negative).
        copy_rate: flip probability per bit of a RowClone transfer
            (defaults to 0: copies are full-swing in this design).
        seed: RNG seed (faults are reproducible).
    """

    compute2_rate: float = 0.0
    tra_rate: float = 0.0
    sum_rate: float = -1.0
    copy_rate: float = 0.0
    seed: int = 0xFA17

    def __post_init__(self) -> None:
        if self.sum_rate < 0:
            self.sum_rate = self.compute2_rate
        for name in ("compute2_rate", "tra_rate", "sum_rate", "copy_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultConfigError(f"{name} must be within [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self._injected = 0

    @classmethod
    def from_variation(
        cls,
        percent: float,
        trials: int = 10_000,
        seed: int = 0xFA17,
    ) -> "FaultModel":
        """Derive rates from the Table I Monte-Carlo model.

        The Monte-Carlo error percentages are per-operation outcomes
        over random operand patterns — exactly the per-bit flip
        probability of a bulk row operation.
        """
        engine = MonteCarloSense(seed=seed)
        spec = VariationSpec(percent=percent)
        two_row = engine.run_two_row(spec, trials).error_percent / 100.0
        tra = engine.run_tra(spec, trials).error_percent / 100.0
        return cls(compute2_rate=two_row, tra_rate=tra, seed=seed)

    # ----- injection -----------------------------------------------------------

    @property
    def injected_faults(self) -> int:
        """Total bit flips injected so far."""
        return self._injected

    @property
    def enabled(self) -> bool:
        return (
            max(self.compute2_rate, self.tra_rate, self.sum_rate, self.copy_rate)
            > 0.0
        )

    def rate_for(self, mechanism: str) -> float:
        """The per-bit flip rate of one fault mechanism."""
        rates = {
            "compute2": self.compute2_rate,
            "tra": self.tra_rate,
            "sum": self.sum_rate,
            "copy": self.copy_rate,
        }
        try:
            return rates[mechanism]
        except KeyError:
            raise FaultConfigError(f"unknown mechanism {mechanism!r}") from None

    def decide(
        self,
        shape: int | tuple[int, ...],
        rate: "float | np.ndarray",
    ) -> np.ndarray:
        """Sample fault events: boolean array, True where a fault fires.

        The public sampling API — consumers must use this (never the
        private RNG) so that every draw comes from the one seeded
        stream and runs stay reproducible.  ``rate`` may be a scalar or
        an array broadcastable to ``shape`` (per-element
        probabilities).
        """
        return self._rng.random(shape) < np.asarray(rate, dtype=np.float64)

    def corrupt(
        self, bits: np.ndarray, mechanism: str, scale: float = 1.0
    ) -> np.ndarray:
        """Flip each bit independently at the mechanism's rate.

        Args:
            scale: multiplier on the base rate — the resilience layer's
                exponential operand re-staging retries re-execute at a
                derated effective rate (slower, higher-margin timing).
        """
        rate = self.rate_for(mechanism) * scale
        if rate <= 0.0:
            return bits
        flips = self.decide(bits.shape, rate)
        if not flips.any():
            return bits
        self._injected += int(flips.sum())
        return (bits ^ flips.astype(bits.dtype)).astype(np.uint8)

    # ----- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot: rates plus the exact RNG stream.

        Restoring it mid-stream (:meth:`from_state`) continues the
        uniform sequence bit-for-bit, which is what makes checkpointed
        fault-injection runs resume bit-identically.
        """
        return {
            "compute2_rate": self.compute2_rate,
            "tra_rate": self.tra_rate,
            "sum_rate": self.sum_rate,
            "copy_rate": self.copy_rate,
            "seed": self.seed,
            "rng_state": self._rng.bit_generator.state,
            "injected": self._injected,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FaultModel":
        """Rebuild a model (and its RNG position) from :meth:`state_dict`."""
        model = cls(
            compute2_rate=float(state["compute2_rate"]),
            tra_rate=float(state["tra_rate"]),
            sum_rate=float(state["sum_rate"]),
            copy_rate=float(state["copy_rate"]),
            seed=int(state["seed"]),
        )
        model._rng.bit_generator.state = state["rng_state"]
        model._injected = int(state["injected"])
        return model

    def corrupt_block(
        self, block: np.ndarray, mechanism: str, scale: float = 1.0
    ) -> np.ndarray:
        """Batched :meth:`corrupt` over a ``(rows, cols)`` block.

        One ``(rows, cols)`` draw replaces ``rows`` consecutive per-row
        draws; by the stream-equivalence rule (module docstring) the
        result is bit-identical to calling :meth:`corrupt` on each row
        in order with the same seed.  Returns the input object itself
        when the mechanism's rate is zero or no bit fired (mirroring
        the scalar path's identity-return contract).
        """
        rate = self.rate_for(mechanism) * scale
        if rate <= 0.0:
            return block
        flips = self.decide(block.shape, rate)
        if not flips.any():
            return block
        self._injected += int(flips.sum())
        return (block ^ flips.astype(block.dtype)).astype(np.uint8)


@dataclass(frozen=True)
class FaultReport:
    """Outcome summary of a fault-injection run (used by studies)."""

    variation_percent: float
    mechanism_rates: dict[str, float] = field(default_factory=dict)
    injected_faults: int = 0
    table_errors: int = 0
    assembly_correct: bool = True
