"""Resilience subsystem: detect, correct and degrade gracefully.

The fault model (:mod:`repro.core.faults`) makes Table I's process
variation *observable*; this module closes the loop.  The add-on XOR
gate that gives PIM-Assembler its XNOR-native sense amplifier is also
a parity engine, so the platform can check its own bulk operations
in-memory:

* **detect** — every protected operation is verified (parity recompute
  through the latch-assisted XOR path + a DPU reduce), charged to the
  :class:`~repro.core.stats.StatsLedger` under ``VRF_*`` mnemonics so
  protection has a visible time/energy cost;
* **retry** — a detected mismatch re-executes the operation, up to
  ``max_retries`` times, with *exponential operand re-staging*: each
  retry re-stages operands at a slower, higher-margin timing, modelled
  as a geometric derating of the effective fault rate;
* **remap** — rows that stay corrupt after every retry are *weak rows*
  (the same physical population the retention/margin studies in
  :mod:`repro.dram.retention` / :mod:`repro.dram.margins` describe);
  the allocator skips them, and a sub-array that accumulates
  ``quarantine_threshold`` uncorrectable events is quarantined outright
  so higher layers stop placing data there.

Policy levels mirror that escalation: ``off`` / ``detect`` /
``detect-retry`` / ``detect-retry-remap``.

The verification overhead constants (how many extra AAP slots and DPU
ops one check costs) are calibration constants, documented in
``docs/CALIBRATION.md``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.core.stats import StatsLedger
from repro.errors import FaultConfigError
from repro.dram.retention import RetentionModel
from repro.observability.metrics import inc
from repro.observability.spans import event

#: extra AAP row cycles one verification costs: recompute the parity of
#: the result through the latch-assisted XOR path (latch load + sum).
VERIFY_AAP_CYCLES = 2
#: extra DPU ops one verification costs (the reduce over the check row).
VERIFY_DPU_OPS = 1
#: AAP cycles to fold one inserted row into a region's running parity.
PARITY_UPDATE_AAP_CYCLES = 1


class PolicyLevel(str, Enum):
    """Escalation ladder of the resilience subsystem."""

    OFF = "off"
    DETECT = "detect"
    DETECT_RETRY = "detect-retry"
    DETECT_RETRY_REMAP = "detect-retry-remap"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Configuration of the inject → detect → correct → degrade loop.

    Attributes:
        level: how far the escalation ladder goes (see
            :class:`PolicyLevel`).
        max_retries: bounded re-executions after a detected mismatch.
        restage_derate: per-retry multiplier on the effective fault
            rate — retry ``i`` re-stages operands at
            ``rate * restage_derate**i`` (exponential re-staging).
        quarantine_threshold: uncorrectable events a sub-array absorbs
            before it is quarantined (remap level only).
        scrub: verify the resident k-mer table between pipeline stages.
        raise_on_uncorrected: raise
            :class:`~repro.errors.UncorrectableFaultError` instead of
            degrading gracefully.
    """

    level: PolicyLevel = PolicyLevel.OFF
    max_retries: int = 3
    restage_derate: float = 0.5
    quarantine_threshold: int = 3
    scrub: bool = True
    raise_on_uncorrected: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultConfigError("max_retries must be non-negative")
        if not 0.0 < self.restage_derate <= 1.0:
            raise FaultConfigError("restage_derate must be in (0, 1]")
        if self.quarantine_threshold < 1:
            raise FaultConfigError("quarantine_threshold must be >= 1")

    @classmethod
    def named(cls, name: "str | PolicyLevel | ResiliencePolicy", **overrides) -> "ResiliencePolicy":
        """Build a policy from its level name (``"detect-retry"``...).

        Accepts an existing policy (returned as-is, with overrides
        applied), a :class:`PolicyLevel`, or its string value.
        """
        if isinstance(name, ResiliencePolicy):
            return replace(name, **overrides) if overrides else name
        try:
            level = PolicyLevel(name)
        except ValueError:
            valid = ", ".join(p.value for p in PolicyLevel)
            raise FaultConfigError(
                f"unknown resilience policy {name!r}; expected one of {valid}"
            ) from None
        return cls(level=level, **overrides)

    def state_dict(self) -> dict:
        """JSON-serializable form (see :meth:`from_state`)."""
        return {
            "level": self.level.value,
            "max_retries": self.max_retries,
            "restage_derate": self.restage_derate,
            "quarantine_threshold": self.quarantine_threshold,
            "scrub": self.scrub,
            "raise_on_uncorrected": self.raise_on_uncorrected,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ResiliencePolicy":
        return cls(
            level=PolicyLevel(state["level"]),
            max_retries=int(state["max_retries"]),
            restage_derate=float(state["restage_derate"]),
            quarantine_threshold=int(state["quarantine_threshold"]),
            scrub=bool(state["scrub"]),
            raise_on_uncorrected=bool(state["raise_on_uncorrected"]),
        )

    @property
    def detect(self) -> bool:
        return self.level is not PolicyLevel.OFF

    @property
    def retry(self) -> bool:
        return self.level in (
            PolicyLevel.DETECT_RETRY,
            PolicyLevel.DETECT_RETRY_REMAP,
        )

    @property
    def remap(self) -> bool:
        return self.level is PolicyLevel.DETECT_RETRY_REMAP


def recommended_policy(
    variation_percent: float,
    residual_target: float = 1e-6,
) -> ResiliencePolicy:
    """Size a remap policy from the Table I statistics.

    Chooses ``max_retries`` so the residual per-op error probability —
    first execution *and* every exponentially re-staged retry all
    faulting, ``prod_i min(1, rate * derate**i)`` at the worst
    (TRA-class) Table I rate — drops below ``residual_target``.
    """
    from repro.core.faults import FaultModel  # local: avoids import cycle

    if variation_percent <= 0:
        return ResiliencePolicy(level=PolicyLevel.DETECT_RETRY_REMAP)
    model = FaultModel.from_variation(variation_percent)
    rate = max(model.compute2_rate, model.tra_rate)
    policy = ResiliencePolicy(level=PolicyLevel.DETECT_RETRY_REMAP)
    if rate <= 0.0:
        return policy
    retries, residual = 0, min(1.0, rate)
    while residual > residual_target and retries < 16:
        retries += 1
        residual *= min(1.0, rate * policy.restage_derate**retries)
    return replace(policy, max_retries=max(policy.max_retries, retries))


def spare_rows_needed(
    table_bits_per_row: int,
    rows: int,
    residency_s: float,
    model: RetentionModel | None = None,
    refresh_interval_s: float = 0.064,
) -> int:
    """Spare-row budget for weak-row remapping, from retention stats.

    Expected number of rows that lose a bit during a table residency —
    the population the remap level retires — rounded up with one extra
    row of headroom when the expectation is nonzero.
    """
    if table_bits_per_row <= 0 or rows <= 0:
        raise FaultConfigError("row geometry must be positive")
    if residency_s <= 0:
        return 0
    model = model or RetentionModel()
    p_cell = model.cell_failure_probability(refresh_interval_s, residency_s)
    p_row = 1.0 - (1.0 - p_cell) ** table_bits_per_row
    expected = rows * p_row
    return 0 if expected == 0.0 else math.ceil(expected) + 1


@dataclass(frozen=True)
class ResilienceCounts:
    """Event counters over one window (a stage, or the whole run)."""

    detected: int = 0
    corrected: int = 0
    uncorrected: int = 0
    retries: int = 0
    verified_ops: int = 0
    verify_time_ns: float = 0.0
    verify_energy_nj: float = 0.0
    scrubbed_rows: int = 0
    scrub_repairs: int = 0

    def __sub__(self, other: "ResilienceCounts") -> "ResilienceCounts":
        return ResilienceCounts(
            detected=self.detected - other.detected,
            corrected=self.corrected - other.corrected,
            uncorrected=self.uncorrected - other.uncorrected,
            retries=self.retries - other.retries,
            verified_ops=self.verified_ops - other.verified_ops,
            verify_time_ns=self.verify_time_ns - other.verify_time_ns,
            verify_energy_nj=self.verify_energy_nj - other.verify_energy_nj,
            scrubbed_rows=self.scrubbed_rows - other.scrubbed_rows,
            scrub_repairs=self.scrub_repairs - other.scrub_repairs,
        )


@dataclass(frozen=True)
class ResilienceReport:
    """What the resilience subsystem saw and did during a run."""

    policy: str
    totals: ResilienceCounts
    stages: dict[str, ResilienceCounts] = field(default_factory=dict)
    quarantined_subarrays: tuple[tuple[int, int, int], ...] = ()
    weak_rows: tuple[tuple[tuple[int, int, int], int], ...] = ()

    @property
    def clean(self) -> bool:
        """True when no fault survived correction."""
        return self.totals.uncorrected == 0

    def __str__(self) -> str:
        t = self.totals
        return (
            f"policy={self.policy} detected={t.detected} "
            f"corrected={t.corrected} uncorrected={t.uncorrected} "
            f"retries={t.retries} "
            f"verify={t.verify_time_ns/1e3:.1f}us/{t.verify_energy_nj:.1f}nJ "
            f"scrubbed={t.scrubbed_rows} repaired={t.scrub_repairs} "
            f"quarantined={len(self.quarantined_subarrays)} "
            f"weak_rows={len(self.weak_rows)}"
        )


class ResilienceLedger:
    """Counts resilience events and attributes them to ledger phases.

    Mirrors :class:`StatsLedger`'s phase mechanism: events recorded
    while a stats phase is open are attributed to that phase too, so
    the pipeline can report per-stage resilience next to per-stage
    :class:`~repro.core.stats.PhaseTotals`.
    """

    def __init__(self, stats: StatsLedger | None = None) -> None:
        self._stats = stats
        self._events: dict[str, Counter] = {StatsLedger.ROOT_PHASE: Counter()}
        self._floats: dict[str, Counter] = {StatsLedger.ROOT_PHASE: Counter()}

    def _targets(self) -> list[str]:
        targets = [StatsLedger.ROOT_PHASE]
        if self._stats is not None and self._stats.current_phase:
            targets.append(self._stats.current_phase)
        return targets

    def bump(self, name: str, count: int = 1) -> None:
        for target in self._targets():
            self._events.setdefault(target, Counter())[name] += count

    def bump_float(self, name: str, amount: float) -> None:
        for target in self._targets():
            self._floats.setdefault(target, Counter())[name] += amount

    def counts(self, phase: str | None = None) -> ResilienceCounts:
        name = phase or StatsLedger.ROOT_PHASE
        events = self._events.get(name, Counter())
        floats = self._floats.get(name, Counter())
        return ResilienceCounts(
            detected=events["detected"],
            corrected=events["corrected"],
            uncorrected=events["uncorrected"],
            retries=events["retries"],
            verified_ops=events["verified_ops"],
            verify_time_ns=floats["verify_time_ns"],
            verify_energy_nj=floats["verify_energy_nj"],
            scrubbed_rows=events["scrubbed_rows"],
            scrub_repairs=events["scrub_repairs"],
        )

    def phases(self) -> list[str]:
        return sorted(n for n in self._events if n != StatsLedger.ROOT_PHASE)


class ResilienceEngine:
    """Run-time state of the resilience subsystem.

    One engine is attached to a :class:`~repro.core.controller.Controller`
    (``controller.resilience``); the controller calls back into it from
    every protected operation.  The engine owns the event ledger, the
    weak-row set and the quarantine set; allocation layers consult
    :meth:`is_quarantined` / :meth:`is_weak_row` to steer around
    retired storage.
    """

    def __init__(
        self,
        policy: "ResiliencePolicy | str | PolicyLevel" = PolicyLevel.OFF,
        stats: StatsLedger | None = None,
    ) -> None:
        self.policy = ResiliencePolicy.named(policy)
        self.ledger = ResilienceLedger(stats)
        self._failures: Counter = Counter()  # uncorrectable events per sub-array
        self._weak_rows: set[tuple[tuple[int, int, int], int]] = set()
        self._quarantined: set[tuple[int, int, int]] = set()

    # ----- event recording (called by the controller) ----------------------

    def note_verify(self, time_ns: float, energy_nj: float, ops: int = 1) -> None:
        """Account the cost of ``ops`` verification checks."""
        self.ledger.bump("verified_ops", ops)
        self.ledger.bump_float("verify_time_ns", time_ns)
        self.ledger.bump_float("verify_energy_nj", energy_nj)

    def note_detected(self, count: int = 1) -> None:
        self.ledger.bump("detected", count)
        inc("resilience.detected", count)

    def note_retry(self, count: int = 1) -> None:
        self.ledger.bump("retries", count)
        inc("resilience.retries", count)

    def note_corrected(self, count: int = 1) -> None:
        self.ledger.bump("corrected", count)
        inc("resilience.corrected", count)

    def note_uncorrected(
        self,
        subarray_key: tuple[int, int, int],
        row: int | None = None,
        count: int = 1,
    ) -> None:
        """An operation stayed corrupt; escalate per the policy."""
        self.ledger.bump("uncorrected", count)
        inc("resilience.uncorrected", count)
        event(
            "resilience.uncorrected",
            lane="resilience",
            subarray=list(subarray_key),
            row=row,
        )
        if not self.policy.remap:
            return
        if row is not None:
            self._weak_rows.add((subarray_key, row))
            inc("resilience.weak_rows")
        self._failures[subarray_key] += count
        if (
            self._failures[subarray_key] >= self.policy.quarantine_threshold
            and subarray_key not in self._quarantined
        ):
            self._quarantined.add(subarray_key)
            inc("resilience.quarantines")
            event(
                "resilience.quarantine",
                lane="resilience",
                subarray=list(subarray_key),
                failures=self._failures[subarray_key],
            )

    def mark_weak_row(
        self, subarray_key: tuple[int, int, int], row: int
    ) -> bool:
        """Retire one row as weak without booking an uncorrected event.

        The retention scrubber calls this when a row keeps upsetting
        *correctably*: ECC healed every hit, so no data was lost and no
        ``uncorrected`` count is owed — but the row is evidently from
        the weak-retention population and the allocator should steer
        around it.  Gated on the remap policy level like the escalation
        in :meth:`note_uncorrected`.  Returns True when the row was
        newly retired.
        """
        if not self.policy.remap:
            return False
        if (subarray_key, row) in self._weak_rows:
            return False
        self._weak_rows.add((subarray_key, row))
        inc("resilience.weak_rows")
        event(
            "resilience.weak_row",
            lane="resilience",
            subarray=list(subarray_key),
            row=row,
        )
        return True

    def note_scrub(self, rows: int, repairs: int = 0) -> None:
        self.ledger.bump("scrubbed_rows", rows)
        inc("resilience.scrubbed_rows", rows)
        if repairs:
            self.ledger.bump("scrub_repairs", repairs)
            inc("resilience.scrub_repairs", repairs)

    # ----- degradation state ------------------------------------------------

    @property
    def quarantined(self) -> frozenset[tuple[int, int, int]]:
        return frozenset(self._quarantined)

    @property
    def weak_rows(self) -> frozenset[tuple[tuple[int, int, int], int]]:
        return frozenset(self._weak_rows)

    def is_quarantined(self, subarray_key: tuple[int, int, int]) -> bool:
        return subarray_key in self._quarantined

    def is_weak_row(self, subarray_key: tuple[int, int, int], row: int) -> bool:
        return (subarray_key, row) in self._weak_rows

    def quarantine(self, subarray_key: tuple[int, int, int]) -> None:
        """Explicitly retire a sub-array (used by scrubbing/tests)."""
        if subarray_key not in self._quarantined:
            self._quarantined.add(subarray_key)
            inc("resilience.quarantines")
            event(
                "resilience.quarantine",
                lane="resilience",
                subarray=list(subarray_key),
                failures=self._failures[subarray_key],
            )

    def failures(self, subarray_key: tuple[int, int, int]) -> int:
        return self._failures[subarray_key]

    # ----- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every event counter and the
        full degradation state (weak rows, quarantines, failure tallies)."""
        return {
            "policy": self.policy.state_dict(),
            "events": {
                name: dict(counter)
                for name, counter in self.ledger._events.items()
            },
            "floats": {
                name: dict(counter)
                for name, counter in self.ledger._floats.items()
            },
            "failures": {
                ",".join(map(str, key)): count
                for key, count in self._failures.items()
            },
            "weak_rows": [
                [list(key), row] for key, row in sorted(self._weak_rows)
            ],
            "quarantined": [list(key) for key in sorted(self._quarantined)],
        }

    @classmethod
    def from_state(
        cls, state: dict, stats: StatsLedger | None = None
    ) -> "ResilienceEngine":
        """Rebuild an engine mid-run from :meth:`state_dict`."""
        engine = cls(ResiliencePolicy.from_state(state["policy"]), stats=stats)
        engine.ledger._events = {
            name: Counter({k: int(v) for k, v in counts.items()})
            for name, counts in state["events"].items()
        }
        engine.ledger._floats = {
            name: Counter({k: float(v) for k, v in amounts.items()})
            for name, amounts in state["floats"].items()
        }
        engine._failures = Counter(
            {
                tuple(int(p) for p in key.split(",")): int(count)
                for key, count in state["failures"].items()
            }
        )
        engine._weak_rows = {
            (tuple(int(p) for p in key), int(row))
            for key, row in state["weak_rows"]
        }
        engine._quarantined = {
            tuple(int(p) for p in key) for key in state["quarantined"]
        }
        return engine

    # ----- reporting --------------------------------------------------------

    def counts(self, phase: str | None = None) -> ResilienceCounts:
        return self.ledger.counts(phase)

    def report(self, stages: "list[str] | None" = None) -> ResilienceReport:
        """Snapshot the run's resilience outcome.

        Args:
            stages: phase names to break out (defaults to every phase
                that recorded an event).
        """
        names = stages if stages is not None else self.ledger.phases()
        return ResilienceReport(
            policy=self.policy.level.value,
            totals=self.counts(),
            stages={name: self.counts(name) for name in names},
            quarantined_subarrays=tuple(sorted(self._quarantined)),
            weak_rows=tuple(sorted(self._weak_rows)),
        )
