"""Command-trace recording and analysis.

A :class:`CommandTrace` captures the exact AAP command stream the
controller issues — the same artefact a memory-controller RTL test
bench would consume.  Uses:

* **debugging** — inspect what an algorithm actually issued;
* **verification** — replay a trace against a fresh device and check
  the final state matches (`replay`), proving the trace is a complete
  description of the computation;
* **analysis** — command-mix histograms, per-sub-array load, bank-level
  conflict estimation (`TraceAnalysis`).

Recording is opt-in (`Controller.attach_trace`) so the default
simulator carries no overhead.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.core.controller import Controller


@dataclass(frozen=True)
class TraceEntry:
    """One recorded command.

    Attributes:
        index: issue order.
        mnemonic: command name (one of
            :data:`repro.core.isa.ALL_MNEMONICS`).
        subarray: (bank, mat, subarray) the command targets.
        rows: row operands in issue order (sources first, then the
            destination, where applicable).
        payload: row data for ``MEM_WR`` commands (bit tuple) and the
            fill value for ``ROW_INIT`` (one-element tuple), else
            ``None`` — exactly the information needed for replay.
    """

    index: int
    mnemonic: str
    subarray: tuple[int, int, int]
    rows: tuple[int, ...]
    payload: tuple[int, ...] | None = None

    def __str__(self) -> str:
        rows = ",".join(str(r) for r in self.rows)
        return f"#{self.index} {self.mnemonic} @{self.subarray} rows[{rows}]"


class CommandTrace:
    """An append-only record of issued commands."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._entries: list[TraceEntry] = []
        self._marks: list[tuple[int, str]] = []
        self._capacity = capacity

    def record(
        self,
        mnemonic: str,
        subarray: tuple[int, int, int],
        rows: tuple[int, ...],
        payload: np.ndarray | None = None,
    ) -> None:
        if self._capacity is not None and len(self._entries) >= self._capacity:
            raise OverflowError(
                f"trace capacity ({self._capacity} commands) exceeded"
            )
        self._entries.append(
            TraceEntry(
                index=len(self._entries),
                mnemonic=mnemonic,
                subarray=subarray,
                rows=rows,
                payload=tuple(int(b) for b in payload) if payload is not None else None,
            )
        )

    def mark(self, label: str) -> None:
        """Drop a named marker at the current stream position.

        Markers delimit pipeline windows (``hashmap:begin`` /
        ``scrub:end`` ...) so the trace verifier can scope its
        layout-region rules to the stage that owns the layout.
        """
        self._marks.append((len(self._entries), label))

    @property
    def marks(self) -> list[tuple[int, str]]:
        """(position, label) markers; position indexes into entries."""
        return list(self._marks)

    # ----- access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    def entries(self, mnemonic: str | None = None) -> list[TraceEntry]:
        if mnemonic is None:
            return list(self._entries)
        return [e for e in self._entries if e.mnemonic == mnemonic]

    def clear(self) -> None:
        self._entries.clear()
        self._marks.clear()

    # ----- serialisation ------------------------------------------------------

    def to_text(self) -> str:
        """Human-readable trace dump, one command per line."""
        return "\n".join(str(e) for e in self._entries)

    def to_json(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_json`)."""
        commands = []
        for e in self._entries:
            cmd: dict = {
                "op": e.mnemonic,
                "sub": list(e.subarray),
                "rows": list(e.rows),
            }
            if e.payload is not None:
                cmd["payload"] = list(e.payload)
            commands.append(cmd)
        return {
            "commands": commands,
            "marks": [[pos, label] for pos, label in self._marks],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "CommandTrace":
        """Rebuild a trace from :meth:`to_json` output.

        Raises:
            ValueError: on a malformed document (the analysis layer
                wraps this in its typed ``TraceFormatError``).
        """
        trace = cls()
        commands = doc.get("commands")
        if not isinstance(commands, list):
            raise ValueError("trace document: 'commands' missing or not a list")
        for i, cmd in enumerate(commands):
            if not isinstance(cmd, dict):
                raise ValueError(f"trace command #{i}: not an object")
            try:
                mnemonic = cmd["op"]
                subarray = tuple(int(x) for x in cmd["sub"])
                rows = tuple(int(r) for r in cmd["rows"])
            except (KeyError, TypeError, ValueError):
                raise ValueError(
                    f"trace command #{i}: needs 'op', 'sub', 'rows'"
                ) from None
            if not isinstance(mnemonic, str) or len(subarray) != 3:
                raise ValueError(f"trace command #{i}: malformed op/sub")
            payload = cmd.get("payload")
            trace.record(
                mnemonic,
                subarray,  # type: ignore[arg-type]
                rows,
                np.asarray(payload, dtype=np.uint8) if payload is not None else None,
            )
        for j, mark in enumerate(doc.get("marks", [])):
            try:
                pos, label = mark
            except (TypeError, ValueError):
                raise ValueError(f"trace mark #{j}: expected [pos, label]") from None
            if not isinstance(label, str):
                raise ValueError(f"trace mark #{j}: label must be a string")
            trace._marks.append((int(pos), label))
        return trace


class ChargeLog:
    """An append-only record of batched-scheduler charges and flushes.

    The bulk engine executes on raw bit planes and *charges* the ledger
    through :class:`~repro.core.scheduler.BatchedAapScheduler` rather
    than issuing per-command traces — so for bulk runs this log is the
    auditable artefact: every ``charge()`` and every ``flush()``
    boundary, enough for the analysis layer to re-derive the makespan
    math and cross-check it against the cost tables.
    """

    def __init__(self) -> None:
        self._charges: list[tuple[str, tuple[int, ...], int, float]] = []
        self._flushes: list[tuple[int, float, float, int]] = []

    def charge(
        self,
        mnemonic: str,
        subarray_key: tuple[int, ...],
        count: int,
        time_ns: float,
    ) -> None:
        self._charges.append((mnemonic, tuple(subarray_key), count, time_ns))

    def flush(self, serial_ns: float, makespan_ns: float, commands: int) -> None:
        self._flushes.append(
            (len(self._charges), serial_ns, makespan_ns, commands)
        )

    @property
    def charges(self) -> list[tuple[str, tuple[int, ...], int, float]]:
        return list(self._charges)

    @property
    def flushes(self) -> list[tuple[int, float, float, int]]:
        """(charge-position, serial_ns, makespan_ns, commands) per flush."""
        return list(self._flushes)

    def __len__(self) -> int:
        return len(self._charges)

    def to_json(self) -> dict:
        return {
            "charges": [
                {"op": m, "sub": list(k), "count": c, "time_ns": t}
                for m, k, c, t in self._charges
            ],
            "flushes": [
                {"at": at, "serial_ns": s, "makespan_ns": mk, "commands": n}
                for at, s, mk, n in self._flushes
            ],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ChargeLog":
        log = cls()
        try:
            for ch in doc.get("charges", []):
                log._charges.append(
                    (
                        str(ch["op"]),
                        tuple(int(x) for x in ch["sub"]),
                        int(ch["count"]),
                        float(ch["time_ns"]),
                    )
                )
            for fl in doc.get("flushes", []):
                log._flushes.append(
                    (
                        int(fl["at"]),
                        float(fl["serial_ns"]),
                        float(fl["makespan_ns"]),
                        int(fl["commands"]),
                    )
                )
        except (KeyError, TypeError, ValueError):
            raise ValueError("charge-log document: malformed entry") from None
        return log


@dataclass(frozen=True)
class TraceAnalysis:
    """Aggregate statistics of one trace."""

    command_mix: Counter
    subarray_load: Counter
    bank_load: Counter

    @property
    def total_commands(self) -> int:
        return sum(self.command_mix.values())

    @property
    def busiest_subarray(self) -> tuple[tuple[int, int, int], int] | None:
        if not self.subarray_load:
            return None
        key, count = self.subarray_load.most_common(1)[0]
        return key, count

    def load_imbalance(self) -> float:
        """max/mean sub-array load (1.0 = perfectly balanced)."""
        if not self.subarray_load:
            return 1.0
        loads = list(self.subarray_load.values())
        return max(loads) / (sum(loads) / len(loads))


def analyse(trace: CommandTrace) -> TraceAnalysis:
    """Compute the command-mix and load statistics of a trace."""
    mix: Counter = Counter()
    sub_load: Counter = Counter()
    bank_load: Counter = Counter()
    for entry in trace:
        mix[entry.mnemonic] += 1
        sub_load[entry.subarray] += 1
        bank_load[entry.subarray[0]] += 1
    return TraceAnalysis(
        command_mix=mix, subarray_load=sub_load, bank_load=bank_load
    )


def replay_entry(entry: TraceEntry, controller: "Controller") -> bool:
    """Re-issue one recorded command; returns False when skipped.

    ``MEM_RD`` and ``DPU`` entries are observations (they do not mutate
    array state) and are skipped.

    Raises:
        ValueError: on a mnemonic replay does not understand.
    """
    from repro.core.isa import RowAddress, SAOp

    bank, mat, sub = entry.subarray

    def addr(row: int) -> RowAddress:
        return RowAddress(bank=bank, mat=mat, subarray=sub, row=row)

    if entry.mnemonic == "AAP1":
        controller.copy(addr(entry.rows[0]), addr(entry.rows[1]))
    elif entry.mnemonic == "AAP2":
        controller.compute2(
            addr(entry.rows[0]),
            addr(entry.rows[1]),
            addr(entry.rows[2]),
            SAOp.XNOR2,
        )
    elif entry.mnemonic == "AAP3":
        controller.tra_carry(
            addr(entry.rows[0]),
            addr(entry.rows[1]),
            addr(entry.rows[2]),
            addr(entry.rows[3]),
        )
    elif entry.mnemonic == "SUM":
        controller.sum_cycle(
            addr(entry.rows[0]), addr(entry.rows[1]), addr(entry.rows[2])
        )
    elif entry.mnemonic == "LATCH_LD":
        controller.load_latch(addr(entry.rows[0]))
    elif entry.mnemonic == "LATCH_CLR":
        controller.clear_latch(entry.subarray)
    elif entry.mnemonic == "ROW_INIT":
        if entry.payload is None:
            raise ValueError(f"ROW_INIT entry #{entry.index} lacks payload")
        controller.init_row(addr(entry.rows[0]), int(entry.payload[0]))
    elif entry.mnemonic == "MEM_WR":
        if entry.payload is None:
            raise ValueError(f"MEM_WR entry #{entry.index} lacks payload")
        controller.write_row(
            addr(entry.rows[0]), np.array(entry.payload, dtype=np.uint8)
        )
    elif entry.mnemonic in ("MEM_RD", "DPU"):
        return False
    else:
        raise ValueError(f"cannot replay mnemonic {entry.mnemonic!r}")
    return True


def replay(trace: CommandTrace, controller: "Controller") -> None:
    """Re-issue a recorded trace against a (fresh) controller.

    Only state-changing commands are replayed; ``MEM_RD`` and ``DPU``
    entries are skipped (they do not mutate array state).  After
    replay, the device state must equal the state after the original
    run — the invariant the trace tests assert.

    Raises:
        ValueError: on a mnemonic replay does not understand.
    """
    for entry in trace:
        replay_entry(entry, controller)
