"""Cycle / energy accounting ledger.

Every primitive the functional simulator executes reports itself here,
so that benchmarks can read wall-clock time, energy and command mixes
without instrumenting the algorithms.  The ledger supports hierarchical
*phases* (e.g. ``hashmap`` / ``debruijn`` / ``traverse``) matching the
per-stage breakdowns of the paper's Fig. 9.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import PhaseActiveError

if TYPE_CHECKING:
    from repro.observability.metrics import Recorder


@dataclass(frozen=True)
class PhaseTotals:
    """Aggregate time/energy/commands of one phase (or of the whole run)."""

    time_ns: float = 0.0
    energy_nj: float = 0.0
    commands: Mapping[str, int] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        return self.time_ns * 1e-9

    @property
    def energy_j(self) -> float:
        return self.energy_nj * 1e-9

    @property
    def total_commands(self) -> int:
        return sum(self.commands.values())

    def average_power_w(self, background_w: float = 0.0) -> float:
        """Dynamic average power over the phase duration, plus background."""
        if self.time_ns <= 0:
            return background_w
        return self.energy_nj / self.time_ns + background_w


class StatsLedger:
    """Accumulates command events, grouped by phase.

    The ledger is intentionally additive-only; algorithms never read it
    back to make decisions, preserving the separation between the
    functional and the timed views of the simulator.
    """

    ROOT_PHASE = "total"

    def __init__(self) -> None:
        self._time_ns: dict[str, float] = defaultdict(float)
        self._energy_nj: dict[str, float] = defaultdict(float)
        self._commands: dict[str, Counter] = defaultdict(Counter)
        self._phase_stack: list[str] = []
        #: optional observability sink (see repro.observability.metrics);
        #: None by default so recording stays a pure accumulation
        self._recorder: "Recorder | None" = None

    def attach_recorder(self, recorder: "Recorder | None") -> None:
        """Forward subsequent events to an observability recorder.

        The recorder only *observes* the event stream (command, count,
        time, energy, phase); the ledger stays the single source of
        truth and algorithms still never read anything back — the
        functional/timed separation is untouched.  ``None`` detaches.
        """
        self._recorder = recorder

    @property
    def current_phase(self) -> str | None:
        return self._phase_stack[-1] if self._phase_stack else None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all events inside the block to ``name`` (and total)."""
        if not name or name == self.ROOT_PHASE:
            raise ValueError("phase name must be non-empty and not 'total'")
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def record(
        self,
        command: str,
        time_ns: float,
        energy_nj: float,
        count: int = 1,
    ) -> None:
        """Record ``count`` occurrences of a command.

        Args:
            command: command mnemonic (e.g. ``"AAP2"``, ``"DPU_AND"``).
            time_ns: wall-clock contribution of *all* ``count`` events
                combined (callers pre-multiply so that parallel sub-array
                execution can be expressed as count=N, time of one).
            energy_nj: total energy of all events combined.
            count: number of command instances issued.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if time_ns < 0 or energy_nj < 0:
            raise ValueError("time and energy must be non-negative")
        targets = [self.ROOT_PHASE]
        targets.extend(self._phase_stack)
        for name in targets:
            self._time_ns[name] += time_ns
            self._energy_nj[name] += energy_nj
            self._commands[name][command] += count
        if self._recorder is not None:
            self._recorder.on_command(
                command, count, time_ns, energy_nj, self.current_phase
            )

    def elapsed_ns(self, phase: str | None = None) -> float:
        """Accumulated simulated time of a phase (default: whole run).

        A cheap accessor (no :class:`PhaseTotals` construction) — the
        observability layer's simulated clock reads this per span.
        """
        return self._time_ns.get(phase or self.ROOT_PHASE, 0.0)

    def totals(self, phase: str | None = None) -> PhaseTotals:
        """Aggregates for a phase (default: whole run)."""
        name = phase or self.ROOT_PHASE
        return PhaseTotals(
            time_ns=self._time_ns.get(name, 0.0),
            energy_nj=self._energy_nj.get(name, 0.0),
            commands=dict(self._commands.get(name, Counter())),
        )

    def phases(self) -> list[str]:
        """All phases that recorded at least one event (excl. total)."""
        return sorted(n for n in self._time_ns if n != self.ROOT_PHASE)

    def command_count(self, command: str, phase: str | None = None) -> int:
        name = phase or self.ROOT_PHASE
        return self._commands.get(name, Counter()).get(command, 0)

    def merge(self, other: "StatsLedger") -> None:
        """Fold another ledger's events into this one (phase-wise).

        Raises:
            PhaseActiveError: a phase is open on either ledger — a
                mid-phase merge would silently mix partial phase
                totals into the combined record.
        """
        if self._phase_stack:
            raise PhaseActiveError(
                f"cannot merge into a ledger with open phase "
                f"{self._phase_stack[-1]!r}"
            )
        if other._phase_stack:
            raise PhaseActiveError(
                f"cannot merge from a ledger with open phase "
                f"{other._phase_stack[-1]!r}"
            )
        for name, t in other._time_ns.items():
            self._time_ns[name] += t
        for name, e in other._energy_nj.items():
            self._energy_nj[name] += e
        for name, counter in other._commands.items():
            self._commands[name].update(counter)

    def reset(self) -> None:
        self._time_ns.clear()
        self._energy_nj.clear()
        self._commands.clear()

    # ----- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every phase's accumulators.

        Taken at stage boundaries by the job runtime; no phase may be
        open (an open phase would otherwise resume with its events
        split across two records).
        """
        if self._phase_stack:
            raise PhaseActiveError(
                f"cannot snapshot with open phase {self._phase_stack[-1]!r}"
            )
        return {
            "time_ns": dict(self._time_ns),
            "energy_nj": dict(self._energy_nj),
            "commands": {n: dict(c) for n, c in self._commands.items()},
        }

    def load_state(self, state: Mapping) -> None:
        """Restore a :meth:`state_dict` snapshot (replacing all totals)."""
        self.reset()
        for name, t in state["time_ns"].items():
            self._time_ns[name] = float(t)
        for name, e in state["energy_nj"].items():
            self._energy_nj[name] = float(e)
        for name, commands in state["commands"].items():
            self._commands[name] = Counter(
                {cmd: int(n) for cmd, n in commands.items()}
            )

    def summary(self) -> str:
        """Human-readable multi-line report (used by examples)."""
        lines = []
        order = [self.ROOT_PHASE] + self.phases()
        for name in order:
            totals = self.totals(None if name == self.ROOT_PHASE else name)
            lines.append(
                f"{name:>12}: {totals.time_ns/1e3:12.3f} us "
                f"{totals.energy_nj:12.3f} nJ "
                f"{totals.total_commands:10d} cmds"
            )
        return "\n".join(lines)
