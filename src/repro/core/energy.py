"""Energy / power model for PIM-Assembler commands.

Per-command energies follow the public numbers the paper's comparisons
are built on: the Rambus DRAM power model (cited for cell parameters)
and the Ambit/DRISA papers' methodology, where a bulk in-DRAM operation
costs roughly one row-activation energy per activated row plus the
precharge, and where moving data across the chip pins costs an order of
magnitude more than an internal row cycle.

Nominal constants (documented per value below):

* ``e_activate_row`` = 0.909 nJ — energising one 8-kbit DRAM row
  (DDR3-1600 ACT+PRE energy from the Rambus model, scaled to the
  1024x256 sub-array used here; only ratios matter downstream).
  We scale by the 256-bit sub-array row: 0.028 nJ.
* add-on SA circuits burn a small constant on top of the standard SA
  (50 extra transistors per SA, toggling at most once per cycle).

Power reported for the assembly workload (paper Fig. 9b) is
``energy / execution_time`` plus a background term (refresh + ctrl),
mirroring how the behavioural simulator in the paper reports power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timing import TimingParameters, DEFAULT_TIMING


@dataclass(frozen=True)
class EnergyParameters:
    """Per-command energies, in nanojoules, for one 256-bit sub-array row.

    Attributes:
        e_activate: one row ACTIVATE (charge the row into the SAs).
        e_precharge: one PRECHARGE.
        e_sa_addon: extra toggle energy of the reconfigurable SA add-on
            circuits across a 256-column stripe (inverter pair + AND +
            XOR + latch + MUX; ~50 transistors per column).
        e_dpu_op: one DPU operation (AND-reduce across 256 bits or one
            scalar add) — synthesised 45 nm logic.
        e_row_transfer: moving one 256-bit row between the sub-array and
            the global row buffer (used by MEM read/write, not by bulk
            in-situ ops — this asymmetry is the whole point of PIM).
        e_refresh: one tRFC refresh burst over the refreshed row group
            (a gang of row activate/restore cycles; the retention
            scrubber charges one of these per elapsed tREFI of
            simulated time).
        p_background_w: standby + refresh + controller power for the
            whole device, watts.
        thermal_tau_ns: time constant of the thermal-proxy filter the
            power timeline applies over binned power (a DRAM die's
            thermal mass reacts on the millisecond scale, so a single
            hot 100 us bin should barely move the proxy while a
            sustained burn converges to it).
    """

    e_activate: float = 0.028
    e_precharge: float = 0.010
    e_sa_addon: float = 0.004
    e_dpu_op: float = 0.002
    e_row_transfer: float = 0.190
    e_refresh: float = 0.304
    p_background_w: float = 2.0
    thermal_tau_ns: float = 1_000_000.0

    def __post_init__(self) -> None:
        for name in (
            "e_activate",
            "e_precharge",
            "e_sa_addon",
            "e_dpu_op",
            "e_row_transfer",
            "e_refresh",
            "p_background_w",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.thermal_tau_ns <= 0:
            raise ValueError("thermal_tau_ns must be positive")

    @property
    def e_aap_copy(self) -> float:
        """AAP copy: two activations + one precharge."""
        return 2.0 * self.e_activate + self.e_precharge

    @property
    def e_compute2(self) -> float:
        """Two-row activation compute cycle: 2 cell rows + SA add-on."""
        return 2.0 * self.e_activate + self.e_precharge + self.e_sa_addon

    @property
    def e_tra(self) -> float:
        """Triple-row activation (carry/majority)."""
        return 3.0 * self.e_activate + self.e_precharge

    @property
    def e_sum_cycle(self) -> float:
        """Sum generation through the latch + XOR path, with write-back."""
        return 2.0 * self.e_activate + self.e_precharge + self.e_sa_addon

    @property
    def e_read_row(self) -> float:
        return self.e_activate + self.e_precharge + self.e_row_transfer

    @property
    def e_write_row(self) -> float:
        return self.e_activate + self.e_precharge + self.e_row_transfer


@dataclass(frozen=True)
class EnergyModel:
    """Binds energy constants to the timing model for power reporting."""

    params: EnergyParameters = EnergyParameters()
    timing: TimingParameters = DEFAULT_TIMING

    def power_w(self, energy_nj: float, time_ns: float) -> float:
        """Average power (W) of a phase: dynamic + background.

        ``energy_nj / time_ns`` is conveniently already in watts
        (1 nJ / 1 ns = 1 W).
        """
        if time_ns <= 0:
            raise ValueError("time must be positive")
        return energy_nj / time_ns + self.params.p_background_w


DEFAULT_ENERGY = EnergyParameters()
