"""PIM-Assembler's architectural core: the paper's primary contribution.

Layers, bottom-up:

* :mod:`~repro.core.sense_amplifier` — logic view of the reconfigurable
  SA (Fig. 2), vectorised over a 256-bit stripe.
* :mod:`~repro.core.subarray` / :mod:`~repro.core.mat` /
  :mod:`~repro.core.bank` / :mod:`~repro.core.device` — functional state
  of the memory hierarchy (Fig. 1).
* :mod:`~repro.core.isa` — the three AAP instruction types.
* :mod:`~repro.core.controller` — executes AAP streams, charges the
  :mod:`~repro.core.stats` ledger using :mod:`~repro.core.timing` and
  :mod:`~repro.core.energy`.
* :mod:`~repro.core.platform` — the public facade
  (:class:`~repro.core.platform.PimAssembler`) with ``PIM_XNOR`` /
  ``PIM_Add`` / ``MEM_insert``.
* :mod:`~repro.core.area` — add-on area overhead (~5 % of chip area).
"""

from repro.core.area import AreaModel, AreaParameters, AreaReport
from repro.core.controller import Controller
from repro.core.device import Device
from repro.core.faults import FaultModel, FaultReport
from repro.core.resilience import (
    PolicyLevel,
    ResilienceCounts,
    ResilienceEngine,
    ResilienceLedger,
    ResiliencePolicy,
    ResilienceReport,
    recommended_policy,
    spare_rows_needed,
)
from repro.core.scheduler import ScheduleReport, TraceScheduler, audit_parallelism
from repro.core.trace import CommandTrace, TraceAnalysis, analyse, replay
from repro.core.energy import EnergyModel, EnergyParameters, DEFAULT_ENERGY
from repro.core.isa import (
    AapCompute2,
    AapCompute3,
    AapCopy,
    DpuOp,
    MemRead,
    MemWrite,
    RowAddress,
    SAOp,
    SumCycle,
)
from repro.core.platform import PimAssembler, WordColumns
from repro.core.sense_amplifier import (
    CONTROL_SIGNALS,
    SenseAmplifierArray,
    full_adder_reference,
    reference_compute2,
)
from repro.core.stats import PhaseTotals, StatsLedger
from repro.core.subarray import SubArray
from repro.core.timing import (
    DEFAULT_CYCLES,
    DEFAULT_TIMING,
    OperationCycles,
    TimingParameters,
)

__all__ = [
    "AreaModel",
    "AreaParameters",
    "AreaReport",
    "Controller",
    "Device",
    "FaultModel",
    "FaultReport",
    "PolicyLevel",
    "ResilienceCounts",
    "ResilienceEngine",
    "ResilienceLedger",
    "ResiliencePolicy",
    "ResilienceReport",
    "recommended_policy",
    "spare_rows_needed",
    "ScheduleReport",
    "TraceScheduler",
    "audit_parallelism",
    "CommandTrace",
    "TraceAnalysis",
    "analyse",
    "replay",
    "EnergyModel",
    "EnergyParameters",
    "DEFAULT_ENERGY",
    "AapCompute2",
    "AapCompute3",
    "AapCopy",
    "DpuOp",
    "MemRead",
    "MemWrite",
    "RowAddress",
    "SAOp",
    "SumCycle",
    "PimAssembler",
    "WordColumns",
    "CONTROL_SIGNALS",
    "SenseAmplifierArray",
    "full_adder_reference",
    "reference_compute2",
    "PhaseTotals",
    "StatsLedger",
    "SubArray",
    "DEFAULT_CYCLES",
    "DEFAULT_TIMING",
    "OperationCycles",
    "TimingParameters",
]
