"""The full PIM-Assembler device: banks of MATs of sub-arrays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.bank import Bank
from repro.core.mat import Mat
from repro.core.storage import BitPlaneStore
from repro.core.subarray import SubArray
from repro.core.isa import RowAddress
from repro.dram.geometry import DeviceGeometry, default_geometry


@dataclass
class Device:
    """Top-level memory device with hierarchical, lazy storage.

    All sub-array bits live in one device-wide
    :class:`~repro.core.storage.BitPlaneStore` (packed uint64 words);
    banks/MATs/sub-arrays are navigation handles into it.  The store
    grows slot-by-slot as sub-arrays are first touched, so laziness is
    preserved (a default device would otherwise be ~1 GB packed).
    """

    geometry: DeviceGeometry = field(default_factory=default_geometry)

    def __post_init__(self) -> None:
        self._banks: dict[int, Bank] = {}
        sub = self.geometry.bank.mat.subarray
        self.store = BitPlaneStore(sub.rows, sub.cols)

    # ----- navigation ------------------------------------------------------

    def bank(self, index: int) -> Bank:
        if not 0 <= index < self.geometry.num_banks:
            raise IndexError(
                f"bank index {index} out of range 0..{self.geometry.num_banks - 1}"
            )
        if index not in self._banks:
            self._banks[index] = Bank(
                self.geometry.bank, store=self.store, label=f"bank{index}"
            )
        return self._banks[index]

    def mat_at(self, bank: int, mat: int) -> Mat:
        return self.bank(bank).mat(mat)

    def subarray_at(self, address: RowAddress | tuple[int, int, int]) -> SubArray:
        """Resolve a :class:`RowAddress` (or a subarray key) to state."""
        if isinstance(address, RowAddress):
            bank, mat, sub = address.bank, address.mat, address.subarray
        else:
            bank, mat, sub = address
        return self.bank(bank).mat(mat).subarray(sub)

    def validate_address(self, address: RowAddress) -> RowAddress:
        g = self.geometry
        if address.bank >= g.num_banks:
            raise IndexError(f"bank {address.bank} >= {g.num_banks}")
        if address.mat >= g.bank.num_mats:
            raise IndexError(f"mat {address.mat} >= {g.bank.num_mats}")
        if address.subarray >= g.bank.mat.num_subarrays:
            raise IndexError(
                f"subarray {address.subarray} >= {g.bank.mat.num_subarrays}"
            )
        if address.row >= g.bank.mat.subarray.rows:
            raise IndexError(
                f"row {address.row} >= {g.bank.mat.subarray.rows}"
            )
        return address

    # ----- enumeration -------------------------------------------------------

    def subarray_keys(self, limit: int | None = None) -> Iterator[tuple[int, int, int]]:
        """Yield subarray identities in address order, optionally limited."""
        g = self.geometry
        count = 0
        for b in range(g.num_banks):
            for m in range(g.bank.num_mats):
                for s in range(g.bank.mat.num_subarrays):
                    if limit is not None and count >= limit:
                        return
                    yield (b, m, s)
                    count += 1

    @property
    def num_subarrays(self) -> int:
        return self.geometry.num_subarrays

    @property
    def row_bits(self) -> int:
        return self.geometry.row_bits
