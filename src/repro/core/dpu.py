"""MAT-level Digital Processing Unit (DPU).

The paper places a "low-overhead Digital Processing Unit ... in
MAT-level to perform simple non-bulk bit-wise operations".  Two uses
appear in the algorithm mapping:

* after a ``PIM_XNOR`` row comparison, "a built-in AND unit in DPU
  readily takes all the results to determine the next memory operation"
  — i.e. an AND-reduction across the 256 XNOR outputs decides whether
  the k-mer in the temp row equals the stored k-mer row;
* small scalar bookkeeping (frequency increments that don't warrant a
  bulk in-memory add, loop counters) during graph traversal.

The DPU is combinational + a small adder; its latency is charged in DPU
clock ticks by the controller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _as_bits(bits: np.ndarray) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError("DPU operates on one SA stripe (1-D bit vector)")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("DPU inputs must be 0/1 bits")
    return arr


@dataclass(frozen=True)
class Dpu:
    """Combinational reduce/compare unit attached to one MAT."""

    width: int = 256

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")

    def _check(self, bits: np.ndarray) -> np.ndarray:
        arr = _as_bits(bits)
        if arr.size > self.width:
            raise ValueError(
                f"input wider ({arr.size}) than the DPU stripe ({self.width})"
            )
        return arr

    def and_reduce(self, bits: np.ndarray) -> int:
        """1 iff every bit is 1 — the k-mer match test after PIM_XNOR."""
        arr = self._check(bits)
        return int(arr.all())

    def or_reduce(self, bits: np.ndarray) -> int:
        """1 iff any bit is 1."""
        arr = self._check(bits)
        return int(arr.any())

    def popcount(self, bits: np.ndarray) -> int:
        """Number of set bits (used for degree spot-checks in traversal)."""
        arr = self._check(bits)
        return int(arr.sum())

    def masked_and_reduce(self, bits: np.ndarray, mask: np.ndarray) -> int:
        """AND-reduce restricted to the positions where ``mask`` is 1.

        Needed because a k-mer occupies only ``2k`` of the 256 columns;
        the comparison must ignore the padding columns.
        """
        arr = self._check(bits)
        m = self._check(mask)
        if m.size != arr.size:
            raise ValueError("mask must match input width")
        relevant = arr[m == 1]
        return int(relevant.all()) if relevant.size else 1

    def scalar_add(self, a: int, b: int, bits: int = 32) -> int:
        """Small two's-complement adder for bookkeeping values."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        mask = (1 << bits) - 1
        return (a + b) & mask
