"""Bulk bit-plane execution engine.

The paper's throughput comes from *bulk* bit-parallelism: one AAP
command computes a full 256-bit row, and every (bank, MAT) pair runs
the same command on its own sub-array simultaneously.  The scalar
controller models each command as an individual Python call, so the
simulator's wall-clock scales with op count rather than with the
modeled DRAM cycles.  This module restores the proportionality:

* sub-array bits live packed — 64 columns per ``np.uint64`` word — in
  the device-wide :class:`~repro.core.storage.BitPlaneStore`, so a
  compare scan, Hamming profile or popcount over all candidate rows of
  a query is **one** vectorised expression on words (XNOR is
  ``~(a ^ b)``, popcount is ``np.bitwise_count``), and a whole-bank
  slab (every sub-array, one row range) is a single basic-indexing
  view of the store tensor;
* commands are charged through the
  :class:`~repro.core.scheduler.BatchedAapScheduler`, which coalesces
  independent per-sub-array streams into gang issues and fuses the
  XNOR→AND→popcount and carry+sum sequences;
* fault and verify sampling happen batch-wise under the stream
  equivalence rule of :mod:`repro.core.faults` — a fixed seed produces
  the exact per-op sampling sequence of the scalar path.

Equivalence contract
====================

For a fixed seed the bulk engine is bit-identical to the scalar
controller in everything the workloads observe: functional results,
stored row contents (including the temp/x1/x2/x3 compute-row end
state of a scan), resilience event counts, and per-mnemonic ledger
*command counts*.  Two things intentionally differ:

* **modeled time** — the batched scheduler charges the gang makespan
  instead of the serial sum, which is the point of the engine;
* **transient host-path state** — the GRB's last-loaded contents are
  not replayed (every charged ``MEM_RD``/``MEM_WR`` is still counted).

Operations whose scalar path samples the fault RNG *interleaved with
retries* (a detect-retry policy with non-zero fault rates) fall back
to the scalar controller per query, keeping the RNG stream exact; the
batch sampling fast path covers fault-free runs and plain injection
without a verifying engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.isa import RowAddress
from repro.core.scheduler import BatchedAapScheduler, BatchReport
from repro.core.storage import (
    DEFAULT_CHUNK_BYTES,
    compare_many_packed,
    hamming_many_packed,
    pack_rows,
    unpack_rows,
    width_mask,
)

__all__ = [
    "BulkEngine",
    "compare_many",
    "hamming_many",
    "match_first",
    "planes_to_words",
    "popcount_rows",
    "words_to_planes",
    "xnor_block",
]


# --------------------------------------------------------------------------
# Pure bit-plane kernels (no device, no charging)
# --------------------------------------------------------------------------


def xnor_block(query: np.ndarray, block: np.ndarray) -> np.ndarray:
    """XNOR of one query row against every row of a block: ``(n, w)``."""
    q = np.asarray(query, dtype=np.uint8)
    b = np.asarray(block, dtype=np.uint8)
    return (1 - (b ^ q[None, :])).astype(np.uint8)


def match_first(
    query: np.ndarray, block: np.ndarray, width: int | None = None
) -> int | None:
    """First row of ``block`` equal to ``query`` on the valid columns."""
    w = query.shape[-1] if width is None else width
    matches = (block[:, :w] == query[:w]).all(axis=1)
    return int(np.argmax(matches)) if matches.any() else None


def compare_many(
    queries: np.ndarray,
    block: np.ndarray,
    width: int | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Boolean match matrix ``(Q, n)`` of many queries against a block.

    The ``(Q, n, w)`` broadcast is evaluated in query chunks of at most
    ``chunk_bytes`` so paper-scale batches never materialise a multi-GB
    intermediate; results are identical to the one-shot expression.
    """
    q = np.asarray(queries, dtype=np.uint8)
    b = np.asarray(block, dtype=np.uint8)
    w = q.shape[1] if width is None else width
    bw = b[:, :w]
    out = np.empty((q.shape[0], b.shape[0]), dtype=bool)
    step = max(1, chunk_bytes // max(1, b.shape[0] * max(w, 1)))
    for lo in range(0, q.shape[0], step):
        qc = q[lo : lo + step, :w]
        out[lo : lo + step] = (bw[None, :, :] == qc[:, None, :]).all(axis=2)
    return out


def hamming_many(
    queries: np.ndarray,
    block: np.ndarray,
    width: int | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Hamming distances ``(Q, n)`` of many queries against a block,
    evaluated in query chunks (see :func:`compare_many`)."""
    q = np.asarray(queries, dtype=np.uint8)
    b = np.asarray(block, dtype=np.uint8)
    w = q.shape[1] if width is None else width
    bw = b[:, :w]
    out = np.empty((q.shape[0], b.shape[0]), dtype=np.int64)
    step = max(1, chunk_bytes // max(1, b.shape[0] * max(w, 1)))
    for lo in range(0, q.shape[0], step):
        qc = q[lo : lo + step, :w]
        out[lo : lo + step] = (bw[None, :, :] != qc[:, None, :]).sum(axis=2)
    return out


def popcount_rows(block: np.ndarray) -> np.ndarray:
    """Per-row popcount of a bit-plane block."""
    return np.asarray(block, dtype=np.uint8).sum(axis=1).astype(np.int64)


def planes_to_words(planes: np.ndarray) -> np.ndarray:
    """LSB-first bit planes ``(bits, w)`` -> per-column int64 words."""
    block = np.asarray(planes, dtype=np.int64)
    weights = np.int64(1) << np.arange(block.shape[0], dtype=np.int64)
    return (block * weights[:, None]).sum(axis=0)


def words_to_planes(words: np.ndarray, bits: int) -> np.ndarray:
    """Per-column integers -> LSB-first bit planes ``(bits, w)``."""
    vals = np.asarray(words, dtype=np.int64)
    shifts = np.arange(bits, dtype=np.int64)
    return ((vals[None, :] >> shifts[:, None]) & 1).astype(np.uint8)


# --------------------------------------------------------------------------
# The charged bulk engine
# --------------------------------------------------------------------------


@dataclass
class BulkEngine:
    """Vectorised execution of the controller's hot paths.

    Wraps a platform and mirrors the scalar controller's charging,
    fault and verify semantics while computing over packed word blocks
    of the device store.  The caller-visible results and side effects
    match the scalar path per the module-level equivalence contract.
    """

    pim: "object"  # PimAssembler (typed loosely: platform imports core)
    last_report: BatchReport | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        ctrl = self.pim.controller
        self.scheduler = BatchedAapScheduler(
            ctrl.ledger,
            timing=ctrl.timing,
            energy=ctrl.energy,
            log=getattr(ctrl, "charge_log", None),
        )

    # ----- gating ---------------------------------------------------------

    def sampling_free(self, *mechanisms: str) -> bool:
        """True when none of the mechanisms would draw from the RNG.

        The scalar path skips sampling entirely for zero-rate
        mechanisms, so a batch may only take the vectorised path when
        every mechanism it covers is silent (faults equivalence rule).
        """
        faults = self.pim.controller.faults
        if faults is None or not faults.enabled:
            return True
        return all(faults.rate_for(m) <= 0.0 for m in mechanisms)

    def _verifying(self):
        return self.pim.controller._verifying()

    def charge_verify(self, count: int) -> None:
        """Charge ``count`` parity checks exactly as the scalar path."""
        if count > 0:
            ctrl = self.pim.controller
            ctrl._charge_verify(ctrl.resilience, count=count)

    def flush(self) -> BatchReport:
        """Flush the pending command batch; remembers the report."""
        self.last_report = self.scheduler.flush()
        return self.last_report

    # ----- compare scan -----------------------------------------------------

    def compare_scan_batch(
        self,
        temp: RowAddress,
        queries: np.ndarray,
        start_row: int,
        n_rows: int,
        valid_bits: int | None = None,
    ) -> np.ndarray:
        """Many queries scanned against one fixed row block.

        Equivalent to, for each query ``q`` in order::

            controller.write_row(temp, q)
            controller.compare_scan(temp, start_row, n_rows, valid_bits)

        but evaluated as one packed-word expression with one
        gang-charged batch.  Returns an int64 array of hit offsets (-1
        for a miss).  Under a detect policy with live fault rates the
        scalar per-query path is replayed instead (retry draws
        interleave with scan draws, which no batch draw can reproduce).
        """
        ctrl = self.pim.controller
        q = np.asarray(queries, dtype=np.uint8)
        if q.ndim != 2:
            raise ValueError("queries must be a (Q, row_bits) matrix")
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        faults = ctrl.faults
        sampling = (
            faults is not None
            and faults.enabled
            and faults.compute2_rate > 0.0
            and n_rows > 0
        )
        eng = self._verifying()
        if sampling and eng is not None:
            hits = np.empty(q.shape[0], dtype=np.int64)
            for i in range(q.shape[0]):
                ctrl.write_row(temp, q[i])
                hit = ctrl.compare_scan(temp, start_row, n_rows, valid_bits)
                hits[i] = -1 if hit is None else hit
            return hits

        sub = self.pim.device.subarray_at(temp)
        store, slot = sub.store, sub.slot
        key = temp.subarray_key
        width = q.shape[1] if valid_bits is None else valid_bits
        count = q.shape[0]
        q_words = pack_rows(q)
        self.scheduler.charge("MEM_WR", key, count)  # temp inserts
        self.scheduler.charge("AAP1", key, count)  # x1 staging
        if n_rows == 0:
            if count:
                self._finish_scan(sub, temp.row, q_words[-1], None)
            self.flush()
            return np.full(count, -1, dtype=np.int64)

        block = store.block_words(slot, start_row, start_row + n_rows)
        mask = width_mask(sub.cols, width)
        matches = compare_many_packed(q_words, block, mask)
        if sampling:
            # one (Q, n) draw == Q consecutive per-scan draws (row-major
            # stream equivalence); only taken when no engine interleaves
            # retry draws between scans
            rate = faults.compute2_rate
            hamming = hamming_many_packed(q_words, block, mask)
            p_err = np.where(
                matches,
                1.0 - (1.0 - rate) ** width,
                rate ** np.maximum(hamming, 1),
            )
            matches = matches ^ faults.decide((count, n_rows), p_err)

        any_hit = matches.any(axis=1)
        first = np.argmax(matches, axis=1)
        hits = np.where(any_hit, first, -1).astype(np.int64)
        scanned = np.where(any_hit, first + 1, n_rows)
        total_scanned = int(scanned.sum())
        self.scheduler.fused_compare(key, total_scanned)
        if eng is not None:
            self.charge_verify(total_scanned)
        if count:
            last_block_row = start_row + int(scanned[-1]) - 1
            self._finish_scan(
                sub,
                temp.row,
                q_words[-1],
                store.row_words(slot, last_block_row).copy(),
            )
        self.flush()
        return hits

    def _finish_scan(self, sub, temp_row, query_words, last_row_words) -> None:
        """Leave the compute rows as the sequential scan would.

        temp and x1 hold the last query; when at least one candidate
        was scanned, x2 holds the last scanned row and x3 its XNOR
        against the query (the trailing uncharged rowclone+compute2 of
        the scalar ``compare_scan``).  All operands are packed words;
        the XNOR's complement is tail-masked per the pack boundary
        rule.
        """
        store, slot = sub.store, sub.slot
        store.set_row_words(slot, temp_row, query_words)
        x1 = sub.compute_row(1)
        store.set_row_words(slot, x1, query_words)
        if last_row_words is not None:
            x2 = sub.compute_row(2)
            x3 = sub.compute_row(3)
            store.set_row_words(slot, x2, last_row_words)
            xnor = ~(query_words ^ last_row_words) & store.col_mask_words
            store.set_row_words(slot, x3, xnor)

    # ----- bulk addition -----------------------------------------------------

    def ripple_add_block(
        self,
        a_rows: Sequence[RowAddress],
        b_rows: Sequence[RowAddress],
        sum_rows: Sequence[RowAddress],
        carry_row: RowAddress,
    ) -> None:
        """Drop-in bulk replacement for ``controller.ripple_add``.

        The 2-cycles-per-bit carry+sum pairs are evaluated as a
        carry-propagate sweep directly on the packed plane words
        (``sum = a ^ b ^ c``, ``c' = (a & b) | (c & (a ^ b))`` per
        plane — no unpacking) and charged as one fused SUM/TRA batch.
        Falls back to the scalar controller when sum/TRA fault rates
        are live (per-op sampling order).
        """
        ctrl = self.pim.controller
        if not self.sampling_free("sum", "tra"):
            ctrl.ripple_add(a_rows, b_rows, sum_rows, carry_row)
            return
        if not (len(a_rows) == len(b_rows) == len(sum_rows)):
            raise ValueError("operand bit-plane lists must have equal length")
        if not a_rows:
            raise ValueError("ripple_add needs at least one bit plane")
        key = a_rows[0].subarray_key
        for addr in (*a_rows, *b_rows, *sum_rows, carry_row):
            if addr.subarray_key != key:
                raise ValueError("ripple_add operands must share a sub-array")
        sub = self.pim.device.subarray_at(carry_row)
        store, slot = sub.store, sub.slot
        m = len(a_rows)
        a_words = store.tensor[slot, [r.row for r in a_rows]]
        b_words = store.tensor[slot, [r.row for r in b_rows]]
        carry = np.zeros(store.words, dtype=np.uint64)
        for i, s_i in enumerate(sum_rows):
            x = a_words[i] ^ b_words[i]
            store.set_row_words(slot, s_i.row, x ^ carry)
            carry = (a_words[i] & b_words[i]) | (carry & x)
        store.set_row_words(slot, carry_row.row, carry)
        # the MSB TRA leaves its carry latched (SA state is unpacked)
        sub.sa.load_latch(unpack_rows(carry, sub.cols))
        # scalar equivalence: ripple_add charges one AAP for the
        # carry-row zeroing (RowClone off the constant row)
        self.scheduler.charge("AAP1", key, 1)
        self.scheduler.fused_add(key, m)
        if self._verifying() is not None:
            self.charge_verify(2 * m)
        self.flush()
