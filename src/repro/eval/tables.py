"""Text rendering of every experiment's rows/series.

Benchmarks call these to print the same shapes the paper's figures
show; EXPERIMENTS.md is generated from the same functions so the two
never drift apart.
"""

from __future__ import annotations

from repro.eval.execution import ExecutionResult
from repro.eval.memory_wall import MemoryWallStudy
from repro.eval.throughput import FIG3B_PLATFORMS, ThroughputSweep
from repro.eval.tradeoffs import TradeoffSweep


def format_throughput(sweep: ThroughputSweep) -> str:
    """Fig. 3b as a table: platforms x (op, vector length)."""
    ops = ("xnor", "add")
    lengths = sorted({p.vector_bits for p in sweep.points})
    header = f"{'platform':>9}"
    for op in ops:
        for bits in lengths:
            header += f" {op}@2^{bits.bit_length() - 1:>2}"
    lines = [header + "   (Tbit/s)"]
    for name in FIG3B_PLATFORMS:
        row = f"{name:>9}"
        for op in ops:
            for bits in lengths:
                points = [
                    p
                    for p in sweep.series(name, op)
                    if p.vector_bits == bits
                ]
                row += f" {points[0].tbits_per_second:8.3f}" if points else " " * 9
        lines.append(row)
    return "\n".join(lines)


def format_execution(results: list[ExecutionResult]) -> str:
    """Fig. 9a-style breakdown for one k."""
    if not results:
        return "(no results)"
    k = results[0].k
    lines = [
        f"k={k}  {'platform':>8} {'hashmap':>9} {'debruijn':>9} "
        f"{'traverse':>9} {'total':>9} {'power':>7}"
    ]
    for r in results:
        lines.append(
            f"      {r.platform:>8} "
            f"{r.stage('hashmap').time_s:9.1f} "
            f"{r.stage('debruijn').time_s:9.1f} "
            f"{r.stage('traverse').time_s:9.1f} "
            f"{r.total_time_s:9.1f} "
            f"{r.average_power_w:6.1f}W"
        )
    return "\n".join(lines)


def format_speedups(results: list[ExecutionResult], baseline: str = "P-A") -> str:
    """Execution-time ratios vs a baseline platform."""
    base = next((r for r in results if r.platform == baseline), None)
    if base is None:
        raise KeyError(baseline)
    parts = []
    for r in results:
        if r.platform == baseline:
            continue
        parts.append(f"{r.platform}/{baseline}={r.total_time_s / base.total_time_s:.2f}x")
    return "  ".join(parts)


def format_tradeoff(sweep: TradeoffSweep) -> str:
    """Fig. 10 as (Pd, delay, power) series per k."""
    lines = [f"{'k':>4} {'Pd':>4} {'delay(s)':>10} {'power(W)':>10}"]
    ks = sorted({p.k for p in sweep.points})
    for k in ks:
        for point in sweep.series(k):
            lines.append(
                f"{point.k:>4} {point.pd:>4} "
                f"{point.delay_s:>10.2f} {point.power_w:>10.1f}"
            )
        lines.append(f"     optimum Pd (EDP) = {sweep.optimum_pd(k)}")
    return "\n".join(lines)


def format_memory_wall(study: MemoryWallStudy) -> str:
    """Fig. 11a/b as MBR/RUR percentages per platform and k."""
    ks = sorted({p.k for p in study.points})
    lines = [
        f"{'platform':>9}"
        + "".join(f"  MBR@k={k:>2}" for k in ks)
        + "".join(f"  RUR@k={k:>2}" for k in ks)
    ]
    for name in study.platforms():
        row = f"{name:>9}"
        for k in ks:
            row += f" {study.point(name, k).mbr_percent:8.1f}%"
        for k in ks:
            row += f" {study.point(name, k).rur_percent:8.1f}%"
        lines.append(row)
    return "\n".join(lines)
