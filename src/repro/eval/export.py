"""CSV export of every experiment artefact.

Plot-ready data files for external tooling: one writer per paper
artefact, all sharing a tiny CSV helper (stdlib ``csv``; no plotting
dependencies).  ``export_all`` drops the full set into a directory —
what a downstream user regenerating the paper's figures consumes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.eval.execution import ExecutionResult
from repro.eval.memory_wall import MemoryWallStudy
from repro.eval.reliability import ReliabilityTable
from repro.eval.throughput import ThroughputSweep
from repro.eval.tradeoffs import TradeoffSweep


def _write(path: Path, header: Sequence[str], rows: Sequence[Sequence]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="ascii") as stream:
        writer = csv.writer(stream)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_throughput(sweep: ThroughputSweep, path: "str | Path") -> Path:
    """Fig. 3b: platform, operation, vector_bits, bits_per_second."""
    rows = [
        (p.platform, p.operation, p.vector_bits, f"{p.bits_per_second:.6g}")
        for p in sweep.points
    ]
    return _write(
        Path(path),
        ("platform", "operation", "vector_bits", "bits_per_second"),
        rows,
    )


def export_reliability(table: ReliabilityTable, path: "str | Path") -> Path:
    """Table I: variation level vs error percentages (+ paper values)."""
    rows = [
        (
            row.variation_percent,
            f"{row.tra_error_percent:.4f}",
            f"{row.two_row_error_percent:.4f}",
            row.paper_tra,
            row.paper_two_row,
        )
        for row in table.rows
    ]
    return _write(
        Path(path),
        (
            "variation_percent",
            "tra_error_percent",
            "two_row_error_percent",
            "paper_tra",
            "paper_two_row",
        ),
        rows,
    )


def export_execution(
    results: Sequence[ExecutionResult], path: "str | Path"
) -> Path:
    """Fig. 9a/9b: per-platform per-stage times and power."""
    rows = []
    for result in results:
        for stage in result.stages:
            rows.append(
                (
                    result.platform,
                    result.k,
                    stage.name,
                    f"{stage.time_s:.6g}",
                    f"{stage.transfer_s:.6g}",
                    f"{stage.power_w:.6g}",
                )
            )
    return _write(
        Path(path),
        ("platform", "k", "stage", "time_s", "transfer_s", "power_w"),
        rows,
    )


def export_tradeoff(sweep: TradeoffSweep, path: "str | Path") -> Path:
    """Fig. 10: k, Pd, delay, power."""
    rows = [
        (p.k, p.pd, f"{p.delay_s:.6g}", f"{p.power_w:.6g}")
        for p in sweep.points
    ]
    return _write(Path(path), ("k", "pd", "delay_s", "power_w"), rows)


def export_memory_wall(study: MemoryWallStudy, path: "str | Path") -> Path:
    """Fig. 11: platform, k, MBR, RUR."""
    rows = [
        (p.platform, p.k, f"{p.mbr:.6g}", f"{p.rur:.6g}")
        for p in study.points
    ]
    return _write(Path(path), ("platform", "k", "mbr", "rur"), rows)


def export_all(directory: "str | Path") -> list[Path]:
    """Regenerate every artefact and write the full CSV set."""
    from repro.eval.execution import run_all
    from repro.eval.memory_wall import run_memory_wall_study
    from repro.eval.reliability import run_reliability_table
    from repro.eval.throughput import run_throughput_sweep
    from repro.eval.tradeoffs import run_tradeoff_sweep
    from repro.eval.workloads import chr14_workload
    from repro.platforms import assembly_platforms

    directory = Path(directory)
    written = [
        export_throughput(run_throughput_sweep(), directory / "fig3b_throughput.csv"),
        export_reliability(
            run_reliability_table(), directory / "table1_variation.csv"
        ),
        export_tradeoff(run_tradeoff_sweep(), directory / "fig10_tradeoff.csv"),
        export_memory_wall(
            run_memory_wall_study(), directory / "fig11_memory_wall.csv"
        ),
    ]
    platforms = assembly_platforms()
    execution = []
    for k in (16, 22, 26, 32):
        execution.extend(run_all(platforms, chr14_workload(k)))
    written.append(
        export_execution(execution, directory / "fig9_execution.csv")
    )
    return written
