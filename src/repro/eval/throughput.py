"""Fig. 3b — raw throughput of bulk XNOR2 and addition.

Sweeps the micro-benchmark vector lengths over every platform and
reports the same bar groups the paper plots, plus the headline ratios
quoted in the abstract (P-A vs CPU 8.4x; vs Ambit 2.3x, D1 1.9x,
D3 3.7x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.workloads import MicrobenchWorkload
from repro.platforms.base import Platform, ThroughputPoint
from repro.platforms.registry import microbenchmark_platforms

#: Plot order of the paper's Fig. 3b.
FIG3B_PLATFORMS: tuple[str, ...] = ("CPU", "GPU", "HMC", "Ambit", "D1", "D3", "P-A")


@dataclass(frozen=True)
class ThroughputSweep:
    """All Fig. 3b data points."""

    points: tuple[ThroughputPoint, ...]

    def series(self, platform: str, operation: str) -> list[ThroughputPoint]:
        return [
            p
            for p in self.points
            if p.platform == platform and p.operation == operation
        ]

    def average_bps(self, platform: str, operation: str) -> float:
        series = self.series(platform, operation)
        if not series:
            raise KeyError(f"no data for {platform}/{operation}")
        return sum(p.bits_per_second for p in series) / len(series)

    def ratio(self, operation: str, numerator: str, denominator: str) -> float:
        """Average throughput ratio between two platforms."""
        return self.average_bps(numerator, operation) / self.average_bps(
            denominator, operation
        )


def run_throughput_sweep(
    platforms: list[Platform] | None = None,
    workload: MicrobenchWorkload | None = None,
) -> ThroughputSweep:
    """Evaluate every platform on every vector length and both ops."""
    platforms = platforms if platforms is not None else microbenchmark_platforms()
    workload = workload or MicrobenchWorkload()
    points = []
    for platform in platforms:
        for bits in workload.vector_bits:
            points.append(platform.throughput_point("xnor", bits))
            points.append(
                platform.throughput_point("add", bits, workload.word_bits)
            )
    return ThroughputSweep(points=tuple(points))


def headline_ratios(sweep: ThroughputSweep | None = None) -> dict[str, float]:
    """The abstract's throughput claims, as computed by this model."""
    sweep = sweep or run_throughput_sweep()
    pim_ratios = {
        name: sweep.ratio("xnor", "P-A", name) for name in ("Ambit", "D1", "D3")
    }
    return {
        "xnor_vs_cpu": sweep.ratio("xnor", "P-A", "CPU"),
        "xnor_vs_ambit": pim_ratios["Ambit"],
        "xnor_vs_d1": pim_ratios["D1"],
        "xnor_vs_d3": pim_ratios["D3"],
        "xnor_vs_pim_avg": sum(pim_ratios.values()) / len(pim_ratios),
    }
