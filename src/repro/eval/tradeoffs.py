"""Fig. 10 — power/delay trade-off vs parallelism degree (Pd).

Sweeps Pd over {1, 2, 4, 8} for k = 16 and k = 32: the base delay comes
from the same chr14 execution model as Fig. 9 evaluated at Pd = 1, and
the Pd scaling follows :class:`repro.mapping.parallelism.ParallelismModel`
(delay shrinks sub-linearly, power grows linearly; the energy-delay
optimum sits at Pd ~= 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.eval.execution import ExecutionModel, MappingConfig
from repro.eval.workloads import chr14_workload
from repro.mapping.parallelism import PAPER_PD_VALUES, ParallelismModel
from repro.platforms.registry import pim_assembler


@dataclass(frozen=True)
class TradeoffPoint:
    """One (Pd, k) point of Fig. 10."""

    k: int
    pd: int
    delay_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.delay_s * self.power_w


@dataclass(frozen=True)
class TradeoffSweep:
    points: tuple[TradeoffPoint, ...]
    model: ParallelismModel

    def series(self, k: int) -> list[TradeoffPoint]:
        return sorted(
            (p for p in self.points if p.k == k), key=lambda p: p.pd
        )

    def optimum_pd(self, k: int) -> int:
        """Pd minimising the energy-delay product for one k."""
        series = self.series(k)
        if not series:
            raise KeyError(k)
        return min(series, key=lambda p: p.power_w * p.delay_s**2).pd


@dataclass
class TradeoffStudy:
    """Runs the Fig. 10 sweep."""

    k_values: tuple[int, ...] = (16, 32)
    pd_values: tuple[int, ...] = PAPER_PD_VALUES
    parallelism: ParallelismModel = field(default_factory=ParallelismModel)
    mapping: MappingConfig = field(default_factory=MappingConfig)

    def run(self) -> TradeoffSweep:
        platform = pim_assembler()
        points = []
        for k in self.k_values:
            base_mapping = replace(self.mapping, parallelism_degree=1)
            base = ExecutionModel(chr14_workload(k), base_mapping).run(platform)
            for pd in self.pd_values:
                points.append(
                    TradeoffPoint(
                        k=k,
                        pd=pd,
                        delay_s=self.parallelism.delay(base.total_time_s, pd),
                        power_w=self.parallelism.power(pd),
                    )
                )
        return TradeoffSweep(points=tuple(points), model=self.parallelism)


def run_tradeoff_sweep(**kwargs) -> TradeoffSweep:
    return TradeoffStudy(**kwargs).run()
