"""Assembly execution-time / power model (paper Fig. 9, Fig. 11 inputs).

Combines the per-platform primitive costs (:mod:`repro.platforms`) with
the chr14 operation counts (:mod:`repro.eval.workloads`) and the
Section III mapping (occupancy, lanes, partitioning) into per-stage
times, data-movement shares and power.

Model structure for the in-DRAM platforms (P-A, Ambit, D1, D3):

* **hashmap** — every one of the N_k queries is written to its
  partition's temp row and compared by repeated parallel PIM_XNOR
  against the occupied k-mer rows of that sub-array (Fig. 6/7 scan).
  Per-lane cost: ``insert + occupancy x scan_overhead x compare +
  p_dup x increment``.  Lanes = concurrently activated sub-array
  stripes (activation width x Pd x chips).
* **debruijn** — per distinct k-mer: derive the two nodes, membership-
  check them against the node list (2 compare-class ops) and MEM_insert
  the node/edge records (3 insert-class ops).
* **traverse** — bulk degree computation (3:2 carry-save compressions
  over the adjacency mapping, 2 x E compressions) plus the Euler walk,
  which is sequential per component (``walk_parallelism`` concurrent
  components).

Data movement (for the Fig. 11 memory-wall study) is the read-parsing
and inter-sub-array routing traffic through the MAT GRBs; platforms
differ in how much of it their mapping overlaps with compute
(``transfer_overlap`` — the correlated partitioning is precisely
PIM-Assembler's mechanism for this, so its overlap is highest).

The von-Neumann platforms use the calibrated per-query / per-edge costs
of :class:`repro.platforms.base.BandwidthPlatform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.workloads import AssemblyWorkload
from repro.platforms.base import BandwidthPlatform, InDramPlatform, Platform

#: Stage names in pipeline order (Fig. 9 legend).
STAGES: tuple[str, ...] = ("hashmap", "debruijn", "traverse")


@dataclass(frozen=True)
class MappingConfig:
    """Deployment of the chr14 job onto PIM chips (Section III/IV).

    Attributes:
        chips: M — the interval count of the interval-block partition;
            sized so the ~9.2 GB job fits (1 GB per chip at the default
            geometry).
        parallelism_degree: Pd (Fig. 10; optimum ~2).
        subarrays_per_chip: hash-table sub-arrays available per chip.
        io_bandwidth_gbps: host/chip link bandwidth per chip.
        scan_overhead: CAL — partition imbalance + occupancy growth
            factor on the average scan length (the busiest sub-array
            gates a wave of queries).
        walk_parallelism: concurrently traversed graph components.
        grb_transfer_ns: one inter-sub-array row move through a GRB.
    """

    chips: int = 10
    parallelism_degree: int = 2
    subarrays_per_chip: int = 32768
    io_bandwidth_gbps: float = 10.0
    scan_overhead: float = 2.4
    walk_parallelism: int = 8
    grb_transfer_ns: float = 100.0

    def __post_init__(self) -> None:
        if min(self.chips, self.parallelism_degree, self.subarrays_per_chip) <= 0:
            raise ValueError("mapping sizes must be positive")
        if self.io_bandwidth_gbps <= 0 or self.grb_transfer_ns <= 0:
            raise ValueError("bandwidth parameters must be positive")
        if self.scan_overhead <= 0 or self.walk_parallelism <= 0:
            raise ValueError("overhead parameters must be positive")


@dataclass(frozen=True)
class StageResult:
    """One stage of one platform's run."""

    name: str
    time_s: float
    transfer_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.transfer_s < 0:
            raise ValueError("times must be non-negative")

    @property
    def energy_j(self) -> float:
        return self.power_w * self.time_s


@dataclass(frozen=True)
class ExecutionResult:
    """A platform's full chr14 run at one k."""

    platform: str
    k: int
    stages: tuple[StageResult, ...]
    active_fraction: float

    def stage(self, name: str) -> StageResult:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    @property
    def total_time_s(self) -> float:
        return sum(s.time_s for s in self.stages)

    @property
    def total_transfer_s(self) -> float:
        return sum(s.transfer_s for s in self.stages)

    @property
    def total_energy_j(self) -> float:
        return sum(s.energy_j for s in self.stages)

    @property
    def average_power_w(self) -> float:
        total = self.total_time_s
        return self.total_energy_j / total if total else 0.0

    @property
    def memory_bottleneck_ratio(self) -> float:
        """MBR (Fig. 11a): data-transfer share of the run time."""
        total = self.total_time_s
        return self.total_transfer_s / total if total else 0.0

    @property
    def resource_utilisation_ratio(self) -> float:
        """RUR (Fig. 11b): compute-busy share x active-resource share."""
        return (1.0 - self.memory_bottleneck_ratio) * self.active_fraction


#: CAL — fraction of compute resources active during the assembly run
#: (sub-array activity for PIM platforms, SM occupancy for the GPU);
#: drives the RUR levels of Fig. 11b.
ACTIVE_FRACTION: dict[str, float] = {
    "P-A": 0.74,
    "Ambit": 0.72,
    "D1": 0.70,
    "D3": 0.72,
    "GPU": 0.72,
    "CPU": 0.55,
    "HMC": 0.66,
}

#: CAL — in-DRAM data-movement behaviour during assembly.
#: ``moves``: row moves per query relative to P-A's one (platforms
#: without the correlated partitioning broadcast queries / shuttle
#: operands between sub-arrays); ``overlap``: share of that routing the
#: mapping hides under compute (the Fig. 6 correlated partitioning is
#: P-A's mechanism, hence its high overlap).  Tuned against Fig. 11a.
IN_DRAM_TRANSFER_CAL: dict[str, dict[str, float]] = {
    "P-A": {"moves": 1.0, "overlap": 0.60},
    "Ambit": {"moves": 5.0, "overlap": 0.35},
    "D1": {"moves": 5.5, "overlap": 0.35},
    "D3": {"moves": 4.5, "overlap": 0.35},
}

#: CAL — von-Neumann graph-stage costs as multiples of the hash-query
#: cost: graph building is atomics/sort-heavy, traversal pointer-chasing
#: (tuned against the Fig. 9a GPU stage shares: hashmap >60%).
VN_ASSEMBLY_CAL: dict[str, dict[str, float]] = {
    "GPU": {"graph_factor": 4.3, "walk_factor": 2.2},
    "CPU": {"graph_factor": 3.0, "walk_factor": 1.8},
    "HMC": {"graph_factor": 3.5, "walk_factor": 2.0},
}


@dataclass
class ExecutionModel:
    """Evaluates one workload on any platform.

    ``transfer_cal`` overrides the per-platform data-movement
    calibration (:data:`IN_DRAM_TRANSFER_CAL`) — the hook the mapping
    ablation uses to run P-A *without* the correlated partitioning.
    """

    workload: AssemblyWorkload
    mapping: MappingConfig = field(default_factory=MappingConfig)
    transfer_cal: dict | None = None

    # ----- public API -----------------------------------------------------------

    def run(self, platform: Platform) -> ExecutionResult:
        if isinstance(platform, InDramPlatform):
            return self._run_in_dram(platform)
        if isinstance(platform, BandwidthPlatform):
            return self._run_bandwidth(platform)
        raise TypeError(f"unsupported platform type: {type(platform).__name__}")

    def lookup_seconds(self, platform: Platform, lookups: float) -> float:
        """Price a compare-class lookup workload on any platform.

        A *lookup* is one k-mer membership test: a hash-table scan on
        the in-DRAM platforms (occupancy x scan-overhead PIM_XNOR
        cycles, over the deployment's lanes), one hash query on the
        von-Neumann platforms.  Used by extension studies (e.g. the
        PIM-offloaded spectral correction bench) so they price work
        with exactly the Fig. 9 primitives.
        """
        if lookups < 0:
            raise ValueError("lookups must be non-negative")
        if isinstance(platform, InDramPlatform):
            lanes = self._lanes(platform)
            scan = self._occupancy_rows() * self.mapping.scan_overhead
            return lookups * scan * platform.compare_ns() * 1e-9 / lanes
        if isinstance(platform, BandwidthPlatform):
            return lookups * platform.query_ns(self.workload.k) * 1e-9
        raise TypeError(f"unsupported platform type: {type(platform).__name__}")

    # ----- in-DRAM platforms --------------------------------------------------------

    def _lanes(self, platform: InDramPlatform) -> float:
        return platform.lanes(
            parallelism_degree=self.mapping.parallelism_degree,
            chips=self.mapping.chips,
        )

    def _occupancy_rows(self) -> float:
        """Average occupied k-mer rows per hash-table sub-array."""
        table_subarrays = self.mapping.chips * self.mapping.subarrays_per_chip
        return max(1.0, self.workload.unique_kmers / table_subarrays)

    def _transfer_seconds(self, platform_name: str, row_moves: float) -> float:
        """Non-overlapped routing time for ``row_moves`` key/row moves.

        Moves ride the shared bank-level buses (``chips x 8`` routing
        lanes); each move's bus occupancy scales with the key width
        (``2k`` bits over a 32-bit bus beat).  A platform's mapping
        overlaps a share of the routing with compute and multiplies the
        move count by how non-local its data placement is
        (:data:`IN_DRAM_TRANSFER_CAL`).
        """
        table = (
            self.transfer_cal
            if self.transfer_cal is not None
            else IN_DRAM_TRANSFER_CAL
        )
        cal = table.get(platform_name, {"moves": 4.0, "overlap": 0.4})
        lanes = self.mapping.chips * 8
        beats = max(1.0, 2.0 * self.workload.k / 32.0)
        busy = (
            row_moves
            * cal["moves"]
            * self.mapping.grb_transfer_ns
            * beats
            * 1e-9
            / lanes
        )
        return busy * (1.0 - cal["overlap"])

    def _run_in_dram(self, platform: InDramPlatform) -> ExecutionResult:
        w = self.workload
        m = self.mapping
        lanes = self._lanes(platform)
        occupancy = self._occupancy_rows()
        aap = platform.aap_ns

        # --- hashmap ---------------------------------------------------
        compare = platform.compare_ns()
        insert = platform.insert_ns()
        increment = 2.0 * aap  # DPU read-modify-write of a counter field
        scan = occupancy * m.scan_overhead
        per_query = insert + scan * compare + w.duplicate_fraction * increment
        hashmap_compute = w.total_kmers * per_query * 1e-9 / lanes
        # every query routes one row (the read window) to its partition
        hashmap_transfer = self._transfer_seconds(platform.name, w.total_kmers)
        hashmap_io = w.reads_bytes / (m.chips * m.io_bandwidth_gbps * 1e9)
        hashmap_s = hashmap_compute + hashmap_transfer + hashmap_io

        # --- debruijn --------------------------------------------------
        # per distinct k-mer: 2 node membership scans over the node
        # list region (compare-class, same occupancy scan as the hash
        # table) + 3 MEM_inserts (node, node, edge record)
        per_kmer = 2.0 * scan * compare + 3.0 * insert
        debruijn_compute = w.unique_kmers * per_kmer * 1e-9 / lanes
        debruijn_transfer = self._transfer_seconds(
            platform.name, 2.0 * w.graph_edges
        )
        debruijn_io = w.graph_bytes / (m.chips * m.io_bandwidth_gbps * 1e9)
        debruijn_s = debruijn_compute + debruijn_transfer + debruijn_io

        # --- traverse ---------------------------------------------------
        # degrees: 2 directions x E carry-save compressions (3 cycles
        # each on P-A; other platforms scale by their adder cost)
        compress = 0.75 * platform.add_ns(1)
        degrees_s = 2.0 * w.graph_edges * compress * 1e-9 / lanes
        # Euler walk: sequential per component; each step locates the
        # vertex row (compare-class), picks/marks an edge and appends
        # to the path (insert-class)
        walk_step = 2.0 * compare + 2.0 * insert
        walk_s = w.graph_edges * walk_step * 1e-9 / m.walk_parallelism
        traverse_transfer = self._transfer_seconds(platform.name, w.graph_edges)
        traverse_s = degrees_s + walk_s + traverse_transfer

        utilisation = ACTIVE_FRACTION.get(platform.name, 0.6)
        stages = tuple(
            StageResult(
                name=name,
                time_s=time_s,
                transfer_s=transfer_s,
                power_w=platform.average_power_w(utilisation),
            )
            for name, time_s, transfer_s in (
                ("hashmap", hashmap_s, hashmap_transfer + hashmap_io),
                ("debruijn", debruijn_s, debruijn_transfer + debruijn_io),
                ("traverse", traverse_s, traverse_transfer),
            )
        )
        return ExecutionResult(
            platform=platform.name,
            k=w.k,
            stages=stages,
            active_fraction=utilisation,
        )

    # ----- von-Neumann platforms ---------------------------------------------------------

    def _memory_share(self, platform: BandwidthPlatform) -> float:
        """Data-movement share; grows with k (bigger keys and tables)."""
        compute = platform.compute_fraction - 0.005 * (self.workload.k - 16)
        compute = min(0.9, max(0.05, compute))
        return 1.0 - compute

    def _run_bandwidth(self, platform: BandwidthPlatform) -> ExecutionResult:
        w = self.workload
        query = platform.query_ns(w.k)

        cal = VN_ASSEMBLY_CAL.get(
            platform.name, {"graph_factor": 3.0, "walk_factor": 2.0}
        )
        hashmap_s = w.total_kmers * query * 1e-9
        # graph building: membership-class random accesses + record
        # writes per distinct k-mer, atomics/sort-dominated
        debruijn_s = w.unique_kmers * 2.0 * cal["graph_factor"] * query * 1e-9
        # traversal: pointer-chasing successor lookups over nodes+edges
        walk = cal["walk_factor"] * query
        traverse_s = (w.graph_nodes + w.graph_edges) * walk * 1e-9

        mem_share = self._memory_share(platform)
        utilisation = ACTIVE_FRACTION.get(platform.name, 0.6)
        stages = tuple(
            StageResult(
                name=name,
                time_s=time_s,
                transfer_s=time_s * mem_share,
                power_w=platform.average_power_w(utilisation),
            )
            for name, time_s in (
                ("hashmap", hashmap_s),
                ("debruijn", debruijn_s),
                ("traverse", traverse_s),
            )
        )
        return ExecutionResult(
            platform=platform.name,
            k=w.k,
            stages=stages,
            active_fraction=utilisation,
        )


def run_all(
    platforms: list[Platform],
    workload: AssemblyWorkload,
    mapping: MappingConfig | None = None,
) -> list[ExecutionResult]:
    """Evaluate every platform on one workload."""
    model = ExecutionModel(workload=workload, mapping=mapping or MappingConfig())
    return [model.run(p) for p in platforms]
