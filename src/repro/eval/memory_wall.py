"""Fig. 11 — Memory Bottleneck Ratio and Resource Utilisation Ratio.

Derives both metrics from the same execution results as Fig. 9:

* **MBR** — the share of run time in which computation waits on data
  (host I/O, GRB routing, off-chip traffic);
* **RUR** — compute-busy share times the fraction of compute resources
  active.

The expected shape: P-A lowest MBR (~9 % at k=16, under ~16 % at
k=32) and highest RUR (~65 % at k=16); GPU's MBR climbs to ~70 % at
k=32 with the lowest RUR; the PIM baselines sit in between (> 45 %
RUR).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.execution import ExecutionModel, ExecutionResult, MappingConfig
from repro.eval.workloads import chr14_workload
from repro.platforms.base import Platform
from repro.platforms.registry import assembly_platforms

#: k values the paper plots in Fig. 11.
FIG11_K_VALUES: tuple[int, ...] = (16, 32)


@dataclass(frozen=True)
class MemoryWallPoint:
    """One platform x k bar of Fig. 11a/b."""

    platform: str
    k: int
    mbr: float
    rur: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mbr <= 1.0:
            raise ValueError("mbr must be within [0, 1]")
        if not 0.0 <= self.rur <= 1.0:
            raise ValueError("rur must be within [0, 1]")

    @property
    def mbr_percent(self) -> float:
        return 100.0 * self.mbr

    @property
    def rur_percent(self) -> float:
        return 100.0 * self.rur


@dataclass(frozen=True)
class MemoryWallStudy:
    points: tuple[MemoryWallPoint, ...]

    def point(self, platform: str, k: int) -> MemoryWallPoint:
        for p in self.points:
            if p.platform == platform and p.k == k:
                return p
        raise KeyError((platform, k))

    def platforms(self) -> list[str]:
        seen = []
        for p in self.points:
            if p.platform not in seen:
                seen.append(p.platform)
        return seen


def point_from_result(result: ExecutionResult) -> MemoryWallPoint:
    return MemoryWallPoint(
        platform=result.platform,
        k=result.k,
        mbr=min(1.0, result.memory_bottleneck_ratio),
        rur=min(1.0, result.resource_utilisation_ratio),
    )


def run_memory_wall_study(
    platforms: list[Platform] | None = None,
    k_values: tuple[int, ...] = FIG11_K_VALUES,
    mapping: MappingConfig | None = None,
) -> MemoryWallStudy:
    """Regenerate Fig. 11a/11b."""
    platforms = platforms if platforms is not None else assembly_platforms()
    points = []
    for k in k_values:
        model = ExecutionModel(chr14_workload(k), mapping or MappingConfig())
        for platform in platforms:
            points.append(point_from_result(model.run(platform)))
    return MemoryWallStudy(points=tuple(points))
