"""Reliability studies: Table I process variation + data-at-rest rot.

Two harnesses share this module:

* **Table I** — thin orchestration over :mod:`repro.dram.variation`:
  runs the Monte-Carlo engine at the paper's variation levels and
  formats the two-column table (TRA vs two-row activation error
  percentages).
* **Integrity sweep** — the data-at-rest ablation: hold an accelerated
  retention-rot *rate per bit-second* constant and sweep the refresh/
  scrub interval.  Relaxing the cadence batches more upsets between
  scrub passes, raising the SECDED double-bit (uncorrectable) odds;
  over-tightening it is no cure either, because a scrub pass itself
  costs simulated time (one sub-array row depth of ``ECC_CHK``), so
  below that duration the refresh clock outruns scrub bandwidth and
  windows batch anyway.  What must hold at every cadence: SECDED keeps
  the assembled contigs bit-identical to a zero-fault run while the
  ECC-off ablation lets rot corrupt them.  ``main`` emits
  ``BENCH_integrity.json`` (schema ``bench_integrity/1``) for CI.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.dram.variation import (
    TABLE_I_LEVELS,
    TABLE_I_PAPER,
    VariationResult,
    run_variation_table,
)


@dataclass(frozen=True)
class ReliabilityRow:
    """One row of Table I."""

    variation_percent: float
    tra_error_percent: float
    two_row_error_percent: float
    paper_tra: float
    paper_two_row: float

    @property
    def ordering_holds(self) -> bool:
        """The paper's qualitative claim: 2-row never worse than TRA."""
        return self.two_row_error_percent <= self.tra_error_percent + 1e-9


@dataclass(frozen=True)
class ReliabilityTable:
    rows: tuple[ReliabilityRow, ...]

    def row(self, level: float) -> ReliabilityRow:
        for row in self.rows:
            if row.variation_percent == level:
                return row
        raise KeyError(level)

    @property
    def all_orderings_hold(self) -> bool:
        return all(row.ordering_holds for row in self.rows)


def run_reliability_table(
    trials: int = 10_000, seed: int = 0x5EED
) -> ReliabilityTable:
    """Regenerate Table I with the calibrated variation model."""
    raw = run_variation_table(trials=trials, seed=seed)
    rows = []
    for level in TABLE_I_LEVELS:
        tra: VariationResult = raw["tra"][level]
        two_row: VariationResult = raw["two_row"][level]
        rows.append(
            ReliabilityRow(
                variation_percent=level,
                tra_error_percent=tra.error_percent,
                two_row_error_percent=two_row.error_percent,
                paper_tra=TABLE_I_PAPER["tra"][level],
                paper_two_row=TABLE_I_PAPER["two_row"][level],
            )
        )
    return ReliabilityTable(rows=tuple(rows))


def format_table(table: ReliabilityTable) -> str:
    """Render rows like the paper's Table I, with paper values beside."""
    lines = [
        f"{'Variation':>10} {'TRA':>8} {'2-Row act.':>11}"
        f"   {'paper TRA':>9} {'paper 2-Row':>11}"
    ]
    for row in table.rows:
        lines.append(
            f"{row.variation_percent:>9.0f}% "
            f"{row.tra_error_percent:>8.2f} {row.two_row_error_percent:>11.2f}"
            f"   {row.paper_tra:>9.2f} {row.paper_two_row:>11.2f}"
        )
    return "\n".join(lines)


# ----- data-at-rest integrity sweep ------------------------------------------

#: refresh/scrub intervals swept (seconds of simulated time)
INTEGRITY_INTERVALS: "tuple[float, ...]" = (2e-5, 1e-4, 5e-4, 2e-3)
#: accelerated rot rate: per-bit upset probability per simulated
#: second, held constant across the sweep (the per-window probability
#: scales linearly with the window, first-order tail-mass expansion)
INTEGRITY_UPSETS_PER_BIT_SECOND = 0.15


@dataclass(frozen=True)
class IntegritySweepPoint:
    """One (interval, ecc) cell of the integrity sweep."""

    retention_interval_s: float
    ecc: str
    windows: int
    flips_injected: int
    words_corrected: int
    words_uncorrectable: int
    #: contigs bit-identical to the zero-fault baseline run
    contigs_intact: bool
    time_ns: float
    energy_nj: float


def _sweep_workload(genome_bp: int, coverage: int, seed: int):
    from repro.genome import ReadSimulator, synthetic_chromosome

    reference = synthetic_chromosome(genome_bp, seed=seed)
    simulator = ReadSimulator(read_length=50, seed=seed + 1)
    return simulator.sample(
        reference, simulator.reads_for_coverage(genome_bp, coverage)
    )


def run_integrity_sweep(
    intervals: "tuple[float, ...]" = INTEGRITY_INTERVALS,
    upsets_per_bit_second: float = INTEGRITY_UPSETS_PER_BIT_SECOND,
    seed: int = 0x5C12B,
    genome_bp: int = 300,
    coverage: int = 10,
    k: int = 13,
) -> "tuple[IntegritySweepPoint, ...]":
    """Assemble under accelerated rot at each (interval, ecc) cell.

    The rot *rate* (upsets per bit-second of simulated time) is held
    constant; only the refresh/scrub cadence varies.  Each cell is a
    full pipeline run whose contigs are diffed against a zero-fault
    baseline and whose refresh/ECC work is charged through the ledger.
    """
    from repro.assembly.pipeline import _sized_device, assemble_with_pim
    from repro.core.integrity import IntegrityConfig

    reads = list(_sweep_workload(genome_bp, coverage, seed))

    def run(ecc: str, interval: float, probability: float):
        pim = _sized_device(reads, k)
        pim.attach_integrity(
            IntegrityConfig(
                ecc=ecc,
                retention_interval_s=interval,
                seed=seed,
                upset_probability=probability,
            )
        )
        result = assemble_with_pim(
            reads, k=k, pim=pim, min_count=2, engine="scalar"
        )
        return result

    baseline = run("secded", intervals[0], 0.0)
    base_contigs = sorted(str(c.sequence) for c in baseline.contigs)

    points = []
    for interval in intervals:
        probability = min(1.0, upsets_per_bit_second * interval)
        for ecc in ("secded", "off"):
            result = run(ecc, interval, probability)
            counts = result.integrity
            points.append(
                IntegritySweepPoint(
                    retention_interval_s=interval,
                    ecc=ecc,
                    windows=counts.windows,
                    flips_injected=counts.flips_injected,
                    words_corrected=counts.words_corrected,
                    words_uncorrectable=counts.words_uncorrectable,
                    contigs_intact=(
                        sorted(str(c.sequence) for c in result.contigs)
                        == base_contigs
                    ),
                    time_ns=result.total_time_ns,
                    energy_nj=result.total_energy_nj,
                )
            )
    return tuple(points)


def format_integrity_sweep(points: "tuple[IntegritySweepPoint, ...]") -> str:
    lines = [
        f"{'interval':>10} {'ecc':>7} {'windows':>8} {'flips':>6} "
        f"{'corrected':>9} {'uncorr':>7} {'intact':>7}"
    ]
    for p in points:
        lines.append(
            f"{p.retention_interval_s:>10.0e} {p.ecc:>7} {p.windows:>8} "
            f"{p.flips_injected:>6} {p.words_corrected:>9} "
            f"{p.words_uncorrectable:>7} {str(p.contigs_intact):>7}"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """Run the integrity sweep and emit ``BENCH_integrity.json``."""
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="data-at-rest integrity sweep (rot vs scrub cadence)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="two intervals instead of four (CI smoke sizing)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_integrity.json",
        help="where to write the sweep record",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the sweep's qualitative claims (CI gate)",
    )
    args = parser.parse_args(argv)

    intervals = (
        (INTEGRITY_INTERVALS[1], INTEGRITY_INTERVALS[-1])
        if args.quick
        else INTEGRITY_INTERVALS
    )
    points = run_integrity_sweep(intervals=intervals)
    print(format_integrity_sweep(points))

    record = {
        "schema": "bench_integrity/1",
        "upsets_per_bit_second": INTEGRITY_UPSETS_PER_BIT_SECOND,
        "workload": {"genome_bp": 300, "coverage": 10, "k": 13},
        "sweep": [asdict(p) for p in points],
    }
    path = Path(args.output)
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {path}")

    if args.check:
        protected = [p for p in points if p.ecc == "secded"]
        ablated = [p for p in points if p.ecc == "off"]
        # rot actually landed in both arms
        assert all(p.flips_injected > 0 for p in ablated), (
            "no upsets injected — the sweep measured nothing"
        )
        # SECDED + scrub holds the output at every cadence
        for p in protected:
            assert p.words_corrected > 0, f"scrub never corrected: {p}"
            assert p.contigs_intact, f"SECDED lost contigs: {p}"
        # the ablation is not a no-op: somewhere in the sweep, rot
        # with no ECC visibly corrupts the assembly
        assert any(not p.contigs_intact for p in ablated), (
            "ECC-off never corrupted contigs — raise the rot rate"
        )
        print("check: all qualitative claims hold")
    return 0


if __name__ == "__main__":
    main()
