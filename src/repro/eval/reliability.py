"""Table I — process-variation study harness.

Thin orchestration over :mod:`repro.dram.variation`: runs the
Monte-Carlo engine at the paper's variation levels and formats the
two-column table (TRA vs two-row activation error percentages).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.variation import (
    TABLE_I_LEVELS,
    TABLE_I_PAPER,
    VariationResult,
    run_variation_table,
)


@dataclass(frozen=True)
class ReliabilityRow:
    """One row of Table I."""

    variation_percent: float
    tra_error_percent: float
    two_row_error_percent: float
    paper_tra: float
    paper_two_row: float

    @property
    def ordering_holds(self) -> bool:
        """The paper's qualitative claim: 2-row never worse than TRA."""
        return self.two_row_error_percent <= self.tra_error_percent + 1e-9


@dataclass(frozen=True)
class ReliabilityTable:
    rows: tuple[ReliabilityRow, ...]

    def row(self, level: float) -> ReliabilityRow:
        for row in self.rows:
            if row.variation_percent == level:
                return row
        raise KeyError(level)

    @property
    def all_orderings_hold(self) -> bool:
        return all(row.ordering_holds for row in self.rows)


def run_reliability_table(
    trials: int = 10_000, seed: int = 0x5EED
) -> ReliabilityTable:
    """Regenerate Table I with the calibrated variation model."""
    raw = run_variation_table(trials=trials, seed=seed)
    rows = []
    for level in TABLE_I_LEVELS:
        tra: VariationResult = raw["tra"][level]
        two_row: VariationResult = raw["two_row"][level]
        rows.append(
            ReliabilityRow(
                variation_percent=level,
                tra_error_percent=tra.error_percent,
                two_row_error_percent=two_row.error_percent,
                paper_tra=TABLE_I_PAPER["tra"][level],
                paper_two_row=TABLE_I_PAPER["two_row"][level],
            )
        )
    return ReliabilityTable(rows=tuple(rows))


def format_table(table: ReliabilityTable) -> str:
    """Render rows like the paper's Table I, with paper values beside."""
    lines = [
        f"{'Variation':>10} {'TRA':>8} {'2-Row act.':>11}"
        f"   {'paper TRA':>9} {'paper 2-Row':>11}"
    ]
    for row in table.rows:
        lines.append(
            f"{row.variation_percent:>9.0f}% "
            f"{row.tra_error_percent:>8.2f} {row.two_row_error_percent:>11.2f}"
            f"   {row.paper_tra:>9.2f} {row.paper_two_row:>11.2f}"
        )
    return "\n".join(lines)
