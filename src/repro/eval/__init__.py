"""Experiment harness: one module per paper table/figure.

=====================  ========================================
module                 paper artefact
=====================  ========================================
``transient``          Fig. 3a (XNOR2 transient)
``throughput``         Fig. 3b (raw XNOR/add throughput)
``reliability``        Table I (process variation)
``resilience``         variation x policy ablation (robustness)
``area_report``        Section II-B area overhead (~5 %)
``execution``          Fig. 9a/9b (chr14 time & power)
``tradeoffs``          Fig. 10 (power/delay vs Pd)
``memory_wall``        Fig. 11a/11b (MBR / RUR)
``workloads``          the micro-benchmark & chr14 job models
``tables``             text rendering of every artefact
``power_profile``      power-timeline profile of both engines
=====================  ========================================
"""

from repro.eval.area_report import (
    PAPER_AREA_OVERHEAD_PERCENT,
    AreaStudy,
    run_area_study,
)
from repro.eval.export import export_all
from repro.eval.execution import (
    ACTIVE_FRACTION,
    STAGES,
    ExecutionModel,
    ExecutionResult,
    MappingConfig,
    StageResult,
    run_all,
)
from repro.eval.memory_wall import (
    FIG11_K_VALUES,
    MemoryWallPoint,
    MemoryWallStudy,
    run_memory_wall_study,
)
from repro.eval.power_profile import (
    PowerProfile,
    format_power_profiles,
    run_power_profile,
    run_power_profile_sweep,
)
from repro.eval.reliability import (
    ReliabilityRow,
    ReliabilityTable,
    format_table,
    run_reliability_table,
)
from repro.eval.resilience import (
    POLICY_SWEEP,
    VARIATION_SWEEP,
    ResiliencePoint,
    ResilienceStudy,
    ResilienceWorkload,
    format_resilience_study,
    run_resilience_study,
)
from repro.eval.throughput import (
    FIG3B_PLATFORMS,
    ThroughputSweep,
    headline_ratios,
    run_throughput_sweep,
)
from repro.eval.tradeoffs import (
    TradeoffPoint,
    TradeoffStudy,
    TradeoffSweep,
    run_tradeoff_sweep,
)
from repro.eval.transient import TransientStudy, run_transient_study
from repro.eval.workloads import (
    MICROBENCH_VECTOR_BITS,
    AssemblyWorkload,
    MicrobenchWorkload,
    chr14_workload,
    scaled_workload,
)

__all__ = [
    "export_all",
    "PAPER_AREA_OVERHEAD_PERCENT",
    "AreaStudy",
    "run_area_study",
    "ACTIVE_FRACTION",
    "STAGES",
    "ExecutionModel",
    "ExecutionResult",
    "MappingConfig",
    "StageResult",
    "run_all",
    "FIG11_K_VALUES",
    "MemoryWallPoint",
    "MemoryWallStudy",
    "run_memory_wall_study",
    "PowerProfile",
    "format_power_profiles",
    "run_power_profile",
    "run_power_profile_sweep",
    "ReliabilityRow",
    "ReliabilityTable",
    "format_table",
    "run_reliability_table",
    "POLICY_SWEEP",
    "VARIATION_SWEEP",
    "ResiliencePoint",
    "ResilienceStudy",
    "ResilienceWorkload",
    "format_resilience_study",
    "run_resilience_study",
    "FIG3B_PLATFORMS",
    "ThroughputSweep",
    "headline_ratios",
    "run_throughput_sweep",
    "TradeoffPoint",
    "TradeoffStudy",
    "TradeoffSweep",
    "run_tradeoff_sweep",
    "TransientStudy",
    "run_transient_study",
    "MICROBENCH_VECTOR_BITS",
    "AssemblyWorkload",
    "MicrobenchWorkload",
    "chr14_workload",
    "scaled_workload",
]
