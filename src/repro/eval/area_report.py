"""Area-overhead experiment (paper Section II-B, ~5 % claim)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area import AreaModel, AreaReport
from repro.dram.geometry import SubArrayGeometry

#: The paper's claim, percent of DRAM chip area.
PAPER_AREA_OVERHEAD_PERCENT: float = 5.0


@dataclass(frozen=True)
class AreaStudy:
    """The full area accounting alongside the paper's claim."""

    report: AreaReport
    paper_percent: float = PAPER_AREA_OVERHEAD_PERCENT

    @property
    def within_claim(self) -> bool:
        """True when the modelled overhead is at or below ~5 %."""
        return self.report.overhead_percent <= self.paper_percent + 0.25

    def breakdown_lines(self) -> list[str]:
        r = self.report
        return [
            f"SA add-on transistors : {r.sa_transistors:6d}",
            f"MRD transistors       : {r.mrd_transistors:6d}",
            f"Ctrl transistors      : {r.ctrl_transistors:6d}",
            f"Total                 : {r.total_transistors:6d}"
            f"  (= {r.equivalent_rows} rows x 256)",
            f"Chip-area overhead    : {r.overhead_percent:5.2f} %"
            f"  (paper: ~{self.paper_percent:.0f} %)",
        ]


def run_area_study(geometry: SubArrayGeometry | None = None) -> AreaStudy:
    model = AreaModel(geometry=geometry or SubArrayGeometry())
    return AreaStudy(report=model.report())
