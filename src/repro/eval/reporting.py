"""Markdown report generation: every artefact, regenerated and judged.

``generate_report()`` reruns all experiments and renders a single
markdown document with the measured tables *and* a pass/fail check of
every paper claim — the machine-generated counterpart of the
hand-curated EXPERIMENTS.md.  Exposed through the CLI as
``pim-assembler experiments --report out.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.eval.execution import run_all
from repro.eval.memory_wall import run_memory_wall_study
from repro.eval.reliability import run_reliability_table
from repro.eval.tables import (
    format_execution,
    format_memory_wall,
    format_speedups,
    format_throughput,
    format_tradeoff,
)
from repro.eval.throughput import headline_ratios, run_throughput_sweep
from repro.eval.tradeoffs import run_tradeoff_sweep
from repro.eval.workloads import chr14_workload
from repro.eval.area_report import run_area_study
from repro.eval.transient import run_transient_study
from repro.platforms import assembly_platforms


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim and whether the regenerated data supports it."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool

    def row(self) -> str:
        mark = "yes" if self.holds else "NO"
        return (
            f"| {self.claim} | {self.paper_value} | "
            f"{self.measured_value} | {mark} |"
        )


def _within(value: float, target: float, rel: float) -> bool:
    return abs(value - target) <= rel * target


def collect_claims() -> list[ClaimCheck]:
    """Re-measure every quoted claim of the paper."""
    checks: list[ClaimCheck] = []

    ratios = headline_ratios()
    for key, target, label in (
        ("xnor_vs_cpu", 8.4, "XNOR throughput vs CPU"),
        ("xnor_vs_ambit", 2.33, "XNOR throughput vs Ambit"),
        ("xnor_vs_d1", 1.9, "XNOR throughput vs D1"),
        ("xnor_vs_d3", 3.7, "XNOR throughput vs D3"),
    ):
        value = ratios[key]
        checks.append(
            ClaimCheck(
                claim=label,
                paper_value=f"{target}x",
                measured_value=f"{value:.2f}x",
                holds=_within(value, target, 0.05),
            )
        )

    table = run_reliability_table()
    checks.append(
        ClaimCheck(
            claim="two-row activation never worse than TRA",
            paper_value="every level",
            measured_value="every level" if table.all_orderings_hold else "violated",
            holds=table.all_orderings_hold,
        )
    )

    area = run_area_study()
    checks.append(
        ClaimCheck(
            claim="chip-area overhead",
            paper_value="~5%",
            measured_value=f"{area.report.overhead_percent:.2f}%",
            holds=area.within_claim,
        )
    )

    transient = run_transient_study()
    checks.append(
        ClaimCheck(
            claim="XNOR2 transient settles to the correct rail",
            paper_value="all 4 patterns",
            measured_value=(
                "all 4 patterns" if transient.all_patterns_correct else "failed"
            ),
            holds=transient.all_patterns_correct,
        )
    )

    platforms = assembly_platforms()
    r16 = {r.platform: r for r in run_all(platforms, chr14_workload(16))}
    r32 = {r.platform: r for r in run_all(platforms, chr14_workload(32))}
    hm16 = (
        r16["GPU"].stage("hashmap").time_s / r16["P-A"].stage("hashmap").time_s
    )
    hm32 = (
        r32["GPU"].stage("hashmap").time_s / r32["P-A"].stage("hashmap").time_s
    )
    checks.append(
        ClaimCheck(
            claim="hashmap speed-up vs GPU at k=16",
            paper_value="~5.2x",
            measured_value=f"{hm16:.2f}x",
            holds=_within(hm16, 5.2, 0.1),
        )
    )
    checks.append(
        ClaimCheck(
            claim="hashmap speed-up vs GPU at k=32",
            paper_value="~9.8x",
            measured_value=f"{hm32:.2f}x",
            holds=_within(hm32, 9.8, 0.1),
        )
    )
    power_ratio = r16["GPU"].average_power_w / r16["P-A"].average_power_w
    checks.append(
        ClaimCheck(
            claim="power reduction vs GPU",
            paper_value="~7.5x",
            measured_value=f"{power_ratio:.2f}x",
            holds=_within(power_ratio, 7.5, 0.1),
        )
    )
    checks.append(
        ClaimCheck(
            claim="P-A average power",
            paper_value="38.4 W",
            measured_value=f"{r16['P-A'].average_power_w:.1f} W",
            holds=_within(r16["P-A"].average_power_w, 38.4, 0.05),
        )
    )

    sweep = run_tradeoff_sweep()
    optimum = sweep.optimum_pd(16)
    checks.append(
        ClaimCheck(
            claim="optimum parallelism degree",
            paper_value="Pd ~= 2",
            measured_value=f"Pd = {optimum}",
            holds=optimum == 2,
        )
    )

    wall = run_memory_wall_study()
    mbr16 = wall.point("P-A", 16).mbr_percent
    checks.append(
        ClaimCheck(
            claim="P-A memory-bottleneck ratio at k=16",
            paper_value="~9%",
            measured_value=f"{mbr16:.1f}%",
            holds=abs(mbr16 - 9.0) < 3.0,
        )
    )
    rur16 = wall.point("P-A", 16).rur_percent
    checks.append(
        ClaimCheck(
            claim="P-A resource utilisation at k=16",
            paper_value="~65%",
            measured_value=f"{rur16:.1f}%",
            holds=abs(rur16 - 65.0) < 4.0,
        )
    )
    return checks


def generate_report() -> str:
    """Render the full markdown report."""
    sections = ["# PIM-Assembler — regenerated evaluation report", ""]

    sections += ["## Claim checks", ""]
    sections.append("| claim | paper | measured | holds |")
    sections.append("|---|---|---|---|")
    checks = collect_claims()
    sections += [c.row() for c in checks]
    passed = sum(c.holds for c in checks)
    sections += ["", f"**{passed}/{len(checks)} claims hold.**", ""]

    sections += ["## Fig. 3b — raw throughput", "", "```"]
    sections.append(format_throughput(run_throughput_sweep()))
    sections += ["```", ""]

    sections += ["## Table I — process variation", "", "```"]
    from repro.eval.reliability import format_table

    sections.append(format_table(run_reliability_table()))
    sections += ["```", ""]

    sections += ["## Fig. 9 — chr14 execution & power", "", "```"]
    platforms = assembly_platforms()
    for k in (16, 22, 26, 32):
        results = run_all(platforms, chr14_workload(k))
        sections.append(format_execution(results))
        sections.append("      " + format_speedups(results))
    sections += ["```", ""]

    sections += ["## Fig. 10 — power/delay vs Pd", "", "```"]
    sections.append(format_tradeoff(run_tradeoff_sweep()))
    sections += ["```", ""]

    sections += ["## Fig. 11 — MBR / RUR", "", "```"]
    sections.append(format_memory_wall(run_memory_wall_study()))
    sections += ["```", ""]

    sections += ["## Area overhead", "", "```"]
    sections.append("\n".join(run_area_study().breakdown_lines()))
    sections += ["```", ""]
    return "\n".join(sections)


def write_report(path: "str | Path") -> Path:
    """Generate and write the report to a file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(), encoding="utf-8")
    return path
