"""Power-profile sweep: end-to-end assembly under the power timeline.

Runs the same synthetic assembly workload on both execution engines
with a full :class:`~repro.observability.session.ObservabilitySession`
active, and reports what the power telemetry saw: total energy (and
whether it *exactly* matches the stats ledger — the conservation
invariant), average/peak/thermal-proxy power, per-stage energy split
and the top energy mnemonics.

This is the library layer under ``benchmarks/bench_power_timeline.py``
(which adds wall-clock numbers, a JSON record and the ``--check``
conservation gate for CI); importing it never touches a clock, so the
profile is deterministic for a given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "PowerProfile",
    "format_power_profiles",
    "run_power_profile",
    "run_power_profile_sweep",
]


@dataclass(frozen=True)
class PowerProfile:
    """One engine's power telemetry for one workload."""

    engine: str
    reads: int
    k: int
    events: int
    #: timeline total vs the stats ledger's own total (nJ)
    timeline_energy_nj: float
    ledger_energy_nj: float
    #: sum over binned deposits (math.fsum of every bin)
    integral_nj: float
    total_time_ns: float
    average_power_w: float
    peak_power_w: float
    thermal_proxy_w: float
    stage_energy_nj: dict = field(default_factory=dict)
    top_mnemonics: tuple = ()

    @property
    def conserved(self) -> bool:
        """The conservation invariant, both halves.

        The timeline total must equal the ledger total *bit-exactly*
        (both sides accumulate the identical float sequence), and the
        binned integral must agree to float-summation tolerance.
        """
        if self.timeline_energy_nj != self.ledger_energy_nj:
            return False
        scale = max(1.0, abs(self.timeline_energy_nj))
        return abs(self.integral_nj - self.timeline_energy_nj) <= 1e-9 * scale

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "reads": self.reads,
            "k": self.k,
            "events": self.events,
            "timeline_energy_nj": self.timeline_energy_nj,
            "ledger_energy_nj": self.ledger_energy_nj,
            "integral_nj": self.integral_nj,
            "conserved": self.conserved,
            "total_time_ns": self.total_time_ns,
            "average_power_w": self.average_power_w,
            "peak_power_w": self.peak_power_w,
            "thermal_proxy_w": self.thermal_proxy_w,
            "stage_energy_nj": dict(self.stage_energy_nj),
            "top_mnemonics": [
                {"mnemonic": name, "energy_nj": energy}
                for name, energy in self.top_mnemonics
            ],
        }


def _workload(length: int, coverage: float, seed: int):
    from repro.genome.reads import ReadSimulator
    from repro.genome.reference import synthetic_chromosome

    reference = synthetic_chromosome(length, seed=seed)
    sim = ReadSimulator(read_length=70, seed=seed + 1)
    return sim.sample(reference, sim.reads_for_coverage(length, coverage))


def run_power_profile(
    engine: str = "scalar",
    length: int = 2000,
    coverage: float = 10.0,
    k: int = 15,
    seed: int = 47,
    bin_ns: "float | None" = None,
) -> PowerProfile:
    """Assemble one synthetic workload under a session; profile it."""
    from repro.assembly.pipeline import _sized_device, assemble_with_pim
    from repro.observability.session import ObservabilitySession

    reads = _workload(length, coverage, seed)
    session = ObservabilitySession(power_bin_ns=bin_ns)
    with session.activate():
        # build the device inside the session so its ledger connects
        pim = _sized_device(reads, k)
        assemble_with_pim(reads, k=k, pim=pim, engine=engine)
    power = session.power
    ledger = pim.stats.totals()
    return PowerProfile(
        engine=engine,
        reads=len(reads),
        k=k,
        events=power.events,
        timeline_energy_nj=power.total_energy_nj,
        ledger_energy_nj=ledger.energy_nj,
        integral_nj=power.integral_nj(),
        total_time_ns=power.total_time_ns,
        average_power_w=power.average_power_w(),
        peak_power_w=power.peak_power_w(),
        thermal_proxy_w=power.thermal_proxy_w(),
        stage_energy_nj=dict(power.stage_energy_nj),
        top_mnemonics=tuple(power.top_mnemonics(5)),
    )


def run_power_profile_sweep(
    engines: tuple = ("scalar", "bulk"),
    length: int = 2000,
    coverage: float = 10.0,
    k: int = 15,
    seed: int = 47,
) -> list[PowerProfile]:
    """One :class:`PowerProfile` per execution engine, same workload."""
    return [
        run_power_profile(
            engine=engine, length=length, coverage=coverage, k=k, seed=seed
        )
        for engine in engines
    ]


def format_power_profiles(profiles: list) -> str:
    """Human table of a sweep (one row per engine)."""
    header = (
        f"{'engine':>8} {'events':>9} {'energy':>14} {'avg W':>8} "
        f"{'peak W':>8} {'thermal W':>9} {'conserved':>9}"
    )
    lines = [header, "-" * len(header)]
    for p in profiles:
        lines.append(
            f"{p.engine:>8} {p.events:>9d} {p.timeline_energy_nj:>11.3f} nJ "
            f"{p.average_power_w:>8.3f} {p.peak_power_w:>8.3f} "
            f"{p.thermal_proxy_w:>9.3f} "
            f"{'yes' if p.conserved else 'NO':>9}"
        )
    if any(not math.isfinite(p.timeline_energy_nj) for p in profiles):
        lines.append("warning: non-finite energy in at least one profile")
    return "\n".join(lines)
