"""Resilience ablation — variation level x policy, end to end.

Injects Table-I-derived fault rates (:meth:`FaultModel.from_variation`)
into the functional assembly pipeline and sweeps the resilience policy
ladder (``off`` → ``detect`` → ``detect-retry`` → ``detect-retry-remap``),
measuring both sides of the trade:

* **accuracy** — are the contigs bit-identical to the fault-free run,
  and what fraction of the reference genome do they still cover;
* **overhead** — verification time/energy charged by the detect loop
  (the ``VRF_AAP`` / ``VRF_DPU`` commands), retries, scrub passes, and
  the sub-arrays the degradation path retired.

The workload is simulated reads at moderate coverage counted with
``min_count=2`` — the realistic threshold setting under which a single
missed in-memory comparison splits a k-mer's count across duplicate
slots and silently drops graph edges, so an unprotected run visibly
corrupts the assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.assembly.metrics import genome_fraction
from repro.assembly.pipeline import PimPipeline, _sized_device
from repro.core.faults import FaultModel
from repro.core.resilience import ResiliencePolicy
from repro.genome import ReadSimulator, synthetic_chromosome

#: the policy ladder, weakest to strongest
POLICY_SWEEP = ("off", "detect", "detect-retry", "detect-retry-remap")

#: Table I variation levels with a measurable application-level effect
VARIATION_SWEEP = (10.0, 15.0)


@dataclass(frozen=True)
class ResilienceWorkload:
    """The read set the sweep assembles at every (variation, policy)."""

    genome_length: int = 500
    coverage: float = 8.0
    read_length: int = 80
    k: int = 9
    min_count: int = 2
    genome_seed: int = 700
    read_seed: int = 701
    fault_seed: int = 702

    def materialise(self):
        reference = synthetic_chromosome(self.genome_length, seed=self.genome_seed)
        simulator = ReadSimulator(read_length=self.read_length, seed=self.read_seed)
        count = simulator.reads_for_coverage(len(reference), self.coverage)
        return reference, simulator.sample(reference, count)


@dataclass(frozen=True)
class ResiliencePoint:
    """One (variation, policy) cell of the sweep."""

    variation_percent: float
    policy: str
    num_contigs: int
    identical_to_baseline: bool
    genome_fraction: float
    detected: int
    corrected: int
    uncorrected: int
    retries: int
    scrubbed_rows: int
    quarantined_subarrays: int
    weak_rows: int
    verify_time_ns: float
    verify_energy_nj: float
    time_ns: float
    energy_nj: float

    @property
    def verify_time_fraction(self) -> float:
        """Verification overhead as a fraction of total run time."""
        if self.time_ns <= 0:
            return 0.0
        return self.verify_time_ns / self.time_ns


@dataclass(frozen=True)
class ResilienceStudy:
    """Sweep result: the fault-free baseline plus every swept cell."""

    workload: ResilienceWorkload
    baseline_contigs: int
    baseline_time_ns: float
    points: tuple[ResiliencePoint, ...]

    def point(self, variation: float, policy: str) -> ResiliencePoint:
        level = ResiliencePolicy.named(policy).level.value
        for point in self.points:
            if point.variation_percent == variation and point.policy == level:
                return point
        raise KeyError((variation, policy))

    @property
    def strongest_policy_always_exact(self) -> bool:
        """Does detect-retry-remap reproduce the baseline at every level?"""
        strongest = [p for p in self.points if p.policy == "detect-retry-remap"]
        return bool(strongest) and all(p.identical_to_baseline for p in strongest)


def _run_once(
    workload: ResilienceWorkload,
    reads,
    variation_percent: float,
    policy: "str | None",
):
    pim = _sized_device(reads, workload.k)
    if variation_percent > 0:
        pim.controller.faults = FaultModel.from_variation(
            variation_percent, seed=workload.fault_seed
        )
    pipeline = PimPipeline(
        pim,
        k=workload.k,
        min_count=workload.min_count,
        resilience=policy,
    )
    return pipeline.run(reads)


def run_resilience_study(
    variation_levels: Sequence[float] = VARIATION_SWEEP,
    policies: Sequence[str] = POLICY_SWEEP,
    workload: ResilienceWorkload | None = None,
) -> ResilienceStudy:
    """Sweep variation level x resilience policy on one read set.

    Every cell re-runs the full pipeline from a fresh device with the
    same fault seed, so cells differ only in the policy's behaviour —
    the baseline comparison is exact, not statistical.
    """
    workload = workload or ResilienceWorkload()
    reference, reads = workload.materialise()

    baseline = _run_once(workload, reads, 0.0, None)
    baseline_contigs = sorted(str(c.sequence) for c in baseline.contigs)

    points = []
    for variation in variation_levels:
        for policy in policies:
            result = _run_once(workload, reads, variation, policy)
            contigs = sorted(str(c.sequence) for c in result.contigs)
            report = result.resilience
            totals = report.totals if report is not None else None
            points.append(
                ResiliencePoint(
                    variation_percent=variation,
                    policy=ResiliencePolicy.named(policy).level.value,
                    num_contigs=len(result.contigs),
                    identical_to_baseline=contigs == baseline_contigs,
                    genome_fraction=genome_fraction(result.contigs, reference),
                    detected=totals.detected if totals else 0,
                    corrected=totals.corrected if totals else 0,
                    uncorrected=totals.uncorrected if totals else 0,
                    retries=totals.retries if totals else 0,
                    scrubbed_rows=totals.scrubbed_rows if totals else 0,
                    quarantined_subarrays=(
                        len(report.quarantined_subarrays) if report else 0
                    ),
                    weak_rows=len(report.weak_rows) if report else 0,
                    verify_time_ns=totals.verify_time_ns if totals else 0.0,
                    verify_energy_nj=totals.verify_energy_nj if totals else 0.0,
                    time_ns=result.total_time_ns,
                    energy_nj=result.total_energy_nj,
                )
            )
    return ResilienceStudy(
        workload=workload,
        baseline_contigs=len(baseline.contigs),
        baseline_time_ns=baseline.total_time_ns,
        points=tuple(points),
    )


def format_resilience_study(study: ResilienceStudy) -> str:
    """Render the sweep as a fixed-width table."""
    lines = [
        f"baseline: {study.baseline_contigs} contigs, "
        f"{study.baseline_time_ns / 1e3:.1f} us (fault-free)",
        f"{'var':>5} {'policy':>19} {'contigs':>7} {'exact':>5} "
        f"{'genome%':>7} {'det':>6} {'corr':>6} {'uncorr':>6} "
        f"{'quar':>4} {'vrf-ovh':>7}",
    ]
    for p in study.points:
        lines.append(
            f"{p.variation_percent:>4.0f}% {p.policy:>19} {p.num_contigs:>7} "
            f"{'yes' if p.identical_to_baseline else 'NO':>5} "
            f"{100 * p.genome_fraction:>6.1f}% {p.detected:>6} "
            f"{p.corrected:>6} {p.uncorrected:>6} "
            f"{p.quarantined_subarrays:>4} {100 * p.verify_time_fraction:>6.1f}%"
        )
    return "\n".join(lines)
