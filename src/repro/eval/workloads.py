"""Workload models for the evaluation harness.

Two workloads drive everything:

* :class:`MicrobenchWorkload` — the Fig. 3b bulk-op vectors
  (2^27 / 2^28 / 2^29 bits);
* :class:`AssemblyWorkload` — the Section IV chromosome-14 job
  (45,711,162 reads x 101 bp sampled from an ~88 Mbp chromosome,
  k in {16, 22, 26, 32}).

:class:`AssemblyWorkload` converts the dataset parameters into the
*operation counts* each stage performs — total k-mer queries, expected
distinct k-mers, duplicate fraction, graph sizes and memory footprint.
The same formulas govern the functional simulator, which is how the
analytic model is validated at small scale (see
``tests/eval/test_workloads.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.genome.reference import (
    CHR14_LENGTH,
    CHR14_READ_COUNT,
    CHR14_READ_LENGTH,
)

#: Fig. 3b vector lengths, bits.
MICROBENCH_VECTOR_BITS: tuple[int, ...] = (2**27, 2**28, 2**29)


@dataclass(frozen=True)
class MicrobenchWorkload:
    """Bulk bit-wise operation micro-benchmark (Fig. 3b)."""

    vector_bits: tuple[int, ...] = MICROBENCH_VECTOR_BITS
    word_bits: int = 32

    def __post_init__(self) -> None:
        if not self.vector_bits:
            raise ValueError("at least one vector length is required")
        if any(v <= 0 for v in self.vector_bits):
            raise ValueError("vector lengths must be positive")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")


@dataclass(frozen=True)
class AssemblyWorkload:
    """Operation-count model of a de novo assembly job.

    Attributes:
        genome_length: assemblable reference length, bases.
        read_count: number of short reads.
        read_length: bases per read.
        k: k-mer length.
        unique_saturation: controls how the distinct-k-mer count
            approaches the genome length as k grows: small k collapses
            repeats, large k resolves them.  The distinct count is
            ``genome_length * (1 - a * exp(-b * k))`` with ``a`` fixed
            at 0.55 and ``b = unique_saturation``.
    """

    genome_length: int = CHR14_LENGTH
    read_count: int = CHR14_READ_COUNT
    read_length: int = CHR14_READ_LENGTH
    k: int = 16
    unique_saturation: float = 0.06

    def __post_init__(self) -> None:
        if min(self.genome_length, self.read_count, self.read_length) <= 0:
            raise ValueError("workload parameters must be positive")
        if not 1 < self.k <= self.read_length:
            raise ValueError("k must satisfy 1 < k <= read_length")
        if self.unique_saturation <= 0:
            raise ValueError("unique_saturation must be positive")

    # ----- stage-1 counts ----------------------------------------------------

    @property
    def kmers_per_read(self) -> int:
        return self.read_length - self.k + 1

    @property
    def total_kmers(self) -> int:
        """N_k: hash-table queries issued by the hashmap stage."""
        return self.read_count * self.kmers_per_read

    @property
    def coverage(self) -> float:
        """Mean per-base read coverage of the genome."""
        return self.read_count * self.read_length / self.genome_length

    @property
    def unique_kmers(self) -> int:
        """Expected distinct k-mers (the hash-table size).

        Bounded by both the genome's k-mer positions and the 4^k key
        space; the repeat-collapse factor models how shorter k-mers
        coincide across repeat copies.
        """
        positions = self.genome_length - self.k + 1
        collapse = 1.0 - 0.55 * math.exp(-self.unique_saturation * self.k)
        expected = positions * collapse
        if self.k < 32:
            expected = min(expected, float(4**self.k))
        return max(1, int(expected))

    @property
    def duplicate_queries(self) -> int:
        """Queries that hit an existing table entry (increments)."""
        return max(0, self.total_kmers - self.unique_kmers)

    @property
    def duplicate_fraction(self) -> float:
        return self.duplicate_queries / self.total_kmers

    # ----- stage-2/3 counts ----------------------------------------------------

    @property
    def graph_nodes(self) -> int:
        """Distinct (k-1)-mers; marginally below the distinct k-mers."""
        return max(1, int(self.unique_kmers * 0.99))

    @property
    def graph_edges(self) -> int:
        """One edge per distinct k-mer."""
        return self.unique_kmers

    # ----- memory -----------------------------------------------------------------

    @property
    def reads_bytes(self) -> int:
        """2-bit-packed read storage."""
        return self.read_count * self.read_length // 4

    @property
    def table_bytes(self) -> int:
        """Hash-table footprint: key rows (2k bits padded to a row is
        the sub-array view; host-visible footprint is key + counter)."""
        key_bytes = -(-2 * self.k // 8)
        return self.unique_kmers * (key_bytes + 1)

    @property
    def graph_bytes(self) -> int:
        """Adjacency storage: two node keys per edge."""
        node_bytes = -(-2 * (self.k - 1) // 8)
        return self.graph_edges * 2 * node_bytes

    @property
    def total_bytes(self) -> int:
        return self.reads_bytes + self.table_bytes + self.graph_bytes


def chr14_workload(k: int = 16) -> AssemblyWorkload:
    """The paper's Section IV job for one k value."""
    return AssemblyWorkload(k=k)


def scaled_workload(
    scale: float, k: int, read_length: int = CHR14_READ_LENGTH
) -> AssemblyWorkload:
    """A linearly scaled-down chr14 job (for functional cross-checks)."""
    if scale <= 0 or scale > 1:
        raise ValueError("scale must be in (0, 1]")
    genome = max(read_length * 2, int(CHR14_LENGTH * scale))
    reads = max(1, int(CHR14_READ_COUNT * scale))
    return AssemblyWorkload(
        genome_length=genome, read_count=reads, read_length=read_length, k=k
    )
