"""Fig. 3a — transient simulation of the in-memory XNOR2 operation.

Wraps :mod:`repro.dram.waveform` into the experiment artefact: the four
input patterns' waveforms plus the checks the paper's figure supports —
the bit line regenerates to Vdd for agreeing inputs (Di Dj in
{00, 11}) and to GND for disagreeing inputs, within the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.cell import CellParameters
from repro.dram.waveform import (
    TransientPhases,
    TransientWaveform,
    xnor2_transient_suite,
)


@dataclass(frozen=True)
class TransientStudy:
    """The Fig. 3a artefact: four labelled waveforms."""

    waveforms: dict[str, TransientWaveform]
    vdd: float
    tolerance: float = 0.01

    def final_bl(self, pattern: str) -> float:
        return self.waveforms[pattern].final("BL")

    def expected_bl(self, pattern: str) -> float:
        """XNOR2 rail: Vdd when the two bits agree, 0 otherwise."""
        di, dj = int(pattern[0]), int(pattern[1])
        return self.vdd if di == dj else 0.0

    def pattern_settles_correctly(self, pattern: str) -> bool:
        return abs(self.final_bl(pattern) - self.expected_bl(pattern)) <= (
            self.tolerance * self.vdd
        )

    @property
    def all_patterns_correct(self) -> bool:
        return all(self.pattern_settles_correctly(p) for p in self.waveforms)

    def summary_rows(self) -> list[tuple[str, float, float]]:
        """(pattern, final BL voltage, expected rail) per input pattern."""
        return [
            (p, self.final_bl(p), self.expected_bl(p))
            for p in sorted(self.waveforms)
        ]


def run_transient_study(
    params: CellParameters | None = None,
    phases: TransientPhases | None = None,
) -> TransientStudy:
    params = params or CellParameters()
    return TransientStudy(
        waveforms=xnor2_transient_suite(params, phases),
        vdd=params.vdd,
    )
