"""Crash-tolerant job runtime: checkpoints, watchdog deadlines, retries.

Three cooperating modules wrap :class:`~repro.assembly.pipeline.PimPipeline`
into resumable, deadline-bounded jobs:

* :mod:`repro.runtime.checkpoint` — content-hashed stage-boundary
  journal (`kill -9`-safe; resumes are bit-identical),
* :mod:`repro.runtime.watchdog` — cooperative cancellation checkpoints
  with per-stage / whole-job deadline budgets,
* :mod:`repro.runtime.jobs` — the :class:`JobRunner` retry ladder and
  degradation chain.

The assembly modules import :func:`checkpoint` from here, and
``jobs`` imports the assembly pipeline — so the jobs symbols are
exposed lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.runtime.checkpoint import JobJournal, RecordRef
from repro.runtime.watchdog import Watchdog, active_watchdog, checkpoint

__all__ = [
    "JobJournal",
    "RecordRef",
    "Watchdog",
    "active_watchdog",
    "checkpoint",
    # lazily resolved from repro.runtime.jobs:
    "JobConfig",
    "JobDecision",
    "JobOutcome",
    "JobReport",
    "JobRunner",
    "reads_fingerprint",
]

_JOBS_EXPORTS = {
    "JobConfig",
    "JobDecision",
    "JobOutcome",
    "JobReport",
    "JobRunner",
    "reads_fingerprint",
}


def __getattr__(name: str):
    if name in _JOBS_EXPORTS:
        from repro.runtime import jobs

        return getattr(jobs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
