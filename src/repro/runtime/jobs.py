"""Crash-tolerant, deadline-bounded assembly jobs above ``PimPipeline``.

PR 1's resilience engine recovers *device* faults op by op; this layer
recovers *job* faults: a process death, a wall-clock overrun, or a
stage whose in-memory recovery gave out.  One :class:`JobRunner` run is
one job:

* after every Fig. 5a stage boundary the full execution state —
  platform memory, stats ledger, fault-RNG stream, resilience events,
  k-mer table shadow, graph — is journaled to a content-hashed on-disk
  record (:mod:`repro.runtime.checkpoint`), so ``kill -9`` at any point
  loses at most one stage of work and a resumed run finishes
  **bit-identically** to an uninterrupted one;
* a :class:`~repro.runtime.watchdog.Watchdog` enforces per-stage and
  whole-job deadline budgets through the cooperative cancellation
  checkpoints inside the hashmap/adjacency/euler loops; the raised
  :class:`~repro.errors.StageTimeoutError` always leaves a resumable
  journal behind;
* a retry ladder with capped, fingerprint-seeded jittered backoff
  degrades the job the
  same way :class:`~repro.core.resilience.ResiliencePolicy` degrades an
  op — one level up: **bulk engine → scalar replay → reduced batch
  size → quarantine-and-continue** — rolling the stage back to its
  entry snapshot before every rung so retries replay deterministically.
  Every decision is journaled and surfaces in the :class:`JobReport`.
"""

from __future__ import annotations

import hashlib
import random
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.assembly.pipeline import (
    STAGE_NAMES,
    AssemblyResult,
    PimPipeline,
    PipelineState,
    _sized_device,
)
from repro.core.platform import PimAssembler
from repro.core.resilience import ResiliencePolicy
from repro.errors import (
    JobFailedError,
    JournalError,
    ReproError,
    StageTimeoutError,
    SubarrayQuarantinedError,
    TableFullError,
    UncorrectableFaultError,
    VerificationError,
)
from repro.observability.metrics import inc
from repro.observability.session import active_session
from repro.observability.spans import event, span
from repro.runtime.checkpoint import (
    JobJournal,
    contigs_from_state,
    contigs_state,
    graph_from_state,
    graph_state,
    scaffolds_from_state,
    scaffolds_state,
)
from repro.runtime.watchdog import Watchdog

__all__ = ["JobConfig", "JobDecision", "JobReport", "JobOutcome", "JobRunner"]

#: the journal stage name of the completed-job record
RESULT_STAGE = "result"

#: errors the retry ladder re-attempts (fault-class failures the
#: resilience layer could not absorb, plus capacity collapses a
#: degraded re-plan may route around)
RETRYABLE_ERRORS = (
    UncorrectableFaultError,
    VerificationError,
    SubarrayQuarantinedError,
    TableFullError,
)


def reads_fingerprint(reads: Iterable) -> str:
    """Content hash of a read set (order-sensitive, path-independent)."""
    digest = hashlib.sha256()
    for item in reads:
        name = getattr(item, "name", "")
        sequence = getattr(item, "sequence", item)
        digest.update(str(name).encode("ascii", "replace"))
        digest.update(b"\x00")
        digest.update(str(sequence).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class JobConfig:
    """Everything that defines a job's deterministic behaviour.

    The determinism-relevant fields are frozen into ``job.json`` when
    the journal is created; a resume validates them (and the input
    fingerprint) so a journal can never silently continue a *different*
    job.  Deadline and ladder knobs may change between resume attempts.
    """

    k: int
    min_count: int = 1
    contig_mode: str = "unitig"
    scaffold: bool = False
    min_contig_length: int = 0
    simplify: bool = False
    resilience: "ResiliencePolicy | str | None" = None
    engine: str = "scalar"
    batch_reads: int | None = None
    #: data-at-rest protection: ``"secded"`` attaches the retention /
    #: ECC / scrub engine, ``"off"`` models rot without correction,
    #: ``None`` leaves the platform untouched (no retention model)
    ecc: str | None = None
    #: simulated refresh window (tREFW) in seconds; ``None`` keeps the
    #: :class:`~repro.core.integrity.IntegrityConfig` default
    retention_interval_s: float | None = None
    # --- deadline budgets (not identity-relevant) ---
    stage_timeout_s: float | None = None
    job_timeout_s: float | None = None
    # --- retry ladder (not identity-relevant) ---
    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: fractional spread of the seeded backoff jitter: each capped
    #: exponential delay is scaled by a factor in ``[1-j, 1+j]`` drawn
    #: from an RNG seeded by the job's input fingerprint, so a fleet of
    #: concurrent jobs never retries in lockstep yet every single job's
    #: delays replay exactly from its own identity
    backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff parameters must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")
        for name, value in (
            ("stage_timeout_s", self.stage_timeout_s),
            ("job_timeout_s", self.job_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (got {value})")
        if self.ecc not in (None, "off", "secded"):
            raise ValueError(
                f"ecc must be 'off' or 'secded' (got {self.ecc!r})"
            )
        if (
            self.retention_interval_s is not None
            and self.retention_interval_s <= 0
        ):
            raise ValueError(
                "retention_interval_s must be positive "
                f"(got {self.retention_interval_s})"
            )
        if self.resilience is not None and not isinstance(
            self.resilience, ResiliencePolicy
        ):
            object.__setattr__(
                self, "resilience", ResiliencePolicy.named(self.resilience)
            )

    def identity_dict(self) -> dict:
        """The fields a resume must match exactly."""
        return {
            "k": self.k,
            "min_count": self.min_count,
            "contig_mode": self.contig_mode,
            "scaffold": self.scaffold,
            "min_contig_length": self.min_contig_length,
            "simplify": self.simplify,
            "resilience": (
                None
                if self.resilience is None
                else self.resilience.state_dict()
            ),
            "engine": self.engine,
            "batch_reads": self.batch_reads,
            "ecc": self.ecc,
            "retention_interval_s": self.retention_interval_s,
        }

    def integrity_config(self) -> "IntegrityConfig | None":
        """The integrity engine this job asks for (``None`` for none)."""
        if self.ecc is None and self.retention_interval_s is None:
            return None
        from repro.core.integrity import IntegrityConfig

        kwargs: dict = {"ecc": self.ecc or "secded"}
        if self.retention_interval_s is not None:
            kwargs["retention_interval_s"] = self.retention_interval_s
        return IntegrityConfig(**kwargs)


@dataclass(frozen=True)
class JobDecision:
    """One recorded retry/degradation decision."""

    stage: str
    attempt: int
    action: str
    error: str
    backoff_s: float
    engine: str
    batch_reads: int | None

    def state_dict(self) -> dict:
        return {
            "stage": self.stage,
            "attempt": self.attempt,
            "action": self.action,
            "error": self.error,
            "backoff_s": self.backoff_s,
            "engine": self.engine,
            "batch_reads": self.batch_reads,
        }

    @classmethod
    def from_state(cls, state: dict) -> "JobDecision":
        return cls(
            stage=str(state["stage"]),
            attempt=int(state["attempt"]),
            action=str(state["action"]),
            error=str(state["error"]),
            backoff_s=float(state["backoff_s"]),
            engine=str(state["engine"]),
            batch_reads=(
                None
                if state.get("batch_reads") is None
                else int(state["batch_reads"])
            ),
        )


@dataclass
class JobReport:
    """What the job layer saw and decided during one run."""

    job_dir: str
    resumed: bool = False
    resumed_from: str | None = None
    stages_run: list[str] = field(default_factory=list)
    decisions: list[JobDecision] = field(default_factory=list)
    final_engine: str = "scalar"
    final_batch_reads: int | None = None
    completed: bool = False

    def __str__(self) -> str:
        source = self.resumed_from if self.resumed else "fresh start"
        actions = (
            ", ".join(
                f"{d.stage}#{d.attempt}:{d.action}" for d in self.decisions
            )
            or "none"
        )
        return (
            f"job={self.job_dir} from={source} "
            f"stages={'+'.join(self.stages_run) or '-'} "
            f"engine={self.final_engine} decisions=[{actions}] "
            f"completed={self.completed}"
        )


@dataclass(frozen=True)
class JobOutcome:
    """A finished (or resumed-to-finished) job."""

    result: AssemblyResult
    report: JobReport


@dataclass
class _RuntimeSettings:
    """Mutable execution knobs the degradation ladder adjusts."""

    engine: str
    batch_reads: int | None

    def state_dict(self) -> dict:
        return {"engine": self.engine, "batch_reads": self.batch_reads}

    @classmethod
    def from_state(cls, state: dict) -> "_RuntimeSettings":
        return cls(
            engine=state["engine"],
            batch_reads=(
                None
                if state["batch_reads"] is None
                else int(state["batch_reads"])
            ),
        )


class JobRunner:
    """Run one checkpointed, deadline-bounded assembly job.

    Args:
        job_dir: journal directory (created on first run).
        config: the job definition.
        pim_factory: builds the platform for a fresh start (defaults to
            sizing a device to the read set); a resume from a journaled
            record reconstructs the platform from the snapshot instead.
        watchdog: inject a pre-built watchdog (tests use ``on_tick`` to
            simulate crashes); defaults to one wired from the config's
            deadline budgets, or none when no budget is set.
        sleep: backoff sleeper (injectable for tests).
    """

    def __init__(
        self,
        job_dir: "str | Path",
        config: JobConfig,
        pim_factory: "Callable[[Sequence], PimAssembler] | None" = None,
        watchdog: Watchdog | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.journal = JobJournal(job_dir)
        self.config = config
        self.pim_factory = pim_factory
        self._external_watchdog = watchdog
        self._sleep = sleep
        self._pim: PimAssembler | None = None
        self._pipeline: PimPipeline | None = None
        self._state: PipelineState | None = None
        self._runtime = _RuntimeSettings(
            engine=config.engine, batch_reads=config.batch_reads
        )
        self._backoff_rng: "random.Random | None" = None
        self.report = JobReport(
            job_dir=str(job_dir),
            final_engine=config.engine,
            final_batch_reads=config.batch_reads,
        )

    # ----- public API -------------------------------------------------------

    def run(self, reads: Iterable, resume: bool = False) -> JobOutcome:
        """Execute (or resume) the job to completion.

        Raises:
            JournalError: resume requested without (or against a
                mismatched) journal, or fresh start into an existing one.
            JournalLockedError: another live runner holds this job
                directory's exclusive lock (double-resume hazard).
            StageTimeoutError: a deadline expired; the journal still
                holds the last completed boundary — resume later.
            JobFailedError: the retry ladder was exhausted.
        """
        reads = list(reads)
        fingerprint = reads_fingerprint(reads)
        # backoff jitter replays deterministically from the job identity
        self._backoff_rng = random.Random(int(fingerprint[:16], 16))
        try:
            with self.journal.lock().holding():
                return self._run_locked(reads, fingerprint, resume)
        except ReproError as exc:
            # leave a post-mortem: the observability session's flight
            # recorder (when one is active) dumps its rings of recent
            # commands/spans/events next to the journal
            session = active_session()
            if session is not None:
                session.dump_flight(
                    self.journal.root,
                    reason=f"{type(exc).__name__}: {exc}",
                )
            raise

    def _run_locked(
        self, reads: list, fingerprint: str, resume: bool
    ) -> JobOutcome:
        record = self._open_journal(reads, fingerprint, resume)

        if record is not None and record[0].stage == RESULT_STAGE:
            # the job already finished — rehydrate the stored result
            self._restore_payload(record[1])
            self.report.completed = True
            return JobOutcome(self._rehydrate_result(record[1]), self.report)

        if record is not None:
            self._restore_payload(record[1])
        else:
            self._fresh_start(reads)

        completed = () if record is None else record[0].stage
        remaining = self._remaining_stages(completed)

        watchdog = self._external_watchdog
        if watchdog is None and (
            self.config.stage_timeout_s is not None
            or self.config.job_timeout_s is not None
        ):
            watchdog = Watchdog(
                job_budget_s=self.config.job_timeout_s,
                stage_budget_s=self.config.stage_timeout_s,
            )
        if watchdog is None:
            for stage in remaining:
                self._run_stage(stage, reads, watchdog=None)
        else:
            with watchdog.active():
                for stage in remaining:
                    self._run_stage(stage, reads, watchdog=watchdog)

        result = self._pipeline.result(self._state)
        self.journal.append(RESULT_STAGE, self._payload(RESULT_STAGE))
        self.report.completed = True
        self.report.final_engine = self._runtime.engine
        self.report.final_batch_reads = self._runtime.batch_reads
        return JobOutcome(result, self.report)

    def resume(self, reads: Iterable) -> JobOutcome:
        """Shorthand for :meth:`run` with ``resume=True``."""
        return self.run(reads, resume=True)

    # ----- journal lifecycle ------------------------------------------------

    def _open_journal(self, reads, fingerprint: str, resume: bool):
        if resume:
            stored = self.journal.load_config()  # raises when absent
            if stored.get("input_sha256") != fingerprint:
                raise JournalError(
                    "input reads do not match the journaled job "
                    f"(journal {stored.get('input_sha256', '?')[:12]}..., "
                    f"input {fingerprint[:12]}...)"
                )
            if stored.get("config") != self.config.identity_dict():
                raise JournalError(
                    "job configuration does not match the journal; a "
                    "resume must use the original k/engine/policy settings"
                )
            self.report.resumed = True
            record = self.journal.latest()
            self.report.resumed_from = (
                record[0].stage if record is not None else "start"
            )
            return record
        self.journal.create(
            {
                "config": self.config.identity_dict(),
                "input_sha256": fingerprint,
                "reads": len(reads),
            }
        )
        return None

    @staticmethod
    def _remaining_stages(completed: "str | tuple") -> list[str]:
        if not completed:
            return list(STAGE_NAMES)
        index = STAGE_NAMES.index(completed)
        return list(STAGE_NAMES[index + 1 :])

    # ----- execution state --------------------------------------------------

    def _fresh_start(self, reads) -> None:
        if self.pim_factory is not None:
            pim = self.pim_factory(reads)
        else:
            pim = _sized_device(reads, self.config.k)
        if self.config.resilience is not None:
            pim.protect(self.config.resilience)
        integrity = self.config.integrity_config()
        if integrity is not None and pim.integrity is None:
            # a pim_factory may have pre-attached its own engine; the
            # job config only fills the gap, never overrides it
            pim.attach_integrity(integrity)
        self._attach(pim, PipelineState())

    def _attach(self, pim: PimAssembler, state: PipelineState) -> None:
        self._pim = pim
        self._state = state
        self._pipeline = PimPipeline(
            pim,
            k=self.config.k,
            min_count=self.config.min_count,
            contig_mode=self.config.contig_mode,
            scaffold=self.config.scaffold,
            min_contig_length=self.config.min_contig_length,
            simplify=self.config.simplify,
            resilience=None,  # the engine is attached/restored on pim
            engine=self._runtime.engine,
            batch_reads=self._runtime.batch_reads,
        )

    def _payload(self, stage: str) -> dict:
        """One journal record: the complete post-stage execution state."""
        state = self._state
        payload = {
            "stage": stage,
            "runtime": self._runtime.state_dict(),
            "platform": self._pim.state_dict(),
            "counter": (
                None if state.counter is None else state.counter.state_dict()
            ),
            "counts": (
                None
                if state.counts is None
                else [[int(k), int(v)] for k, v in state.counts.items()]
            ),
            "graph": None if state.graph is None else graph_state(state.graph),
            "degrees": (
                None
                if state.degrees is None
                else [
                    [[int(k), int(v)] for k, v in degree.items()]
                    for degree in state.degrees
                ]
            ),
            "contigs": (
                None if state.contigs is None else contigs_state(state.contigs)
            ),
            "scaffolds": scaffolds_state(state.scaffolds),
        }
        if stage == RESULT_STAGE:
            payload["kmer_table_size"] = len(state.counter)
        return payload

    def _restore_payload(self, payload: dict) -> None:
        from repro.assembly.hashmap import PimKmerCounter

        self._runtime = _RuntimeSettings.from_state(payload["runtime"])
        pim = PimAssembler.from_state(payload["platform"])
        state = PipelineState()
        if payload["counter"] is not None:
            state.counter = PimKmerCounter.from_state(
                pim, payload["counter"], engine=self._runtime.engine
            )
        if payload["counts"] is not None:
            state.counts = Counter(
                {int(k): int(v) for k, v in payload["counts"]}
            )
        if payload["graph"] is not None:
            state.graph = graph_from_state(payload["graph"])
        if payload["degrees"] is not None:
            in_pairs, out_pairs = payload["degrees"]
            state.degrees = (
                {int(k): int(v) for k, v in in_pairs},
                {int(k): int(v) for k, v in out_pairs},
            )
        if payload["contigs"] is not None:
            state.contigs = contigs_from_state(payload["contigs"])
        state.scaffolds = scaffolds_from_state(payload["scaffolds"])
        self._attach(pim, state)

    def _rehydrate_result(self, payload: dict) -> AssemblyResult:
        pim = self._pim
        engine = pim.resilience
        return AssemblyResult(
            contigs=self._state.contigs,
            scaffolds=self._state.scaffolds,
            graph=self._state.graph,
            kmer_table_size=int(payload["kmer_table_size"]),
            hashmap=pim.stats.totals("hashmap"),
            debruijn=pim.stats.totals("debruijn"),
            traverse=pim.stats.totals("traverse"),
            resilience=(
                engine.report(stages=list(STAGE_NAMES))
                if engine is not None
                else None
            ),
            integrity=(
                pim.integrity.counts()
                if pim.integrity is not None
                else None
            ),
        )

    # ----- the retry/degradation ladder -------------------------------------

    def _run_stage(self, stage: str, reads, watchdog: Watchdog | None) -> None:
        entry = self._payload(f"entry-{stage}")  # in-memory rollback point
        attempt = 0
        while True:
            attempt += 1
            try:
                with span(
                    f"job.attempt.{stage}",
                    lane="job",
                    attempt=attempt,
                    engine=self._runtime.engine,
                    batch_reads=self._runtime.batch_reads,
                ):
                    self._execute_stage(stage, reads, watchdog)
                with span(f"job.checkpoint.{stage}", lane="job"):
                    self.journal.append(stage, self._payload(stage))
                self.report.stages_run.append(stage)
                return
            except StageTimeoutError as exc:
                self._decide(stage, attempt, "abort-timeout", exc, 0.0)
                raise
            except RETRYABLE_ERRORS as exc:
                if attempt >= self.config.max_attempts:
                    self._decide(stage, attempt, "give-up", exc, 0.0)
                    raise JobFailedError(stage, attempt, exc) from exc
                backoff = self._backoff(attempt)
                action = self._degrade(exc)
                self._decide(stage, attempt, action, exc, backoff)
                inc("job.retries")
                if backoff > 0:
                    self._sleep(backoff)
                self._rollback(entry)

    def _execute_stage(self, stage, reads, watchdog: Watchdog | None) -> None:
        runner = {
            "hashmap": lambda: self._pipeline.run_hashmap(reads, self._state),
            "debruijn": lambda: self._pipeline.run_debruijn(self._state),
            "traverse": lambda: self._pipeline.run_traverse(self._state),
        }[stage]
        if watchdog is None:
            runner()
        else:
            with watchdog.stage(stage):
                runner()

    def _backoff(self, attempt: int) -> float:
        """Capped exponential delay with seeded, reproducible jitter.

        The exponential ramp is scaled by a factor drawn uniformly from
        ``[1 - jitter, 1 + jitter]`` on the fingerprint-seeded RNG —
        concurrent jobs with different inputs spread out instead of
        retrying in lockstep, while re-running one job replays its
        exact delay sequence.  The cap bounds the jittered value too.
        """
        backoff = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** (attempt - 1)),
        )
        jitter = self.config.backoff_jitter
        if jitter > 0.0 and backoff > 0.0 and self._backoff_rng is not None:
            backoff *= 1.0 + jitter * (2.0 * self._backoff_rng.random() - 1.0)
            backoff = min(self.config.backoff_cap_s, backoff)
        return backoff

    def _degrade(self, error: BaseException) -> str:
        """Pick the next ladder rung; mutate the runtime settings.

        The chain mirrors the per-op resilience escalation one level
        up: bulk engine → scalar replay → reduced batch size →
        quarantine-and-continue → plain retry (re-staged by backoff).
        """
        runtime = self._runtime
        if runtime.engine == "bulk":
            runtime.engine = "scalar"
            return "degrade-bulk-to-scalar"
        if runtime.batch_reads is not None and runtime.batch_reads > 1:
            runtime.batch_reads = max(1, runtime.batch_reads // 4)
            return f"reduce-batch-to-{runtime.batch_reads}"
        key = getattr(error, "subarray_key", None)
        engine = self._pim.resilience
        if key is not None and engine is not None and not engine.is_quarantined(
            tuple(key)
        ):
            engine.quarantine(tuple(key))
            return f"quarantine-{','.join(map(str, key))}"
        return "retry"

    def _rollback(self, entry: dict) -> None:
        """Restore the stage-entry snapshot (keeping degraded settings)."""
        runtime = self._runtime
        self._restore_payload(entry)
        # _restore_payload resets the runtime from the snapshot; a
        # ladder decision must survive the rollback
        self._runtime = runtime
        self._pipeline.engine = runtime.engine
        self._pipeline.batch_reads = runtime.batch_reads
        # quarantine decisions must survive too: re-apply to the
        # restored engine (snapshot predates the decision)
        for decision in self.report.decisions:
            if decision.action.startswith("quarantine-"):
                key = tuple(
                    int(p)
                    for p in decision.action[len("quarantine-"):].split(",")
                )
                if self._pim.resilience is not None:
                    self._pim.resilience.quarantine(key)

    def _decide(
        self,
        stage: str,
        attempt: int,
        action: str,
        error: BaseException,
        backoff_s: float,
    ) -> None:
        decision = JobDecision(
            stage=stage,
            attempt=attempt,
            action=action,
            error=f"{type(error).__name__}: {error}",
            backoff_s=backoff_s,
            engine=self._runtime.engine,
            batch_reads=self._runtime.batch_reads,
        )
        self.report.decisions.append(decision)
        self.report.final_engine = self._runtime.engine
        self.report.final_batch_reads = self._runtime.batch_reads
        self.journal.log_decision(decision.state_dict())
        inc(f"job.decisions.{action.split('-')[0]}")
        event(
            "job.decision",
            lane="job",
            stage=stage,
            attempt=attempt,
            action=action,
            error=decision.error,
        )
