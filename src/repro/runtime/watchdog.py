"""Cooperative deadline enforcement for long-running assembly jobs.

A :class:`Watchdog` holds per-stage and whole-job wall-clock budgets.
The compute loops of the three Fig. 5a stages — the Hashmap insert
loop, the Wallace adjacency reduction and the Euler/unitig traversal —
poll :func:`checkpoint` at their inner-loop cancellation points.  When
an active watchdog's budget has expired, the poll raises a typed
:class:`~repro.errors.StageTimeoutError`; because the job layer only
journals *completed* stage boundaries, the journal on disk is always a
valid resume point when the error unwinds.

The poll is designed to be cheap enough for per-k-mer call sites: every
call bumps a counter, and only every ``stride``-th call reads the
clock.  Activation is a context manager over a *thread-local* slot, so
deep loops need no plumbing and each service worker thread enforces
its own job's budgets without cross-talk::

    wd = Watchdog(stage_budget_s=30.0)
    with wd.active(), wd.stage("hashmap"):
        ...  # any checkpoint() call past the budget raises

Tests (and the crash/resume property harness) can observe or interrupt
execution at the exact same points via ``on_tick``, which fires on
every poll *before* the deadline check.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, Mapping
from contextlib import contextmanager

from repro.errors import StageTimeoutError
from repro.observability.spans import event

__all__ = ["Watchdog", "checkpoint", "active_watchdog"]

#: per-thread slot for the currently active watchdog — each service
#: worker thread cancels only its own job
_TLS = threading.local()


def checkpoint() -> None:
    """Cancellation point: cheap no-op unless a watchdog is active."""
    active = getattr(_TLS, "watchdog", None)
    if active is not None:
        active.tick()


def active_watchdog() -> "Watchdog | None":
    """This thread's watchdog installed by :meth:`Watchdog.active`."""
    return getattr(_TLS, "watchdog", None)


class Watchdog:
    """Per-stage and whole-job deadline budgets, cooperatively enforced.

    Args:
        job_budget_s: wall-clock budget for the whole job (``None``
            disables the job deadline).
        stage_budget_s: default budget applied to every stage.
        stage_budgets: per-stage overrides, e.g. ``{"hashmap": 120.0}``.
        stride: clock-read interval — deadline checks happen every
            ``stride``-th :meth:`tick`; 1 checks on every poll.
        clock: monotonic-seconds source (injectable for tests).
        on_tick: called on *every* poll with the running tick count;
            lets tests simulate crashes at randomized kill points.
    """

    def __init__(
        self,
        job_budget_s: float | None = None,
        stage_budget_s: float | None = None,
        stage_budgets: Mapping[str, float] | None = None,
        stride: int = 64,
        clock: Callable[[], float] = time.monotonic,
        on_tick: Callable[[int], None] | None = None,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        for name, value in (
            ("job_budget_s", job_budget_s),
            ("stage_budget_s", stage_budget_s),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        self.job_budget_s = job_budget_s
        self.stage_budget_s = stage_budget_s
        self.stage_budgets = dict(stage_budgets or {})
        self.stride = stride
        self.clock = clock
        self.on_tick = on_tick
        self._ticks = 0
        self._job_start: float | None = None
        self._stage_start: float | None = None
        self._stage: str = "<no stage>"

    # ----- lifecycle --------------------------------------------------------

    @contextmanager
    def active(self) -> Iterator["Watchdog"]:
        """Install this watchdog as this thread's cancellation target."""
        previous = getattr(_TLS, "watchdog", None)
        _TLS.watchdog = self
        if self._job_start is None:
            self._job_start = self.clock()
        try:
            yield self
        finally:
            _TLS.watchdog = previous

    def start_job(self) -> None:
        """(Re)start the whole-job clock; resume carries budgets over."""
        self._job_start = self.clock()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Scope a stage budget; nested stages are not supported."""
        self._stage = name
        self._stage_start = self.clock()
        event(
            "watchdog.stage.enter",
            lane="watchdog",
            stage=name,
            budget_s=self.stage_budgets.get(name, self.stage_budget_s),
        )
        try:
            yield
        finally:
            event(
                "watchdog.stage.exit",
                lane="watchdog",
                stage=name,
                ticks=self._ticks,
            )
            self._stage_start = None
            self._stage = "<no stage>"

    # ----- polling ----------------------------------------------------------

    def tick(self) -> None:
        """One cancellation poll (called via :func:`checkpoint`)."""
        self._ticks += 1
        if self.on_tick is not None:
            self.on_tick(self._ticks)
        if self._ticks % self.stride == 0:
            self.check_now()

    def check_now(self) -> None:
        """Read the clock and raise if any active budget is exhausted."""
        now = self.clock()
        if self.job_budget_s is not None and self._job_start is not None:
            elapsed = now - self._job_start
            if elapsed > self.job_budget_s:
                event(
                    "watchdog.timeout",
                    lane="watchdog",
                    stage=self._stage,
                    scope="job",
                    budget_s=self.job_budget_s,
                    elapsed_s=elapsed,
                )
                raise StageTimeoutError(
                    self._stage, "job", self.job_budget_s, elapsed
                )
        budget = self.stage_budgets.get(self._stage, self.stage_budget_s)
        if budget is not None and self._stage_start is not None:
            elapsed = now - self._stage_start
            if elapsed > budget:
                event(
                    "watchdog.timeout",
                    lane="watchdog",
                    stage=self._stage,
                    scope="stage",
                    budget_s=budget,
                    elapsed_s=elapsed,
                )
                raise StageTimeoutError(self._stage, "stage", budget, elapsed)

    @property
    def ticks(self) -> int:
        """Total cancellation polls observed (test/diagnostic aid)."""
        return self._ticks
