"""Crash-tolerant job journal: content-hashed stage-boundary records.

Layout of a job directory::

    <job>/
      job.json            immutable job configuration (written once)
      MANIFEST            append-only index: "<seq> <stage> <file> <sha256>"
      MANIFEST.lock       advisory exclusive runner lock (flock)
      records/<file>      one JSON record per journaled stage boundary
      decisions.jsonl     append-only retry/degradation decision log

Every record file is named and indexed by the SHA-256 of its exact
byte content, so a record that was being written when the process died
(``kill -9``) can never be mistaken for a valid resume point: loading
validates each manifest entry against the file's hash and stops at the
first entry that fails — everything before it is a consistent prefix.
Record files and ``job.json`` are written via write-to-temp + fsync +
atomic rename; manifest lines are appended and fsynced only *after*
the record they reference is durable, so the manifest never points at
a record that is not fully on disk.

The journal stores *payloads*; what goes into a stage-boundary payload
(platform snapshot, k-mer table, graph, ...) is decided by
:mod:`repro.runtime.jobs`.  This module also provides the pure-data
serializers for the assembly objects a payload embeds (de Bruijn
graph, contigs, scaffolds) — the platform itself snapshots through
:meth:`repro.core.platform.PimAssembler.state_dict`.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

try:  # pragma: no cover - POSIX only; the lock degrades to a no-op
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.errors import JournalError, JournalLockedError
from repro.observability.metrics import inc, observe
from repro.observability.spans import event

__all__ = [
    "JobJournal",
    "JournalLock",
    "RecordRef",
    "graph_state",
    "graph_from_state",
    "contigs_state",
    "contigs_from_state",
    "scaffolds_state",
    "scaffolds_from_state",
]

#: version 2: platform snapshots carry packed uint64 ``"words"``
#: (columnar storage); version-1 journals (unpacked ``"bits"``) are
#: still restorable — the platform's ``from_state`` handles both.
#: Format-2 snapshots additionally embed a per-sub-array ``"sha256"``
#: over the word bytes, which ``from_state`` verifies when present:
#: the manifest hash proves the *record file* arrived intact, the
#: embedded digest proves the *stored rows inside it* did not rot or
#: get tampered with between write and resume (JournalError on
#: mismatch).  Older digest-free records restore without the check.
JOURNAL_VERSION = 2
SUPPORTED_JOURNAL_VERSIONS = (1, 2)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write bytes durably: temp file + fsync + rename into place."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@dataclass(frozen=True)
class RecordRef:
    """One validated manifest entry."""

    seq: int
    stage: str
    filename: str
    sha256: str


class JournalLock:
    """Advisory exclusive lock guarding a journal's MANIFEST.

    Two live runners pointed at the same job directory would interleave
    manifest appends and record writes; the second acquirer gets a
    typed :class:`~repro.errors.JournalLockedError` instead.  The lock
    is an ``flock`` on ``MANIFEST.lock``, which the kernel releases
    when the holding process dies — including ``kill -9`` — so a
    crashed job never leaves a stale lock behind and stays resumable.
    On platforms without :mod:`fcntl` the lock degrades to a no-op.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.path = self.root / "MANIFEST.lock"
        self._fd: "int | None" = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> None:
        """Take the lock, or raise :class:`JournalLockedError`."""
        if self._fd is not None:
            raise JournalLockedError(
                str(self.root), f"lock on {self.root} is already held"
            )
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._fd = -1
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise JournalLockedError(str(self.root))
        self._fd = fd

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if fd >= 0:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    @contextmanager
    def holding(self) -> Iterator["JournalLock"]:
        self.acquire()
        try:
            yield self
        finally:
            self.release()


class JobJournal:
    """The on-disk journal of one assembly job."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.records_dir = self.root / "records"
        self.manifest_path = self.root / "MANIFEST"
        self.config_path = self.root / "job.json"
        self.decisions_path = self.root / "decisions.jsonl"

    def lock(self) -> JournalLock:
        """A fresh exclusive runner lock for this journal directory."""
        return JournalLock(self.root)

    # ----- creation ---------------------------------------------------------

    @property
    def exists(self) -> bool:
        return self.config_path.is_file()

    def create(self, config: dict) -> None:
        """Initialise a fresh job directory with an immutable config."""
        if self.exists:
            raise JournalError(
                f"job journal already exists at {self.root}; pass --resume "
                "to continue it or choose a fresh --job-dir"
            )
        self.records_dir.mkdir(parents=True, exist_ok=True)
        payload = dict(config)
        payload["journal_version"] = JOURNAL_VERSION
        _atomic_write(
            self.config_path,
            json.dumps(payload, sort_keys=True, indent=1).encode("ascii"),
        )

    def load_config(self) -> dict:
        if not self.exists:
            raise JournalError(f"no job journal at {self.root}")
        try:
            config = json.loads(self.config_path.read_text(encoding="ascii"))
        except (ValueError, OSError) as exc:
            raise JournalError(f"unreadable job.json in {self.root}: {exc}")
        if config.get("journal_version") not in SUPPORTED_JOURNAL_VERSIONS:
            raise JournalError(
                f"journal version {config.get('journal_version')!r} in "
                f"{self.root} is not supported "
                f"(expected one of {SUPPORTED_JOURNAL_VERSIONS})"
            )
        return config

    # ----- appending --------------------------------------------------------

    def append(self, stage: str, payload: dict) -> RecordRef:
        """Durably journal one stage boundary; returns its manifest ref."""
        if not stage or any(ch.isspace() for ch in stage):
            raise ValueError(f"invalid stage name {stage!r}")
        data = json.dumps(payload, sort_keys=True).encode("ascii")
        digest = _sha256(data)
        seq = len(self._manifest_lines())
        filename = f"{seq:04d}-{stage}.{digest[:12]}.json"
        self.records_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.records_dir / filename, data)
        line = f"{seq} {stage} {filename} {digest}\n"
        with open(self.manifest_path, "a", encoding="ascii") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        inc("job.checkpoint.bytes", len(data))
        inc("job.checkpoints")
        observe("job.checkpoint.record_bytes", len(data))
        event(
            "journal.append",
            lane="job",
            stage=stage,
            seq=seq,
            bytes=len(data),
        )
        return RecordRef(seq=seq, stage=stage, filename=filename, sha256=digest)

    def log_decision(self, decision: dict) -> None:
        """Append one retry/degradation decision (informational log)."""
        with open(self.decisions_path, "a", encoding="ascii") as handle:
            handle.write(json.dumps(decision, sort_keys=True) + "\n")

    def decisions(self) -> list[dict]:
        if not self.decisions_path.is_file():
            return []
        out = []
        for line in self.decisions_path.read_text(encoding="ascii").splitlines():
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # torn final append
        return out

    # ----- reading ----------------------------------------------------------

    def _manifest_lines(self) -> list[str]:
        if not self.manifest_path.is_file():
            return []
        return self.manifest_path.read_text(encoding="ascii").splitlines()

    def records(self) -> list[RecordRef]:
        """Validated manifest entries — the longest consistent prefix.

        A torn manifest line, a missing record file, or a record whose
        bytes no longer hash to the indexed digest ends the prefix; the
        entries before it remain valid resume points.
        """
        refs: list[RecordRef] = []
        for line in self._manifest_lines():
            parts = line.split()
            if len(parts) != 4:
                break
            try:
                seq = int(parts[0])
            except ValueError:
                break
            stage, filename, digest = parts[1], parts[2], parts[3]
            if seq != len(refs):
                break
            path = self.records_dir / filename
            try:
                data = path.read_bytes()
            except OSError:
                break
            if _sha256(data) != digest:
                break
            refs.append(
                RecordRef(seq=seq, stage=stage, filename=filename, sha256=digest)
            )
        return refs

    def load(self, ref: RecordRef) -> dict:
        data = (self.records_dir / ref.filename).read_bytes()
        if _sha256(data) != ref.sha256:
            raise JournalError(f"record {ref.filename} failed its hash check")
        return json.loads(data)

    def latest(self) -> "tuple[RecordRef, dict] | None":
        """The newest valid record and its payload, or ``None``."""
        refs = self.records()
        if not refs:
            return None
        return refs[-1], self.load(refs[-1])


# ----- assembly-object serializers ------------------------------------------


def graph_state(graph) -> dict:
    """Serialize a de Bruijn graph preserving node *and* edge order.

    Iteration order of the adjacency map feeds straight into contig
    naming and traversal order, so the round trip keeps both the node
    insertion order and each source's edge list order byte-exact.
    """
    return {
        "k": graph.k,
        "nodes": list(graph.nodes()),
        "edges": [
            [edge.source, edge.target, edge.kmer, edge.count]
            for edge in graph.edges()
        ],
    }


def graph_from_state(state: dict):
    from repro.assembly.debruijn import DeBruijnGraph, Edge

    graph = DeBruijnGraph(k=int(state["k"]))
    for node in state["nodes"]:
        graph._adjacency[int(node)] = []
    for source, target, kmer, count in state["edges"]:
        edge = Edge(
            source=int(source),
            target=int(target),
            kmer=int(kmer),
            count=int(count),
        )
        graph._adjacency.setdefault(edge.source, []).append(edge)
        graph._adjacency.setdefault(edge.target, [])
        graph._out_degree[edge.source] += 1
        graph._in_degree[edge.target] += 1
        graph._edge_count += 1
    return graph


def contigs_state(contigs: Iterable) -> list:
    return [[c.name, str(c.sequence), c.edge_count] for c in contigs]


def contigs_from_state(items: Iterable) -> list:
    from repro.assembly.contigs import Contig
    from repro.genome.sequence import DnaSequence

    return [
        Contig(name=name, sequence=DnaSequence(seq), edge_count=int(edges))
        for name, seq, edges in items
    ]


def scaffolds_state(scaffolds: Iterable) -> list:
    return [[s.name, str(s.sequence), list(s.members)] for s in scaffolds]


def scaffolds_from_state(items: Iterable) -> list:
    from repro.assembly.scaffold import Scaffold
    from repro.genome.sequence import DnaSequence

    return [
        Scaffold(
            name=name, sequence=DnaSequence(seq), members=tuple(members)
        )
        for name, seq, members in items
    ]
