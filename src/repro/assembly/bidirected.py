"""Bidirected de Bruijn assembly (strand-aware extension).

The paper's pipeline is forward-only: its simulated reads all come from
one strand.  Real libraries mix strands, and the CPU assemblers the
paper cites (Velvet and the "bidirected deBruijn graph model") handle
that by collapsing each k-mer with its reverse complement into one
**canonical** key and tracking orientations on the edges.

Model:

* a node is a canonical (k-1)-mer; visiting it in orientation ``+``
  spells the canonical text, in orientation ``-`` its reverse
  complement;
* each canonical k-mer contributes one bidirected edge between its
  prefix node and suffix node, annotated with the orientations the
  *forward* spelling of that k-mer induces; traversing the edge
  backwards flips both orientations;
* unitigs are maximal paths through (node, orientation) states with a
  unique continuation on both sides — each edge used once in either
  direction.

For strand-mixed reads of an (assumed repeat-free at (k-1) level)
region, spelling these unitigs recovers the reference up to strand —
verified against :func:`repro.assembly.reference_impl.assemble` on
forward-only input in the tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.assembly.contigs import Contig
from repro.genome.alphabet import BITS_PER_BASE
from repro.genome.kmer import iter_kmers, pack_kmer, unpack_kmer
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence


def _canonical_packed(packed: int, bases: int) -> tuple[int, bool]:
    """(canonical key, flipped?) of a packed (k or k-1)-mer."""
    seq = unpack_kmer(packed, bases)
    rc = seq.reverse_complement()
    rc_packed = pack_kmer(rc)
    if rc_packed < packed:
        return rc_packed, True
    return packed, False


@dataclass(frozen=True)
class BiEdge:
    """One bidirected edge (a canonical k-mer).

    ``source``/``target`` are canonical node keys;
    ``source_flip``/``target_flip`` say whether the forward spelling of
    the k-mer visits that node in its reverse-complement orientation.
    """

    source: int
    source_flip: bool
    target: int
    target_flip: bool
    kmer: int
    count: int


@dataclass
class BidirectedDeBruijnGraph:
    """De Bruijn graph over canonical (k-1)-mer nodes."""

    k: int
    _edges: list[BiEdge] = field(default_factory=list)
    #: (node, orientation) -> [(edge index, traversed forward?)]
    _out: dict[tuple[int, bool], list[tuple[int, bool]]] = field(
        default_factory=dict
    )
    _nodes: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("bidirected construction needs k >= 2")

    @property
    def node_bases(self) -> int:
        return self.k - 1

    # ----- construction ---------------------------------------------------------

    def add_canonical_kmer(self, canonical_packed: int, count: int = 1) -> BiEdge:
        """Insert one canonical k-mer as a bidirected edge."""
        if count <= 0:
            raise ValueError("count must be positive")
        node_bits = BITS_PER_BASE * self.node_bases
        mask = (1 << node_bits) - 1
        prefix = canonical_packed >> BITS_PER_BASE
        suffix = canonical_packed & mask
        src, src_flip = _canonical_packed(prefix, self.node_bases)
        dst, dst_flip = _canonical_packed(suffix, self.node_bases)
        edge = BiEdge(
            source=src,
            source_flip=src_flip,
            target=dst,
            target_flip=dst_flip,
            kmer=canonical_packed,
            count=count,
        )
        index = len(self._edges)
        self._edges.append(edge)
        self._nodes.update((src, dst))
        # forward traversal leaves (src, orientation=not flipped ...):
        # leaving `src` spelling the k-mer forward requires being at
        # src in orientation `src_flip == False -> '+'`; flipped means
        # the node text appears reverse-complemented in the k-mer.
        self._out.setdefault((src, src_flip), []).append((index, True))
        # backward traversal: arrive at src having spelt the RC k-mer;
        # it departs from (dst, not dst_flip ... ) — flipping both ends.
        self._out.setdefault((dst, not dst_flip), []).append((index, False))
        return edge

    @classmethod
    def from_counts(
        cls, counts: dict[int, int], k: int, min_count: int = 1
    ) -> "BidirectedDeBruijnGraph":
        """Build from a *canonical* k-mer frequency table."""
        graph = cls(k=k)
        for packed, count in sorted(counts.items()):
            if count >= min_count:
                graph.add_canonical_kmer(packed, count)
        return graph

    # ----- queries -----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[BiEdge]:
        return iter(self._edges)

    def out_states(self, node: int, flipped: bool) -> list[tuple[int, bool]]:
        """Continuations from a (node, orientation) state."""
        return list(self._out.get((node, flipped), []))

    def edge(self, index: int) -> BiEdge:
        return self._edges[index]

    def _step(self, index: int, forward: bool) -> tuple[int, bool]:
        """State reached after traversing edge ``index``."""
        e = self._edges[index]
        if forward:
            return (e.target, e.target_flip)
        return (e.source, not e.source_flip)

    def _oriented_text(self, node: int, flipped: bool) -> str:
        seq = unpack_kmer(node, self.node_bases)
        return str(seq.reverse_complement() if flipped else seq)

    # ----- unitigs ----------------------------------------------------------------------

    def unitigs(self) -> list[DnaSequence]:
        """Maximal unambiguous bidirected paths, spelled out.

        Each edge is consumed exactly once (in one direction); paths
        extend while the current state has exactly one unused
        continuation and the next state has exactly one way in.
        """
        used = [False] * len(self._edges)
        sequences: list[DnaSequence] = []

        # Incoming-flow count per (node, orientation) state: how many
        # edge traversals arrive there.
        incoming: Counter = Counter()
        for e in self._edges:
            incoming[(e.target, e.target_flip)] += 1
            incoming[(e.source, not e.source_flip)] += 1

        def unused_out(state: tuple[int, bool]) -> list[tuple[int, bool]]:
            return [
                (i, fwd)
                for i, fwd in self._out.get(state, [])
                if not used[i]
            ]

        def is_simple(state: tuple[int, bool]) -> bool:
            """Strict unitig interior: exactly one way in, one way out
            — judged on the full graph, not on what remains unused, so
            a walk never crosses a real junction just because the
            competing edge was consumed by an earlier walk."""
            return (
                incoming.get(state, 0) == 1
                and len(self._out.get(state, [])) == 1
            )

        def walk(start_edge: int, forward: bool) -> str:
            e = self._edges[start_edge]
            state = (e.source, e.source_flip) if forward else (
                e.target, not e.target_flip
            )
            text = self._oriented_text(*state)
            index, fwd = start_edge, forward
            while True:
                used[index] = True
                state = self._step(index, fwd)
                text += self._oriented_text(*state)[-1]
                if not is_simple(state):
                    break
                nxt = unused_out(state)
                if len(nxt) != 1:
                    break
                index, fwd = nxt[0]
            return text

        def is_path_start(state: tuple[int, bool]) -> bool:
            """A state nothing flows into uniquely: a true path start."""
            return (
                incoming.get(state, 0) != 1
                or len(self._out.get(state, [])) > 1
            )

        # Pass 1: walks beginning at genuine path starts, in both
        # traversal directions of every edge.
        for index, e in enumerate(self._edges):
            for fwd, state in (
                (True, (e.source, e.source_flip)),
                (False, (e.target, not e.target_flip)),
            ):
                if not used[index] and is_path_start(state):
                    sequences.append(DnaSequence(walk(index, fwd)))
        # Pass 2: leftover simple cycles.
        for index in range(len(self._edges)):
            if not used[index]:
                sequences.append(DnaSequence(walk(index, True)))
        return sequences


class CanonicalKmerCounter:
    """Strand-collapsing software k-mer counter."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._counts: Counter = Counter()

    def add_sequence(self, sequence: DnaSequence) -> None:
        for kmer in iter_kmers(sequence, self.k):
            canon, _ = _canonical_packed(pack_kmer(kmer), self.k)
            self._counts[canon] += 1

    def add_reads(self, reads: Iterable[Read]) -> None:
        for read in reads:
            self.add_sequence(read.sequence)

    def counts(self) -> Counter:
        return Counter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)


class PimCanonicalKmerCounter:
    """Canonical k-mer counting on the PIM functional simulator.

    Strand collapsing happens at ingest (the controller canonicalises
    the query before writing the temp row — a cheap host-side
    min(key, revcomp) on 2k bits); storage, comparison and counting
    then run through the ordinary PIM hash-table protocol, so the
    bidirected pipeline inherits the paper's in-memory acceleration
    unchanged.
    """

    def __init__(self, pim, k: int) -> None:
        from repro.assembly.hashmap import PimKmerCounter

        self.k = k
        self._inner = PimKmerCounter(pim, k)

    def add_sequence(self, sequence: DnaSequence) -> None:
        for kmer in iter_kmers(sequence, self.k):
            __, flipped = _canonical_packed(pack_kmer(kmer), self.k)
            canon = kmer.reverse_complement() if flipped else kmer
            self._inner.add_kmer(canon)

    def add_reads(self, reads: Iterable[Read]) -> None:
        for read in reads:
            self.add_sequence(read.sequence)

    def counts(self) -> Counter:
        return self._inner.counts()

    def __len__(self) -> int:
        return len(self._inner)


def assemble_bidirected(
    reads: "Iterable[Read] | list[DnaSequence]",
    k: int,
    min_count: int = 1,
    min_contig_length: int = 0,
    pim=None,
) -> list[Contig]:
    """Strand-aware assembly: canonical counting + bidirected unitigs.

    Args:
        pim: optional :class:`~repro.core.platform.PimAssembler` — when
            given, the canonical table is built in-memory on the
            functional simulator instead of the software counter.
    """
    if pim is not None:
        counter = PimCanonicalKmerCounter(pim, k)
    else:
        counter = CanonicalKmerCounter(k)
    for item in reads:
        sequence = item.sequence if isinstance(item, Read) else item
        counter.add_sequence(sequence)
    graph = BidirectedDeBruijnGraph.from_counts(
        counter.counts(), k=k, min_count=min_count
    )
    contigs = [
        Contig(name=f"contig{i}", sequence=seq, edge_count=max(1, len(seq) - k + 2))
        for i, seq in enumerate(
            sorted(graph.unitigs(), key=len, reverse=True)
        )
        if len(seq) >= min_contig_length
    ]
    return contigs
