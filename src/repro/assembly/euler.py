"""Stage 2b — graph traversal: Eulerian paths and unitigs.

The paper's ``Traverse(G)`` procedure computes every vertex's in/out
degree with bulk ``PIM_Add`` operations, picks the start vertex, and
runs Fleury's algorithm for the Euler path.  This module implements:

* :func:`eulerian_path` — Hierholzer's algorithm (linear time; the
  production traversal),
* :func:`fleury_path` — Fleury's algorithm exactly as the paper's
  pseudo-code names it (quadratic; kept for fidelity and used by the
  tests as a cross-check on small graphs),
* :func:`unitigs` — maximal non-branching paths, the contig-safe
  decomposition used when the graph has ambiguous branching (repeats).

All of them consume :class:`~repro.assembly.debruijn.DeBruijnGraph`
and treat each distinct k-mer as one traversable edge.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterator

from repro.assembly.debruijn import DeBruijnGraph, Edge
from repro.runtime.watchdog import checkpoint


def find_start_node(graph: DeBruijnGraph, component: set[int]) -> int:
    """The Euler-path start vertex of one component.

    A node with ``out - in == 1`` if one exists (open trail), otherwise
    any node with outgoing edges (closed tour).
    """
    start_candidates = [
        node
        for node in component
        if graph.out_degree(node) - graph.in_degree(node) == 1
    ]
    if start_candidates:
        return min(start_candidates)
    with_out = [n for n in component if graph.out_degree(n) > 0]
    if not with_out:
        raise ValueError("component has no edges")
    return min(with_out)


def has_eulerian_path(graph: DeBruijnGraph, component: set[int]) -> bool:
    """Euler-trail feasibility test for one weakly connected component."""
    plus_one = minus_one = 0
    for node in component:
        delta = graph.out_degree(node) - graph.in_degree(node)
        if delta == 1:
            plus_one += 1
        elif delta == -1:
            minus_one += 1
        elif delta != 0:
            return False
    return (plus_one, minus_one) in ((0, 0), (1, 1))


def eulerian_path(graph: DeBruijnGraph, component: set[int] | None = None) -> list[Edge]:
    """Hierholzer's algorithm over one component (default: whole graph).

    Raises:
        ValueError: if the component admits no Eulerian trail.
    """
    if component is None:
        components = graph.connected_components()
        if len(components) != 1:
            raise ValueError(
                f"graph has {len(components)} components; traverse each "
                "separately (see eulerian_paths)"
            )
        component = components[0]
    if not has_eulerian_path(graph, component):
        raise ValueError("component has no Eulerian trail")

    next_index: dict[int, int] = defaultdict(int)
    out_lists = {node: graph.out_edges(node) for node in component}
    start = find_start_node(graph, component)

    stack: list[int] = [start]
    edge_stack: list[Edge] = []
    trail: list[Edge] = []
    while stack:
        checkpoint()  # per-step cancellation point (Hierholzer walk)
        node = stack[-1]
        edges = out_lists.get(node, [])
        if next_index[node] < len(edges):
            edge = edges[next_index[node]]
            next_index[node] += 1
            stack.append(edge.target)
            edge_stack.append(edge)
        else:
            stack.pop()
            if edge_stack:
                trail.append(edge_stack.pop())
    trail.reverse()

    total_edges = sum(len(graph.out_edges(n)) for n in component)
    if len(trail) != total_edges:
        raise ValueError("component is not edge-connected; no single trail")
    return trail


def eulerian_paths(graph: DeBruijnGraph) -> list[list[Edge]]:
    """One Eulerian trail per weakly connected component."""
    trails = []
    for component in graph.connected_components():
        if any(graph.out_degree(n) for n in component):
            trails.append(eulerian_path(graph, component))
    return trails


def fleury_path(graph: DeBruijnGraph, component: set[int] | None = None) -> list[Edge]:
    """Fleury's algorithm (paper Fig. 5c names it explicitly).

    Never crosses a bridge unless forced.  O(E^2); intended for small
    graphs and as a test oracle against :func:`eulerian_path`.
    """
    if component is None:
        components = graph.connected_components()
        if len(components) != 1:
            raise ValueError("fleury_path expects a single component")
        component = components[0]
    if not has_eulerian_path(graph, component):
        raise ValueError("component has no Eulerian trail")

    remaining: dict[int, list[Edge]] = {
        node: graph.out_edges(node) for node in component
    }
    used: set[int] = set()  # id()s of consumed Edge objects

    # Pre-index reverse adjacency for the undirected reachability.
    reverse: dict[int, list[Edge]] = defaultdict(list)
    for node in component:
        for edge in remaining[node]:
            reverse[edge.target].append(edge)

    def undirected_reach(start: int) -> int:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for edge in remaining.get(node, []) + reverse.get(node, []):
                if id(edge) in used:
                    continue
                for nxt in (edge.target, edge.source):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
        return len(seen)

    node = find_start_node(graph, component)
    trail: list[Edge] = []
    total_edges = sum(len(remaining[n]) for n in component)
    for _ in range(total_edges):
        checkpoint()  # per-edge cancellation point (Fleury walk)
        candidates = [e for e in remaining[node] if id(e) not in used]
        if not candidates:
            raise ValueError("stuck before consuming every edge")
        chosen = None
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            before = undirected_reach(node)
            for edge in candidates:
                used.add(id(edge))
                after = undirected_reach(node)
                used.discard(id(edge))
                if after >= before - 1 and after >= 1:
                    # not a bridge (removal keeps the rest reachable)
                    if after == before:
                        chosen = edge
                        break
            if chosen is None:
                chosen = candidates[0]
        used.add(id(chosen))
        trail.append(chosen)
        node = chosen.target
    return trail


def unitigs(graph: DeBruijnGraph) -> list[list[Edge]]:
    """Maximal non-branching paths (the contig-safe decomposition).

    Every edge appears in exactly one unitig.  Paths start at branching
    nodes (or cycle entry points) and extend while the interior nodes
    are simple (in = out = 1).
    """
    consumed: set[int] = set()
    paths: list[list[Edge]] = []

    def extend_from(edge: Edge) -> list[Edge]:
        checkpoint()  # per-path cancellation point (unitig extension)
        path = [edge]
        consumed.add(id(edge))
        node = edge.target
        while not graph.is_branching(node):
            nxt = [e for e in graph.out_edges(node) if id(e) not in consumed]
            if not nxt:
                break
            follow = nxt[0]
            if follow.target == follow.source and graph.out_degree(node) == 1:
                pass  # self-loop at a simple node; still consume it
            path.append(follow)
            consumed.add(id(follow))
            node = follow.target
            if node == edge.source and not graph.is_branching(node):
                break  # closed an isolated cycle
        return path

    # First pass: paths starting at branching nodes.
    for node in graph.nodes():
        if graph.is_branching(node):
            for edge in graph.out_edges(node):
                if id(edge) not in consumed:
                    paths.append(extend_from(edge))
    # Second pass: isolated simple cycles.
    for node in graph.nodes():
        for edge in graph.out_edges(node):
            if id(edge) not in consumed:
                paths.append(extend_from(edge))
    return paths


def degree_table(graph: DeBruijnGraph) -> dict[int, tuple[int, int]]:
    """node -> (in_degree, out_degree): the quantity the paper's
    traversal computes with bulk PIM_Add over adjacency rows (Fig. 8)."""
    return {
        node: (graph.in_degree(node), graph.out_degree(node))
        for node in graph.nodes()
    }


def degree_table_pim(
    pim,
    graph: DeBruijnGraph,
    subarray_key: tuple[int, int, int] = (0, 0, 0),
    engine: str = "scalar",
) -> dict[int, tuple[int, int]]:
    """:func:`degree_table` computed on the accelerator (Fig. 8).

    Runs the in-memory adjacency column sums —
    :func:`repro.mapping.adjacency.degree_vectors_pim` — under either
    execution engine and folds the two vectors into the traversal's
    degree table.  The tests assert it agrees with the pure-graph
    :func:`degree_table` under both engines.
    """
    from repro.mapping.adjacency import degree_vectors_pim

    in_deg, out_deg = degree_vectors_pim(
        pim, graph, subarray_key, engine=engine
    )
    return {node: (in_deg[node], out_deg[node]) for node in graph.nodes()}


def path_edge_multiset(path: list[Edge]) -> Counter:
    """Multiset of k-mers along a path (test invariant helper)."""
    return Counter(edge.kmer for edge in path)


def iter_path_nodes(path: list[Edge]) -> Iterator[int]:
    """Nodes visited along a path, including the start node."""
    if not path:
        return
    yield path[0].source
    for edge in path:
        yield edge.target
