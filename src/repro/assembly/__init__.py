"""Genome assembly algorithms, PIM-mapped and software golden models.

Extensions beyond the paper's pipeline: bidirected (strand-aware)
assembly, spectral read error correction, and mate-pair scaffolding.
"""

from repro.assembly.bidirected import (
    BidirectedDeBruijnGraph,
    CanonicalKmerCounter,
    PimCanonicalKmerCounter,
    assemble_bidirected,
)
from repro.assembly.correction import (
    CorrectionResult,
    SpectralCorrector,
    correct_reads,
)
from repro.assembly.simplify import (
    SimplifyStats,
    clip_tips,
    pop_bubbles,
    simplify_graph,
)
from repro.assembly.mate_scaffold import (
    ContigLink,
    MateScaffold,
    build_scaffolds,
    link_contigs,
    scaffold_assembly,
)
from repro.assembly.contigs import (
    Contig,
    assemble_contigs,
    contigs_from_paths,
    spell_path,
)
from repro.assembly.debruijn import DeBruijnGraph, Edge, build_graph_from_sequences
from repro.assembly.euler import (
    degree_table,
    eulerian_path,
    eulerian_paths,
    find_start_node,
    fleury_path,
    has_eulerian_path,
    unitigs,
)
from repro.assembly.hashmap import (
    PimKmerCounter,
    SoftwareKmerCounter,
    kmer_partition,
)
from repro.assembly.metrics import (
    AssemblyReport,
    evaluate_assembly,
    genome_fraction,
    largest_contig,
    misassembled_contigs,
    n50,
    nx_length,
    total_length,
)
from repro.assembly.pipeline import AssemblyResult, PimPipeline, assemble_with_pim
from repro.assembly.reference_impl import SoftwareAssemblyResult, assemble
from repro.assembly.scaffold import Scaffold, greedy_scaffold, scaffold_n50

__all__ = [
    "BidirectedDeBruijnGraph",
    "CanonicalKmerCounter",
    "PimCanonicalKmerCounter",
    "assemble_bidirected",
    "CorrectionResult",
    "SpectralCorrector",
    "correct_reads",
    "SimplifyStats",
    "clip_tips",
    "pop_bubbles",
    "simplify_graph",
    "ContigLink",
    "MateScaffold",
    "build_scaffolds",
    "link_contigs",
    "scaffold_assembly",
    "Contig",
    "assemble_contigs",
    "contigs_from_paths",
    "spell_path",
    "DeBruijnGraph",
    "Edge",
    "build_graph_from_sequences",
    "degree_table",
    "eulerian_path",
    "eulerian_paths",
    "find_start_node",
    "fleury_path",
    "has_eulerian_path",
    "unitigs",
    "PimKmerCounter",
    "SoftwareKmerCounter",
    "kmer_partition",
    "AssemblyReport",
    "evaluate_assembly",
    "genome_fraction",
    "largest_contig",
    "misassembled_contigs",
    "n50",
    "nx_length",
    "total_length",
    "AssemblyResult",
    "PimPipeline",
    "assemble_with_pim",
    "SoftwareAssemblyResult",
    "assemble",
    "Scaffold",
    "greedy_scaffold",
    "scaffold_n50",
]
