"""Contig spelling: turning graph paths back into sequences.

A path of edges ``(n0 -> n1 -> ... -> nm)`` over (k-1)-mer nodes spells
the sequence ``n0`` followed by the last base of every subsequent node
— the standard de Bruijn path-to-sequence rule (paper Fig. 5c's
Contig-I/II/III example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly.debruijn import DeBruijnGraph, Edge
from repro.assembly.euler import eulerian_paths, unitigs
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class Contig:
    """One assembled contig."""

    name: str
    sequence: DnaSequence
    edge_count: int

    def __len__(self) -> int:
        return len(self.sequence)


def spell_path(graph: DeBruijnGraph, path: list[Edge]) -> DnaSequence:
    """Spell the sequence of a non-empty edge path."""
    if not path:
        raise ValueError("cannot spell an empty path")
    for prev, nxt in zip(path, path[1:]):
        if prev.target != nxt.source:
            raise ValueError("edges do not form a connected path")
    first = graph.node_sequence(path[0].source)
    codes = [np.asarray(first.codes)]
    for edge in path:
        node = graph.node_sequence(edge.target)
        codes.append(np.asarray(node.codes[-1:]))
    return DnaSequence(np.concatenate(codes))


def contigs_from_paths(
    graph: DeBruijnGraph,
    paths: list[list[Edge]],
    min_length: int = 0,
    prefix: str = "contig",
) -> list[Contig]:
    """Spell every path and keep those of at least ``min_length`` bases."""
    contigs = []
    for path in paths:
        if not path:
            continue
        sequence = spell_path(graph, path)
        if len(sequence) >= min_length:
            contigs.append(
                Contig(
                    name=f"{prefix}{len(contigs)}",
                    sequence=sequence,
                    edge_count=len(path),
                )
            )
    contigs.sort(key=len, reverse=True)
    return [
        Contig(name=f"{prefix}{i}", sequence=c.sequence, edge_count=c.edge_count)
        for i, c in enumerate(contigs)
    ]


def assemble_contigs(
    graph: DeBruijnGraph,
    mode: str = "unitig",
    min_length: int = 0,
) -> list[Contig]:
    """Contig generation from a de Bruijn graph.

    Args:
        graph: the k-mer graph.
        mode: ``"unitig"`` (maximal non-branching paths; robust to
            repeats) or ``"euler"`` (one Eulerian trail per component,
            the paper's traversal; requires trail feasibility).
        min_length: drop contigs shorter than this many bases.
    """
    if mode == "unitig":
        paths = unitigs(graph)
    elif mode == "euler":
        paths = eulerian_paths(graph)
    else:
        raise ValueError(f"unknown contig mode {mode!r}")
    return contigs_from_paths(graph, paths, min_length=min_length)
