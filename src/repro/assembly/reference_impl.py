"""Software baseline assembler (the golden model).

A straightforward dictionary-based de Bruijn assembler with no PIM
involvement — the CPU baseline the functional tests compare the
PIM-mapped pipeline against, and the kind of tool (Velvet-style) the
paper describes as the status quo for de novo assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.assembly.contigs import Contig, assemble_contigs
from repro.assembly.debruijn import DeBruijnGraph
from repro.assembly.hashmap import SoftwareKmerCounter
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class SoftwareAssemblyResult:
    """Everything the software pipeline produced."""

    contigs: list[Contig]
    graph: DeBruijnGraph
    kmer_table_size: int


def assemble(
    reads: "Iterable[Read] | Sequence[DnaSequence]",
    k: int,
    min_count: int = 1,
    mode: str = "unitig",
    min_contig_length: int = 0,
    simplify: bool = False,
) -> SoftwareAssemblyResult:
    """End-to-end software assembly.

    Args:
        reads: :class:`Read` objects or raw sequences.
        k: k-mer length.
        min_count: k-mer frequency threshold for graph edges.
        mode: contig extraction mode (``"unitig"`` or ``"euler"``).
        min_contig_length: drop contigs shorter than this.
        simplify: clip tips / pop bubbles before contig extraction.
    """
    counter = SoftwareKmerCounter(k)
    for item in reads:
        sequence = item.sequence if isinstance(item, Read) else item
        counter.add_sequence(sequence)
    graph = DeBruijnGraph.from_counts(counter.counts(), k=k, min_count=min_count)
    if simplify:
        from repro.assembly.simplify import simplify_graph

        graph, _ = simplify_graph(graph)
    contigs = assemble_contigs(graph, mode=mode, min_length=min_contig_length)
    return SoftwareAssemblyResult(
        contigs=contigs, graph=graph, kmer_table_size=len(counter)
    )
