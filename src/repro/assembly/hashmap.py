"""Stage 1 — k-mer analysis: the PIM-friendly Hashmap procedure.

This is the paper's reconstructed ``Hashmap(S, k)`` (Fig. 5b) running on
the functional simulator:

* every k-mer of the input is written to the sub-array's **temp row**
  (``MEM_insert``),
* a **parallel in-memory comparison** (``PIM_XNOR`` + the DPU's AND
  unit, Fig. 7) checks it against stored k-mer rows,
* on a hit, the frequency counter in the value region is updated
  (``PIM_Add``-class update; counter fields are 8-bit packed, so the
  non-bulk variant runs on the MAT's DPU),
* on a miss, the temp row is RowCloned into the next free k-mer row and
  its counter set to 1.

K-mers are distributed over sub-arrays by a hash partition — the
paper's *correlated partitioning*, which keeps every query local to one
sub-array and lets different sub-arrays serve different queries
concurrently.

:class:`SoftwareKmerCounter` is the golden model (a plain dict); the
test suite asserts the PIM path produces identical tables.

Execution engines
=================

``engine="scalar"`` (the default, and the golden model) walks the
Hashmap loop k-mer by k-mer through the controller.  ``engine="bulk"``
batch-inserts each round's k-mers per sub-array through the bulk
bit-plane engine (:mod:`repro.core.bitplane`): slot assignment, scan
lengths and counter evolution are derived with vectorised NumPy over
the whole batch, memory reaches the identical end state, and the
ledger is charged the identical per-mnemonic command counts in one
gang-scheduled batch.  Runs with live compare/copy fault rates replay
the scalar per-op path so the fault RNG stream stays exact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.bitplane import BulkEngine
from repro.core.isa import RowAddress
from repro.core.platform import PimAssembler
from repro.errors import TableFullError
from repro.genome.kmer import (
    iter_kmers,
    kmer_to_row_bits,
    pack_kmer,
    packed_kmers_array,
    packed_to_row_bits,
    unpack_kmer,
)
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence
from repro.mapping.hashing import kmer_partition, kmer_partition_array
from repro.mapping.kmer_layout import KmerLayout, scaled_layout
from repro.runtime.watchdog import checkpoint

__all__ = [
    "PimKmerCounter",
    "SoftwareKmerCounter",
    "kmer_partition",
]


@dataclass
class _SubarrayTable:
    """Host-side metadata of one sub-array's table region."""

    key: tuple[int, int, int]
    layout: KmerLayout
    occupied: int = 0


class SoftwareKmerCounter:
    """Golden-model k-mer counter (plain dictionary)."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._counts: Counter = Counter()

    def add_sequence(self, sequence: DnaSequence) -> None:
        for kmer in iter_kmers(sequence, self.k):
            self._counts[pack_kmer(kmer)] += 1

    def add_reads(self, reads: Iterable[Read]) -> None:
        for read in reads:
            self.add_sequence(read.sequence)

    def counts(self) -> Counter:
        return Counter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)


class PimKmerCounter:
    """The Hashmap procedure on the PIM-Assembler functional simulator.

    Args:
        pim: the platform instance (owns timing/energy accounting).
        k: k-mer length; ``2k`` must fit one row (k <= 128 bases at 256
            columns).
        subarray_keys: which sub-arrays hold table partitions; defaults
            to every sub-array of the device.
        saturating: clamp counters at the 8-bit maximum instead of
            raising (real hardware saturates; the golden-model
            comparison requires counts below the limit).
        engine: ``"scalar"`` (per-op golden model) or ``"bulk"``
            (batched bit-plane execution; identical tables, end state
            and command counts, gang-scheduled time).
    """

    def __init__(
        self,
        pim: PimAssembler,
        k: int,
        subarray_keys: Sequence[tuple[int, int, int]] | None = None,
        saturating: bool = True,
        engine: str = "scalar",
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if engine not in ("scalar", "bulk"):
            raise ValueError("engine must be 'scalar' or 'bulk'")
        geometry = pim.geometry.bank.mat.subarray
        layout = scaled_layout(geometry)
        if k > layout.max_kmer_bases:
            raise ValueError(
                f"k={k} needs {2 * k} bit lines; rows have {geometry.cols}"
            )
        self.pim = pim
        self.k = k
        self.saturating = saturating
        self.engine = engine
        self._bulk = BulkEngine(pim) if engine == "bulk" else None
        # default to the *usable* sub-arrays: partitions never land on
        # storage the resilience engine already quarantined
        keys = (
            list(subarray_keys)
            if subarray_keys is not None
            else pim.usable_subarray_keys()
        )
        if not keys:
            raise ValueError("at least one sub-array is required")
        self._tables = [_SubarrayTable(key=key, layout=layout) for key in keys]
        #: per-partition slot -> packed k-mer (host shadow for readback
        #: ordering only; matching is done in-memory).
        self._slot_keys: list[list[int]] = [[] for _ in keys]
        self._valid_bits = 2 * k
        self._mask = np.zeros(geometry.cols, dtype=np.uint8)
        self._mask[: self._valid_bits] = 1

    # ----- addressing helpers ---------------------------------------------------

    def _addr(self, table: _SubarrayTable, row: int) -> RowAddress:
        bank, mat, sub = table.key
        return RowAddress(bank=bank, mat=mat, subarray=sub, row=row)

    @property
    def partitions(self) -> int:
        return len(self._tables)

    @property
    def layout(self) -> KmerLayout:
        return self._tables[0].layout

    # ----- the Hashmap procedure ---------------------------------------------------

    def add_kmer(self, kmer: DnaSequence) -> None:
        """One iteration of the Hashmap loop (Fig. 5b)."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {len(kmer)} bases")
        self._add_packed_scalar(pack_kmer(kmer), kmer)

    def _add_packed_scalar(
        self, packed: int, kmer: DnaSequence | None = None
    ) -> None:
        checkpoint()  # per-k-mer cancellation point (hashmap inner loop)
        if kmer is None:
            kmer = unpack_kmer(packed, self.k)
        table = self._tables[kmer_partition(packed, self.partitions)]
        ctrl = self.pim.controller
        layout = table.layout

        # MEM_insert the query into the temp region.
        temp = self._addr(table, layout.temp_row(0))
        bits = kmer_to_row_bits(kmer, self.pim.row_bits)
        ctrl.write_row(temp, bits)

        # Parallel in-memory comparison against the occupied k-mer rows
        # (PIM_XNOR + DPU AND reduce, Fig. 7); the scan stops at the
        # first match, as the DPU's outcome gates the next command.
        match_slot = ctrl.compare_scan(
            temp,
            start_row=layout.kmer_row(0) if table.occupied else 0,
            n_rows=table.occupied,
            valid_bits=self._valid_bits,
        )

        if match_slot is not None:
            self._increment(table, match_slot)
        else:
            self._insert_new(table, temp, packed)

    def add_sequence(self, sequence: DnaSequence) -> None:
        if self._bulk is not None:
            packed = packed_kmers_array(sequence, self.k)
            if packed.size:
                self._add_packed_bulk(packed)
            return
        for kmer in iter_kmers(sequence, self.k):
            self.add_kmer(kmer)

    def add_sequences(self, sequences: "Sequence[DnaSequence]") -> None:
        """Insert many sequences as ONE bulk round (scalar: k-mer loop).

        Arrival order is the concatenation order, identical to calling
        :meth:`add_sequence` per item — so tables, contigs and command
        counts match; only the bulk gang schedule (time) coarsens.
        """
        if self._bulk is not None:
            arrays = [packed_kmers_array(seq, self.k) for seq in sequences]
            arrays = [arr for arr in arrays if arr.size]
            if arrays:
                self._add_packed_bulk(np.concatenate(arrays))
            return
        for sequence in sequences:
            self.add_sequence(sequence)

    def add_reads(self, reads: Iterable[Read]) -> None:
        if self._bulk is not None:
            arrays = [
                packed_kmers_array(read.sequence, self.k) for read in reads
            ]
            arrays = [arr for arr in arrays if arr.size]
            if arrays:
                # one batch per round: per-partition arrival order is
                # the global read order, exactly as the scalar loop
                self._add_packed_bulk(np.concatenate(arrays))
            return
        for read in reads:
            self.add_sequence(read.sequence)

    # ----- the bulk path ---------------------------------------------------------

    def _add_packed_bulk(self, packed: np.ndarray) -> None:
        """Batch-insert a round of packed k-mers per sub-array.

        The scalar loop's observable behaviour is reproduced exactly:
        slot assignment follows first arrival, scan lengths follow the
        stop-at-first-match protocol, counters saturate per hit, and
        the ledger receives the identical command counts — charged as
        one gang-scheduled batch per round instead of op by op.
        """
        checkpoint()  # per-round cancellation point (bulk hashmap path)
        ctrl = self.pim.controller
        faults = ctrl.faults
        if (
            faults is not None
            and faults.enabled
            and (faults.compute2_rate > 0.0 or faults.copy_rate > 0.0)
        ):
            # live scan/copy fault rates: the per-op RNG draw order is
            # part of the contract, so replay the exact scalar path
            for value in packed.tolist():
                self._add_packed_scalar(int(value))
            return
        parts = kmer_partition_array(packed, self.partitions)
        plans = []
        for index in np.unique(parts):
            plan = self._plan_partition(int(index), packed[parts == index])
            if plan is None:
                # some partition would raise (table full / counter
                # overflow) mid-stream; nothing has been applied yet, so
                # replay the whole round through the scalar path and let
                # the error fire at the exact arrival — with the exact
                # partial table state — the golden model produces
                for value in packed.tolist():
                    self._add_packed_scalar(int(value))
                return
            plans.append(plan)
        for plan in plans:
            self._apply_partition(plan)
        self._bulk.flush()

    def _plan_partition(self, index: int, arr: np.ndarray) -> dict | None:
        """Resolve one partition's arrival stream without touching state.

        Returns None when the stream would raise mid-batch, so the
        caller can fall back to the scalar replay before any partition
        has been mutated or charged.
        """
        table = self._tables[index]
        layout = table.layout
        n0 = table.occupied
        existing = self._slot_keys[index]

        uniq, first_idx, inv = np.unique(
            arr, return_index=True, return_inverse=True
        )
        if existing:
            ex = np.asarray(existing, dtype=np.uint64)
            sorter = np.argsort(ex, kind="stable")
            pos = np.searchsorted(ex[sorter], uniq)
            pos_c = np.minimum(pos, ex.size - 1)
            known = ex[sorter][pos_c] == uniq
            uniq_slot = np.where(known, sorter[pos_c], -1).astype(np.int64)
        else:
            uniq_slot = np.full(uniq.size, -1, dtype=np.int64)

        new_uniq = np.flatnonzero(uniq_slot < 0)
        n_new = int(new_uniq.size)
        if n0 + n_new > layout.kmer_rows:
            return None  # would raise TableFullError mid-stream

        # new keys claim slots in first-arrival order
        arrival_order = np.argsort(first_idx[new_uniq], kind="stable")
        uniq_slot[new_uniq[arrival_order]] = n0 + np.arange(n_new)
        slots = uniq_slot[inv]

        is_miss = np.zeros(arr.size, dtype=bool)
        is_miss[first_idx[new_uniq]] = True
        # a miss at insertion slot s scanned all s occupied rows; a hit
        # at slot s stopped after s + 1 rows
        scanned = np.where(is_miss, slots, slots + 1)
        total_scanned = int(scanned.sum())
        n_miss = int(is_miss.sum())
        n_hits = int(arr.size - n_miss)

        # counter evolution: value(key) ends at min(start + hits, max),
        # incrementing (1 DPU add + 1 MEM_WR) only below saturation and
        # reading (1 MEM_RD) on every hit
        occurrences = np.bincount(inv, minlength=uniq.size).astype(np.int64)
        start_vals = np.ones(uniq.size, dtype=np.int64)  # inserts write 1
        for u in np.flatnonzero(uniq_slot < n0):
            start_vals[u] = self._counter_value_raw(table, int(uniq_slot[u]))
        hits_per_key = np.where(uniq_slot < n0, occurrences, occurrences - 1)
        final_vals = np.minimum(start_vals + hits_per_key, layout.counter_max)
        increments = int((final_vals - start_vals).sum())
        if not self.saturating and (
            start_vals + hits_per_key > layout.counter_max
        ).any():
            return None  # would raise OverflowError mid-stream

        return dict(
            index=index,
            arr=arr,
            n0=n0,
            n_new=n_new,
            new_packed=uniq[new_uniq[arrival_order]],
            uniq_slot=uniq_slot,
            final_vals=final_vals,
            scanned=scanned,
            total_scanned=total_scanned,
            n_miss=n_miss,
            n_hits=n_hits,
            increments=increments,
        )

    def _apply_partition(self, plan: dict) -> None:
        """Apply one planned partition batch: state writes + charging."""
        table = self._tables[plan["index"]]
        layout = table.layout
        arr = plan["arr"]
        n0, n_new = plan["n0"], plan["n_new"]
        new_packed = plan["new_packed"]
        uniq_slot, final_vals = plan["uniq_slot"], plan["final_vals"]
        scanned = plan["scanned"]

        # ---- functional end state -------------------------------------
        sub = self.pim.device.subarray_at(table.key)
        bits = sub.raw_bits
        if n_new:
            rows = packed_to_row_bits(new_packed, self.k, self.pim.row_bits)
            bits[layout.kmer_row(n0) : layout.kmer_row(n0) + n_new] = rows
        for u in range(uniq_slot.size):
            self._poke_counter(table, int(uniq_slot[u]), int(final_vals[u]))
        last_bits = packed_to_row_bits(
            arr[-1:], self.k, self.pim.row_bits
        )[0]
        last_scanned = int(scanned[-1])
        last_row = (
            bits[layout.kmer_row(last_scanned - 1)] if last_scanned else None
        )
        self._bulk._finish_scan(sub, layout.temp_row(0), last_bits, last_row)
        table.occupied = n0 + n_new
        self._slot_keys[plan["index"]].extend(
            int(v) for v in new_packed.tolist()
        )

        # ---- charging (identical command counts, one gang batch) -------
        sched = self._bulk.scheduler
        key = table.key
        sched.charge(
            "MEM_WR", key, arr.size + plan["n_miss"] + plan["increments"]
        )
        sched.charge("MEM_RD", key, plan["n_hits"])
        sched.charge("AAP1", key, arr.size + plan["n_miss"])
        sched.fused_compare(key, plan["total_scanned"])
        sched.charge("DPU", key, plan["increments"])
        if self.pim.controller._verifying() is not None:
            self._bulk.charge_verify(plan["total_scanned"])

    def _counter_value_raw(self, table: _SubarrayTable, slot: int) -> int:
        """Uncharged counter read (host-shadow bookkeeping for the bulk
        path; the modeled ``MEM_RD`` per hit is still charged)."""
        row, bit = table.layout.value_position(slot)
        sub = self.pim.device.subarray_at(table.key)
        field = sub.row_view(row)[bit : bit + table.layout.counter_bits]
        return int(field @ (1 << np.arange(table.layout.counter_bits)))

    def _poke_counter(
        self, table: _SubarrayTable, slot: int, value: int
    ) -> None:
        """Uncharged counter write of a batch's final value (the bulk
        path charges the modeled increment commands separately)."""
        row, bit = table.layout.value_position(slot)
        sub = self.pim.device.subarray_at(table.key)
        width = table.layout.counter_bits
        field = (value >> np.arange(width)) & 1
        sub.raw_bits[row, bit : bit + width] = field.astype(np.uint8)

    # ----- table updates ---------------------------------------------------------------

    def _insert_new(
        self, table: _SubarrayTable, temp: RowAddress, packed: int
    ) -> None:
        """MEM_insert(k_mer, 1): claim the next free slot."""
        layout = table.layout
        if table.occupied >= layout.kmer_rows:
            raise TableFullError(
                f"sub-array {table.key} k-mer region full "
                f"({layout.kmer_rows} slots)"
            )
        slot = table.occupied
        ctrl = self.pim.controller
        ctrl.copy(temp, self._addr(table, layout.kmer_row(slot)))
        self._write_counter(table, slot, 1)
        table.occupied += 1
        index = self._tables.index(table)
        self._slot_keys[index].append(packed)

    def _increment(self, table: _SubarrayTable, slot: int) -> None:
        """New_freq = PIM_Add(k_mer, 1); MEM_insert(k_mer, New_freq).

        Counter fields are 8-bit packed (32 per value row), so the
        update is the DPU's non-bulk read-modify-write path.
        """
        current = self._read_counter(table, slot)
        if current >= table.layout.counter_max:
            if self.saturating:
                return
            raise OverflowError(
                f"counter for slot {slot} exceeded "
                f"{table.layout.counter_max}"
            )
        new_value = self.pim.controller.dpu_scalar_add(
            table.key, current, 1, bits=table.layout.counter_bits
        )
        self._write_counter(table, slot, new_value)

    # ----- counter field access -----------------------------------------------------------

    def _read_counter(self, table: _SubarrayTable, slot: int) -> int:
        row, bit = table.layout.value_position(slot)
        data = self.pim.controller.read_row(self._addr(table, row))
        field = data[bit : bit + table.layout.counter_bits]
        return int(field @ (1 << np.arange(table.layout.counter_bits)))

    def _write_counter(self, table: _SubarrayTable, slot: int, value: int) -> None:
        layout = table.layout
        if not 0 <= value <= layout.counter_max:
            raise ValueError(f"counter value {value} out of range")
        row, bit = layout.value_position(slot)
        addr = self._addr(table, row)
        sub = self.pim.device.subarray_at(table.key)
        data = sub.read_row(row)  # host shadow read for the RMW merge
        bits = (value >> np.arange(layout.counter_bits)) & 1
        data[bit : bit + layout.counter_bits] = bits.astype(np.uint8)
        self.pim.controller.write_row(addr, data)

    # ----- scrubbing -------------------------------------------------------------------------

    def scrub(self) -> tuple[int, int]:
        """Verify every resident k-mer row; repair the ones that drifted.

        The table lives in the arrays for the whole assembly run, so a
        scrub pass between pipeline stages bounds how long a corrupted
        slot (a faulted insert RowClone, a retention upset) can poison
        queries.  Each occupied row is parity-checked
        (:meth:`~repro.core.controller.Controller.scrub_row`, charged
        as ``VRF`` cycles); a mismatching row is rewritten from the
        host shadow through the GRB (one ``MEM_WR``) when the active
        policy retries, and recorded as uncorrected otherwise.

        Returns:
            ``(checked, repaired)`` row counts.
        """
        ctrl = self.pim.controller
        engine = ctrl.resilience
        checked = repaired = 0
        # Scrub repairs legitimately MEM_WR straight into the k-mer
        # region; the marks tell the trace verifier to suspend its
        # table-region write rule for this window.
        ctrl.mark("scrub:begin")
        for index, table in enumerate(self._tables):
            for slot in range(table.occupied):
                row = table.layout.kmer_row(slot)
                addr = self._addr(table, row)
                expected = kmer_to_row_bits(
                    unpack_kmer(self._slot_keys[index][slot], self.k),
                    self.pim.row_bits,
                )
                checked += 1
                if ctrl.scrub_row(addr, expected):
                    continue
                if engine is not None:
                    engine.note_detected()
                if engine is None or engine.policy.retry:
                    ctrl.write_row(addr, expected)
                    repaired += 1
                    if engine is not None:
                        engine.note_corrected()
                else:
                    engine.note_uncorrected(table.key, row)
        ctrl.mark("scrub:end")
        if engine is not None:
            engine.note_scrub(checked, repaired)
        return checked, repaired

    # ----- readback --------------------------------------------------------------------------

    def counts(self) -> Counter:
        """Read the full table back as {packed k-mer: frequency}."""
        out: Counter = Counter()
        for index, table in enumerate(self._tables):
            for slot in range(table.occupied):
                out[self._slot_keys[index][slot]] = self._read_counter(table, slot)
        return out

    def stored_kmer(self, partition: int, slot: int) -> DnaSequence:
        """Decode a stored k-mer row straight from memory (for tests)."""
        table = self._tables[partition]
        row = self.pim.controller.read_row(
            self._addr(table, table.layout.kmer_row(slot))
        )
        return DnaSequence.from_bits(row[: self._valid_bits])

    def __len__(self) -> int:
        return sum(t.occupied for t in self._tables)

    @property
    def occupancy(self) -> list[int]:
        return [t.occupied for t in self._tables]

    # ----- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Host-side table metadata for the job journal.

        The in-memory row/counter *bits* travel in the platform
        snapshot (:meth:`repro.core.platform.PimAssembler.state_dict`);
        this records the partition keys, occupancy, and slot→k-mer
        shadow needed to re-attach a counter to restored memory —
        including any rows a fault left corrupt, which a rebuild from
        the shadow alone would silently repair.
        """
        return {
            "k": self.k,
            "saturating": self.saturating,
            "keys": [list(table.key) for table in self._tables],
            "occupied": [table.occupied for table in self._tables],
            "slot_keys": [list(keys) for keys in self._slot_keys],
        }

    @classmethod
    def from_state(
        cls, pim: PimAssembler, state: dict, engine: str = "scalar"
    ) -> "PimKmerCounter":
        """Re-attach a counter to a platform restored from a snapshot.

        ``engine`` may differ from the snapshotting run's (the job
        runtime's degradation ladder downgrades bulk → scalar); the
        table protocol is engine-agnostic, so this is safe.
        """
        counter = cls(
            pim,
            int(state["k"]),
            subarray_keys=[tuple(key) for key in state["keys"]],
            saturating=bool(state["saturating"]),
            engine=engine,
        )
        for table, occupied in zip(counter._tables, state["occupied"]):
            table.occupied = int(occupied)
        counter._slot_keys = [
            [int(value) for value in keys] for keys in state["slot_keys"]
        ]
        return counter
