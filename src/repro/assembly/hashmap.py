"""Stage 1 — k-mer analysis: the PIM-friendly Hashmap procedure.

This is the paper's reconstructed ``Hashmap(S, k)`` (Fig. 5b) running on
the functional simulator:

* every k-mer of the input is written to the sub-array's **temp row**
  (``MEM_insert``),
* a **parallel in-memory comparison** (``PIM_XNOR`` + the DPU's AND
  unit, Fig. 7) checks it against stored k-mer rows,
* on a hit, the frequency counter in the value region is updated
  (``PIM_Add``-class update; counter fields are 8-bit packed, so the
  non-bulk variant runs on the MAT's DPU),
* on a miss, the temp row is RowCloned into the next free k-mer row and
  its counter set to 1.

K-mers are distributed over sub-arrays by a hash partition — the
paper's *correlated partitioning*, which keeps every query local to one
sub-array and lets different sub-arrays serve different queries
concurrently.

:class:`SoftwareKmerCounter` is the golden model (a plain dict); the
test suite asserts the PIM path produces identical tables.

Execution engines
=================

``engine="scalar"`` (the default, and the golden model) walks the
Hashmap loop k-mer by k-mer through the controller.  ``engine="bulk"``
batch-inserts each round's k-mers per sub-array through the bulk
bit-plane engine (:mod:`repro.core.bitplane`): slot assignment, scan
lengths and counter evolution are derived with vectorised NumPy over
the whole batch, memory reaches the identical end state, and the
ledger is charged the identical per-mnemonic command counts in one
gang-scheduled batch.  Runs with live compare/copy fault rates replay
the scalar per-op path so the fault RNG stream stays exact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.bitplane import BulkEngine
from repro.core.isa import RowAddress
from repro.core.platform import PimAssembler
from repro.core.storage import pack_rows
from repro.errors import TableFullError
from repro.genome.kmer import (
    iter_kmers,
    kmer_to_row_bits,
    pack_kmer,
    packed_kmers_array,
    packed_to_row_bits,
    unpack_kmer,
)
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence
from repro.mapping.hashing import kmer_partition, kmer_partition_array
from repro.mapping.kmer_layout import KmerLayout, scaled_layout
from repro.runtime.watchdog import checkpoint

__all__ = [
    "PimKmerCounter",
    "SoftwareKmerCounter",
    "kmer_partition",
]


@dataclass
class _SubarrayTable:
    """Host-side metadata of one sub-array's table region."""

    key: tuple[int, int, int]
    layout: KmerLayout
    occupied: int = 0


class SoftwareKmerCounter:
    """Golden-model k-mer counter (plain dictionary)."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._counts: Counter = Counter()

    def add_sequence(self, sequence: DnaSequence) -> None:
        for kmer in iter_kmers(sequence, self.k):
            self._counts[pack_kmer(kmer)] += 1

    def add_reads(self, reads: Iterable[Read]) -> None:
        for read in reads:
            self.add_sequence(read.sequence)

    def counts(self) -> Counter:
        return Counter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)


class PimKmerCounter:
    """The Hashmap procedure on the PIM-Assembler functional simulator.

    Args:
        pim: the platform instance (owns timing/energy accounting).
        k: k-mer length; ``2k`` must fit one row (k <= 128 bases at 256
            columns).
        subarray_keys: which sub-arrays hold table partitions; defaults
            to every sub-array of the device.
        saturating: clamp counters at the 8-bit maximum instead of
            raising (real hardware saturates; the golden-model
            comparison requires counts below the limit).
        engine: ``"scalar"`` (per-op golden model) or ``"bulk"``
            (batched bit-plane execution; identical tables, end state
            and command counts, gang-scheduled time).
    """

    def __init__(
        self,
        pim: PimAssembler,
        k: int,
        subarray_keys: Sequence[tuple[int, int, int]] | None = None,
        saturating: bool = True,
        engine: str = "scalar",
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if engine not in ("scalar", "bulk"):
            raise ValueError("engine must be 'scalar' or 'bulk'")
        geometry = pim.geometry.bank.mat.subarray
        layout = scaled_layout(geometry)
        if k > layout.max_kmer_bases:
            raise ValueError(
                f"k={k} needs {2 * k} bit lines; rows have {geometry.cols}"
            )
        self.pim = pim
        self.k = k
        self.saturating = saturating
        self.engine = engine
        self._bulk = BulkEngine(pim) if engine == "bulk" else None
        # default to the *usable* sub-arrays: partitions never land on
        # storage the resilience engine already quarantined
        keys = (
            list(subarray_keys)
            if subarray_keys is not None
            else pim.usable_subarray_keys()
        )
        if not keys:
            raise ValueError("at least one sub-array is required")
        self._tables = [_SubarrayTable(key=key, layout=layout) for key in keys]
        #: per-partition slot -> packed k-mer (host shadow for readback
        #: ordering only; matching is done in-memory).
        self._slot_keys: list[list[int]] = [[] for _ in keys]
        self._valid_bits = 2 * k
        self._mask = np.zeros(geometry.cols, dtype=np.uint8)
        self._mask[: self._valid_bits] = 1
        # global sorted key index over all partitions (bulk-path lookup);
        # rebuilt lazily whenever _slot_keys changes
        self._index_dirty = True
        self._idx_keys = np.empty(0, dtype=np.uint64)
        self._idx_slot = np.empty(0, dtype=np.int64)

    # ----- addressing helpers ---------------------------------------------------

    def _addr(self, table: _SubarrayTable, row: int) -> RowAddress:
        bank, mat, sub = table.key
        return RowAddress(bank=bank, mat=mat, subarray=sub, row=row)

    @property
    def partitions(self) -> int:
        return len(self._tables)

    @property
    def layout(self) -> KmerLayout:
        return self._tables[0].layout

    # ----- the Hashmap procedure ---------------------------------------------------

    def add_kmer(self, kmer: DnaSequence) -> None:
        """One iteration of the Hashmap loop (Fig. 5b)."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {len(kmer)} bases")
        self._add_packed_scalar(pack_kmer(kmer), kmer)

    def _add_packed_scalar(
        self, packed: int, kmer: DnaSequence | None = None
    ) -> None:
        checkpoint()  # per-k-mer cancellation point (hashmap inner loop)
        if kmer is None:
            kmer = unpack_kmer(packed, self.k)
        table = self._tables[kmer_partition(packed, self.partitions)]
        ctrl = self.pim.controller
        layout = table.layout

        # MEM_insert the query into the temp region.
        temp = self._addr(table, layout.temp_row(0))
        bits = kmer_to_row_bits(kmer, self.pim.row_bits)
        ctrl.write_row(temp, bits)

        # Parallel in-memory comparison against the occupied k-mer rows
        # (PIM_XNOR + DPU AND reduce, Fig. 7); the scan stops at the
        # first match, as the DPU's outcome gates the next command.
        match_slot = ctrl.compare_scan(
            temp,
            start_row=layout.kmer_row(0) if table.occupied else 0,
            n_rows=table.occupied,
            valid_bits=self._valid_bits,
        )

        if match_slot is not None:
            self._increment(table, match_slot)
        else:
            self._insert_new(table, temp, packed)

    def add_sequence(self, sequence: DnaSequence) -> None:
        if self._bulk is not None:
            packed = packed_kmers_array(sequence, self.k)
            if packed.size:
                self._add_packed_bulk(packed)
            return
        for kmer in iter_kmers(sequence, self.k):
            self.add_kmer(kmer)

    def add_sequences(self, sequences: "Sequence[DnaSequence]") -> None:
        """Insert many sequences as ONE bulk round (scalar: k-mer loop).

        Arrival order is the concatenation order, identical to calling
        :meth:`add_sequence` per item — so tables, contigs and command
        counts match; only the bulk gang schedule (time) coarsens.
        """
        if self._bulk is not None:
            arrays = [packed_kmers_array(seq, self.k) for seq in sequences]
            arrays = [arr for arr in arrays if arr.size]
            if arrays:
                self._add_packed_bulk(np.concatenate(arrays))
            return
        for sequence in sequences:
            self.add_sequence(sequence)

    def add_reads(self, reads: Iterable[Read]) -> None:
        if self._bulk is not None:
            arrays = [
                packed_kmers_array(read.sequence, self.k) for read in reads
            ]
            arrays = [arr for arr in arrays if arr.size]
            if arrays:
                # one batch per round: per-partition arrival order is
                # the global read order, exactly as the scalar loop
                self._add_packed_bulk(np.concatenate(arrays))
            return
        for read in reads:
            self.add_sequence(read.sequence)

    # ----- the bulk path ---------------------------------------------------------

    def _rebuild_index(self) -> None:
        """Rebuild the global sorted key index from the slot shadow.

        Partition identity is a pure function of the packed k-mer, so
        one device-wide sorted array resolves any key to its table slot
        — the per-partition searches the old bulk planner looped over
        in Python collapse into a single :func:`np.searchsorted`.
        """
        keys = [k for part in self._slot_keys for k in part]
        slots = [
            s for part in self._slot_keys for s in range(len(part))
        ]
        if keys:
            arr = np.asarray(keys, dtype=np.uint64)
            order = np.argsort(arr, kind="stable")
            self._idx_keys = arr[order]
            self._idx_slot = np.asarray(slots, dtype=np.int64)[order]
        else:
            self._idx_keys = np.empty(0, dtype=np.uint64)
            self._idx_slot = np.empty(0, dtype=np.int64)
        self._index_dirty = False

    def _add_packed_bulk(self, packed: np.ndarray) -> None:
        """Batch-insert a round of packed k-mers across ALL sub-arrays.

        The scalar loop's observable behaviour is reproduced exactly:
        slot assignment follows first arrival, scan lengths follow the
        stop-at-first-match protocol, counters saturate per hit, and
        the ledger receives the identical command counts — charged as
        one gang-scheduled batch per round instead of op by op.

        Planning is device-global: one ``np.unique`` over the round,
        one sorted-index lookup for known keys, one lexsort for
        first-arrival slot assignment, and packed bit-field
        gather/scatter for every counter — no per-key Python loops.
        """
        checkpoint()  # per-round cancellation point (bulk hashmap path)
        ctrl = self.pim.controller
        faults = ctrl.faults
        if (
            faults is not None
            and faults.enabled
            and (faults.compute2_rate > 0.0 or faults.copy_rate > 0.0)
        ):
            # live scan/copy fault rates: the per-op RNG draw order is
            # part of the contract, so replay the exact scalar path
            for value in packed.tolist():
                self._add_packed_scalar(int(value))
            return
        n_parts = self.partitions
        layout = self.layout
        uniq, first_idx, inv = np.unique(
            packed, return_index=True, return_inverse=True
        )
        uparts = kmer_partition_array(uniq, n_parts).astype(np.int64)

        # resolve known keys against the global sorted index
        if self._index_dirty:
            self._rebuild_index()
        if self._idx_keys.size:
            pos = np.minimum(
                np.searchsorted(self._idx_keys, uniq),
                self._idx_keys.size - 1,
            )
            known = self._idx_keys[pos] == uniq
            uniq_slot = np.where(known, self._idx_slot[pos], -1)
        else:
            known = np.zeros(uniq.size, dtype=bool)
            uniq_slot = np.full(uniq.size, -1, dtype=np.int64)

        # new keys claim slots in first-arrival order per partition
        new_u = np.flatnonzero(~known)
        occ0 = np.asarray(
            [t.occupied for t in self._tables], dtype=np.int64
        )
        new_per_part = np.bincount(uparts[new_u], minlength=n_parts)
        if (occ0 + new_per_part > layout.kmer_rows).any():
            # some partition would raise TableFullError mid-stream;
            # nothing has been applied yet, so replay the whole round
            # through the scalar path and let the error fire at the
            # exact arrival — with the exact partial table state — the
            # golden model produces
            for value in packed.tolist():
                self._add_packed_scalar(int(value))
            return
        order = np.lexsort((first_idx[new_u], uparts[new_u]))
        nu = new_u[order]  # partition-major, arrival-ordered
        nu_parts = uparts[nu]
        seg_starts = np.concatenate(
            ([0], np.cumsum(np.bincount(nu_parts, minlength=n_parts))[:-1])
        )
        uniq_slot = uniq_slot.copy()
        uniq_slot[nu] = occ0[nu_parts] + (
            np.arange(nu.size, dtype=np.int64) - seg_starts[nu_parts]
        )

        # per-arrival scan lengths: a miss at insertion slot s scanned
        # all s occupied rows; a hit at slot s stopped after s + 1 rows
        slots = uniq_slot[inv]
        kparts = uparts[inv]
        is_miss = np.zeros(packed.size, dtype=bool)
        is_miss[first_idx[new_u]] = True
        scanned = np.where(is_miss, slots, slots + 1)

        # instantiate every touched sub-array BEFORE taking any packed
        # view: store growth reallocates the tensor
        touched = np.flatnonzero(np.bincount(kparts, minlength=n_parts))
        subs = {
            int(p): self.pim.device.subarray_at(self._tables[p].key)
            for p in touched
        }
        store = subs[int(touched[0])].store
        sslot_of = np.zeros(n_parts, dtype=np.int64)
        for p, sub in subs.items():
            sslot_of[p] = sub.slot

        # counter evolution: value(key) ends at min(start + hits, max),
        # incrementing (1 DPU add + 1 MEM_WR) only below saturation and
        # reading (1 MEM_RD) on every hit
        cpr = layout.counters_per_row
        cbits = layout.counter_bits
        vrows = layout.value_base + uniq_slot // cpr
        vbits = (uniq_slot % cpr) * cbits
        occurrences = np.bincount(inv, minlength=uniq.size).astype(np.int64)
        start_vals = np.ones(uniq.size, dtype=np.int64)  # inserts write 1
        kn = np.flatnonzero(known)
        if kn.size:
            start_vals[kn] = store.read_fields(
                sslot_of[uparts[kn]], vrows[kn], vbits[kn], cbits
            )
        hits_per_key = occurrences - (~known).astype(np.int64)
        final_vals = np.minimum(start_vals + hits_per_key, layout.counter_max)
        if not self.saturating and (
            start_vals + hits_per_key > layout.counter_max
        ).any():
            # would raise OverflowError mid-stream: same scalar replay
            for value in packed.tolist():
                self._add_packed_scalar(int(value))
            return

        # ---- functional end state -------------------------------------
        new_keys = uniq[nu]
        for p in touched:
            lo, hi = seg_starts[p], seg_starts[p] + new_per_part[p]
            if hi > lo:
                rows = packed_to_row_bits(
                    new_keys[lo:hi], self.k, self.pim.row_bits
                )
                store.write_rows(
                    int(sslot_of[p]), int(occ0[p]), np.asarray(rows)
                )
        if uniq.size:
            store.write_fields(
                sslot_of[uparts], vrows, vbits, cbits, final_vals
            )
        # leave each touched sub-array's compute rows as its last
        # arriving k-mer's scan would (reads happen after the row
        # writes above: the last scanned row may be a fresh insert)
        last_pos = np.full(n_parts, -1, dtype=np.int64)
        np.maximum.at(last_pos, kparts, np.arange(packed.size, dtype=np.int64))
        for p in touched:
            pos = int(last_pos[p])
            q_words = pack_rows(
                packed_to_row_bits(
                    packed[pos : pos + 1], self.k, self.pim.row_bits
                )[0]
            )
            last_scanned = int(scanned[pos])
            last_row_words = (
                store.row_words(
                    int(sslot_of[p]), layout.kmer_row(last_scanned - 1)
                ).copy()
                if last_scanned
                else None
            )
            self._bulk._finish_scan(
                subs[int(p)], layout.temp_row(0), q_words, last_row_words
            )
        for p in touched:
            table = self._tables[p]
            lo, hi = seg_starts[p], seg_starts[p] + new_per_part[p]
            table.occupied = int(occ0[p] + new_per_part[p])
            self._slot_keys[p].extend(int(v) for v in new_keys[lo:hi])
        if nu.size:
            self._index_dirty = True

        # ---- charging (identical command counts, one gang batch,
        # ascending partition order as the old per-partition walk) -----
        arr_p = np.bincount(kparts, minlength=n_parts)
        miss_p = np.bincount(kparts[is_miss], minlength=n_parts)
        hits_p = arr_p - miss_p
        scan_p = np.bincount(
            kparts, weights=scanned.astype(np.float64), minlength=n_parts
        ).astype(np.int64)
        inc_p = np.bincount(
            uparts,
            weights=(final_vals - start_vals).astype(np.float64),
            minlength=n_parts,
        ).astype(np.int64)
        sched = self._bulk.scheduler
        verifying = ctrl._verifying() is not None
        for p in touched:
            key = self._tables[p].key
            sched.charge(
                "MEM_WR", key, int(arr_p[p] + miss_p[p] + inc_p[p])
            )
            sched.charge("MEM_RD", key, int(hits_p[p]))
            sched.charge("AAP1", key, int(arr_p[p] + miss_p[p]))
            sched.fused_compare(key, int(scan_p[p]))
            sched.charge("DPU", key, int(inc_p[p]))
            if verifying:
                self._bulk.charge_verify(int(scan_p[p]))
        self._bulk.flush()

    # ----- table updates ---------------------------------------------------------------

    def _insert_new(
        self, table: _SubarrayTable, temp: RowAddress, packed: int
    ) -> None:
        """MEM_insert(k_mer, 1): claim the next free slot."""
        layout = table.layout
        if table.occupied >= layout.kmer_rows:
            raise TableFullError(
                f"sub-array {table.key} k-mer region full "
                f"({layout.kmer_rows} slots)"
            )
        slot = table.occupied
        ctrl = self.pim.controller
        ctrl.copy(temp, self._addr(table, layout.kmer_row(slot)))
        self._write_counter(table, slot, 1)
        table.occupied += 1
        index = self._tables.index(table)
        self._slot_keys[index].append(packed)
        self._index_dirty = True

    def _increment(self, table: _SubarrayTable, slot: int) -> None:
        """New_freq = PIM_Add(k_mer, 1); MEM_insert(k_mer, New_freq).

        Counter fields are 8-bit packed (32 per value row), so the
        update is the DPU's non-bulk read-modify-write path.
        """
        current = self._read_counter(table, slot)
        if current >= table.layout.counter_max:
            if self.saturating:
                return
            raise OverflowError(
                f"counter for slot {slot} exceeded "
                f"{table.layout.counter_max}"
            )
        new_value = self.pim.controller.dpu_scalar_add(
            table.key, current, 1, bits=table.layout.counter_bits
        )
        self._write_counter(table, slot, new_value)

    # ----- counter field access -----------------------------------------------------------

    def _read_counter(self, table: _SubarrayTable, slot: int) -> int:
        row, bit = table.layout.value_position(slot)
        data = self.pim.controller.read_row(self._addr(table, row))
        field = data[bit : bit + table.layout.counter_bits]
        return int(field @ (1 << np.arange(table.layout.counter_bits)))

    def _write_counter(self, table: _SubarrayTable, slot: int, value: int) -> None:
        layout = table.layout
        if not 0 <= value <= layout.counter_max:
            raise ValueError(f"counter value {value} out of range")
        row, bit = layout.value_position(slot)
        addr = self._addr(table, row)
        sub = self.pim.device.subarray_at(table.key)
        data = sub.read_row(row)  # host shadow read for the RMW merge
        bits = (value >> np.arange(layout.counter_bits)) & 1
        data[bit : bit + layout.counter_bits] = bits.astype(np.uint8)
        self.pim.controller.write_row(addr, data)

    # ----- scrubbing -------------------------------------------------------------------------

    def scrub(self) -> tuple[int, int]:
        """Verify every resident k-mer row; repair the ones that drifted.

        The table lives in the arrays for the whole assembly run, so a
        scrub pass between pipeline stages bounds how long a corrupted
        slot (a faulted insert RowClone, a retention upset) can poison
        queries.  Each occupied row is parity-checked
        (:meth:`~repro.core.controller.Controller.scrub_row`, charged
        as ``VRF`` cycles); a mismatching row is rewritten from the
        host shadow through the GRB (one ``MEM_WR``) when the active
        policy retries, and recorded as uncorrected otherwise.

        Returns:
            ``(checked, repaired)`` row counts.
        """
        ctrl = self.pim.controller
        engine = ctrl.resilience
        checked = repaired = 0
        # Scrub repairs legitimately MEM_WR straight into the k-mer
        # region; the marks tell the trace verifier to suspend its
        # table-region write rule for this window.
        ctrl.mark("scrub:begin")
        for index, table in enumerate(self._tables):
            for slot in range(table.occupied):
                row = table.layout.kmer_row(slot)
                addr = self._addr(table, row)
                expected = kmer_to_row_bits(
                    unpack_kmer(self._slot_keys[index][slot], self.k),
                    self.pim.row_bits,
                )
                checked += 1
                if ctrl.scrub_row(addr, expected):
                    continue
                if engine is not None:
                    engine.note_detected()
                if engine is None or engine.policy.retry:
                    ctrl.write_row(addr, expected)
                    repaired += 1
                    if engine is not None:
                        engine.note_corrected()
                else:
                    engine.note_uncorrected(table.key, row)
        ctrl.mark("scrub:end")
        if engine is not None:
            engine.note_scrub(checked, repaired)
        # one repair stream: table-scrub repairs feed the integrity
        # counters too, so `inspect` and the ECC metrics agree
        integrity = self.pim.integrity
        if integrity is not None:
            integrity.note_table_scrub(checked, repaired)
        return checked, repaired

    # ----- readback --------------------------------------------------------------------------

    def counts(self) -> Counter:
        """Read the full table back as {packed k-mer: frequency}."""
        out: Counter = Counter()
        for index, table in enumerate(self._tables):
            for slot in range(table.occupied):
                out[self._slot_keys[index][slot]] = self._read_counter(table, slot)
        return out

    def stored_kmer(self, partition: int, slot: int) -> DnaSequence:
        """Decode a stored k-mer row straight from memory (for tests)."""
        table = self._tables[partition]
        row = self.pim.controller.read_row(
            self._addr(table, table.layout.kmer_row(slot))
        )
        return DnaSequence.from_bits(row[: self._valid_bits])

    def __len__(self) -> int:
        return sum(t.occupied for t in self._tables)

    @property
    def occupancy(self) -> list[int]:
        return [t.occupied for t in self._tables]

    # ----- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Host-side table metadata for the job journal.

        The in-memory row/counter *bits* travel in the platform
        snapshot (:meth:`repro.core.platform.PimAssembler.state_dict`);
        this records the partition keys, occupancy, and slot→k-mer
        shadow needed to re-attach a counter to restored memory —
        including any rows a fault left corrupt, which a rebuild from
        the shadow alone would silently repair.
        """
        return {
            "k": self.k,
            "saturating": self.saturating,
            "keys": [list(table.key) for table in self._tables],
            "occupied": [table.occupied for table in self._tables],
            "slot_keys": [list(keys) for keys in self._slot_keys],
        }

    @classmethod
    def from_state(
        cls, pim: PimAssembler, state: dict, engine: str = "scalar"
    ) -> "PimKmerCounter":
        """Re-attach a counter to a platform restored from a snapshot.

        ``engine`` may differ from the snapshotting run's (the job
        runtime's degradation ladder downgrades bulk → scalar); the
        table protocol is engine-agnostic, so this is safe.
        """
        counter = cls(
            pim,
            int(state["k"]),
            subarray_keys=[tuple(key) for key in state["keys"]],
            saturating=bool(state["saturating"]),
            engine=engine,
        )
        for table, occupied in zip(counter._tables, state["occupied"]):
            table.occupied = int(occupied)
        counter._slot_keys = [
            [int(value) for value in keys] for keys in state["slot_keys"]
        ]
        counter._index_dirty = True
        return counter
