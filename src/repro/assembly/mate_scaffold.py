"""Mate-pair scaffolding — the full stage-3 extension.

The paper leaves scaffolding as future work; the greedy overlap joiner
(:mod:`repro.assembly.scaffold`) closes exact-overlap gaps, but real
scaffolding uses **paired-end links**: when a pair's two mates map to
different contigs, the insert size bounds the contigs' distance and
relative orientation.  This module implements the classic pipeline:

1. **map** both mates of every pair onto the contigs (exact substring
   index on both strands — adequate for simulated reads);
2. **link**: pairs whose mates land on two different contigs vote for
   an (order, orientation, gap) between them;
3. **chain**: links supported by at least ``min_links`` pairs form a
   contig graph; confident simple paths become scaffolds, with ``N``
   runs of the estimated gap size between members.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.assembly.contigs import Contig
from repro.genome.paired import ReadPair
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class MateHit:
    """Where one mate landed: contig index, offset, strand."""

    contig: int
    offset: int
    reverse: bool


@dataclass(frozen=True)
class ContigLink:
    """An inferred adjacency: ``first`` precedes ``second``.

    Attributes:
        first, second: contig indices in scaffold order.
        gap: estimated unsequenced bases between them (>= 0 after
            clamping; mate inserts bound it).
        support: number of read pairs voting for this link.
    """

    first: int
    second: int
    gap: int
    support: int


@dataclass(frozen=True)
class MateScaffold:
    """One scaffold: ordered contigs joined with ``N``-gap runs."""

    name: str
    members: tuple[str, ...]
    sequence_with_gaps: str

    def __len__(self) -> int:
        return len(self.sequence_with_gaps)

    @property
    def gap_bases(self) -> int:
        return self.sequence_with_gaps.count("N")


class _ContigIndex:
    """Exact-substring locator over contigs (both strands)."""

    def __init__(self, contigs: Sequence[Contig], probe_length: int) -> None:
        if probe_length <= 0:
            raise ValueError("probe_length must be positive")
        self.probe_length = probe_length
        self._texts = [str(c.sequence) for c in contigs]

    def locate(self, read: DnaSequence) -> MateHit | None:
        """Find the unique contig containing the read's prefix probe."""
        text = str(read)[: self.probe_length]
        if len(text) < self.probe_length:
            return None
        rc_text = str(DnaSequence(text).reverse_complement())
        hit: MateHit | None = None
        for index, contig_text in enumerate(self._texts):
            offset = contig_text.find(text)
            if offset != -1:
                if hit is not None:
                    return None  # ambiguous: probe occurs in two places
                hit = MateHit(contig=index, offset=offset, reverse=False)
            rc_offset = contig_text.find(rc_text)
            if rc_offset != -1:
                if hit is not None:
                    return None
                hit = MateHit(contig=index, offset=rc_offset, reverse=True)
        return hit


def link_contigs(
    contigs: Sequence[Contig],
    pairs: Sequence[ReadPair],
    insert_mean: int,
    min_links: int = 3,
    probe_length: int = 25,
) -> list[ContigLink]:
    """Derive supported contig adjacencies from mate pairs.

    Only the canonical forward-forward configuration is chained (left
    mate forward on contig A, right mate reverse-complemented on
    contig B — i.e. its RC probe matches B forward): the configuration
    uniquely implied by our paired simulator.  Links below ``min_links``
    support are dropped as noise.
    """
    if insert_mean <= 0:
        raise ValueError("insert_mean must be positive")
    if min_links <= 0:
        raise ValueError("min_links must be positive")
    index = _ContigIndex(contigs, probe_length)
    votes: dict[tuple[int, int], list[int]] = defaultdict(list)

    for pair in pairs:
        left = index.locate(pair.left.sequence)
        right = index.locate(pair.right.sequence)
        if left is None or right is None:
            continue
        if left.contig == right.contig:
            continue
        if left.reverse or not right.reverse:
            continue  # non-canonical configuration; skip
        # gap estimate: insert covers left-tail + gap + right-head
        left_tail = len(contigs[left.contig].sequence) - left.offset
        right_head = right.offset + len(pair.right)
        gap = pair.insert_size - left_tail - right_head
        votes[(left.contig, right.contig)].append(gap)

    links = []
    for (first, second), gaps in votes.items():
        if len(gaps) < min_links:
            continue
        gaps.sort()
        median_gap = gaps[len(gaps) // 2]
        links.append(
            ContigLink(
                first=first,
                second=second,
                gap=max(0, median_gap),
                support=len(gaps),
            )
        )
    links.sort(key=lambda l: -l.support)
    return links


def build_scaffolds(
    contigs: Sequence[Contig],
    links: Sequence[ContigLink],
) -> list[MateScaffold]:
    """Chain contigs along unambiguous links into gap-aware scaffolds.

    Links are consumed best-supported first; a contig joins at most one
    predecessor and one successor (conflicting links are skipped), so
    the result is a set of simple paths.
    """
    successor: dict[int, ContigLink] = {}
    predecessor: dict[int, int] = {}
    for link in links:
        if link.first in successor or link.second in predecessor:
            continue  # would branch; keep the better-supported link
        successor[link.first] = link
        predecessor[link.second] = link.first

    scaffolds: list[MateScaffold] = []
    used: set[int] = set()
    starts = [i for i in range(len(contigs)) if i not in predecessor]
    for start in starts:
        if start in used:
            continue
        members = [contigs[start].name]
        chunks = [str(contigs[start].sequence)]
        used.add(start)
        node = start
        while node in successor:
            link = successor[node]
            node = link.second
            if node in used:
                break
            chunks.append("N" * link.gap)
            chunks.append(str(contigs[node].sequence))
            members.append(contigs[node].name)
            used.add(node)
        scaffolds.append(
            MateScaffold(
                name=f"scaffold{len(scaffolds)}",
                members=tuple(members),
                sequence_with_gaps="".join(chunks),
            )
        )
    scaffolds.sort(key=len, reverse=True)
    return [
        MateScaffold(
            name=f"scaffold{i}",
            members=s.members,
            sequence_with_gaps=s.sequence_with_gaps,
        )
        for i, s in enumerate(scaffolds)
    ]


def scaffold_assembly(
    contigs: Sequence[Contig],
    pairs: Sequence[ReadPair],
    insert_mean: int,
    min_links: int = 3,
) -> list[MateScaffold]:
    """One-call mate-pair scaffolding: map, link, chain."""
    links = link_contigs(contigs, pairs, insert_mean, min_links=min_links)
    return build_scaffolds(contigs, links)
