"""The end-to-end PIM-Assembler pipeline (paper Fig. 5a).

Orchestrates the three stages on the functional simulator with the
per-stage phase accounting the paper's Fig. 9 breakdown uses:

1. ``hashmap``  — k-mer analysis on the PIM hash table,
2. ``debruijn`` — graph construction from the table,
3. ``traverse`` — in/out-degree computation (bulk PIM_Add over the
   adjacency mapping) and path traversal,

plus the optional scaffolding extension (stage 3 of Fig. 5a, the
paper's future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.assembly.contigs import Contig, assemble_contigs
from repro.assembly.debruijn import DeBruijnGraph
from repro.assembly.hashmap import PimKmerCounter
from repro.assembly.scaffold import Scaffold, greedy_scaffold
from repro.core.integrity import IntegrityCounts
from repro.core.platform import PimAssembler
from repro.core.resilience import (
    ResilienceEngine,
    ResiliencePolicy,
    ResilienceReport,
)
from repro.core.stats import PhaseTotals
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence
from repro.mapping.adjacency import degree_vectors_pim
from repro.observability.spans import span
from repro.runtime.watchdog import checkpoint

#: the Fig. 5a stage names, in execution order
STAGE_NAMES = ("hashmap", "debruijn", "traverse")


@dataclass
class PipelineState:
    """Mutable between-stage state of one assembly run.

    The job runtime (:mod:`repro.runtime.jobs`) journals and restores
    exactly this object at stage boundaries; :meth:`PimPipeline.run`
    threads one instance through the three stages.
    """

    counter: PimKmerCounter | None = None
    counts: "dict | None" = None
    graph: DeBruijnGraph | None = None
    #: ``(in_degree, out_degree)`` over packed node keys (Fig. 8 output)
    degrees: "tuple[dict[int, int], dict[int, int]] | None" = None
    contigs: "list[Contig] | None" = None
    scaffolds: list[Scaffold] = field(default_factory=list)


@dataclass(frozen=True)
class AssemblyResult:
    """Contigs plus the stage-level accounting of the run."""

    contigs: list[Contig]
    scaffolds: list[Scaffold]
    graph: DeBruijnGraph
    kmer_table_size: int
    hashmap: PhaseTotals
    debruijn: PhaseTotals
    traverse: PhaseTotals
    #: detect/correct/degrade outcome (None when no policy was active)
    resilience: ResilienceReport | None = field(default=None)
    #: retention-rot / ECC / scrub outcome (None when no engine attached)
    integrity: IntegrityCounts | None = field(default=None)

    @property
    def total_time_ns(self) -> float:
        return self.hashmap.time_ns + self.debruijn.time_ns + self.traverse.time_ns

    @property
    def total_energy_nj(self) -> float:
        return (
            self.hashmap.energy_nj
            + self.debruijn.energy_nj
            + self.traverse.energy_nj
        )


class PimPipeline:
    """De novo assembly on the PIM-Assembler functional simulator.

    Args:
        pim: platform instance (a small device is fine for functional
            runs; see :meth:`PimAssembler.small`).
        k: k-mer length.
        min_count: k-mer frequency threshold for graph edges.
        contig_mode: ``"unitig"`` (default) or ``"euler"``.
        scaffold: also run the greedy scaffolding extension.
        resilience: a :class:`ResiliencePolicy` (or its level name,
            e.g. ``"detect-retry-remap"``) activating the detect →
            correct → degrade loop for the run: protected in-memory
            ops, a k-mer-table scrub between stages, and quarantine of
            sub-arrays that keep failing.  ``None`` leaves whatever
            engine is already attached to the platform untouched.
        engine: ``"scalar"`` (per-op golden model) or ``"bulk"``
            (batched bit-plane execution of the hashmap and degree
            stages; identical tables/contigs/resilience events, time
            charged per gang schedule).
        batch_reads: reads per bulk hashmap round.  ``None`` (default)
            issues one round per read, the golden arrival granularity;
            larger rounds produce identical tables/contigs/command
            counts (the arrival order is unchanged) but a coarser gang
            schedule.  The job runtime's degradation ladder shrinks
            this under memory pressure.
    """

    def __init__(
        self,
        pim: PimAssembler,
        k: int,
        min_count: int = 1,
        contig_mode: str = "unitig",
        scaffold: bool = False,
        min_contig_length: int = 0,
        simplify: bool = False,
        resilience: "ResiliencePolicy | str | None" = None,
        engine: str = "scalar",
        batch_reads: int | None = None,
    ) -> None:
        if k <= 1:
            raise ValueError("assembly needs k >= 2")
        if engine not in ("scalar", "bulk"):
            raise ValueError("engine must be 'scalar' or 'bulk'")
        if batch_reads is not None and batch_reads < 1:
            raise ValueError("batch_reads must be >= 1")
        self.pim = pim
        self.k = k
        self.min_count = min_count
        self.contig_mode = contig_mode
        self.scaffold = scaffold
        self.min_contig_length = min_contig_length
        self.simplify = simplify
        self.engine = engine
        self.batch_reads = batch_reads
        self.resilience = (
            None if resilience is None else ResiliencePolicy.named(resilience)
        )

    def _engine(self) -> ResilienceEngine | None:
        """Attach (or reuse) the resilience engine the policy asks for."""
        if self.resilience is not None:
            return self.pim.protect(self.resilience)
        return self.pim.resilience

    def _scrub_active(self) -> bool:
        engine = self.pim.resilience
        return (
            engine is not None
            and engine.policy.detect
            and engine.policy.scrub
        )

    # ----- the three Fig. 5a stages ------------------------------------------
    #
    # Each stage reads/extends a PipelineState; the job runtime calls
    # them individually with a checkpoint between, run() chains them.

    def run_hashmap(
        self,
        reads: "Iterable[Read] | Sequence[DnaSequence]",
        state: PipelineState,
    ) -> PipelineState:
        """Stage 1 — k-mer analysis on the PIM hash table."""
        pim = self.pim
        with span(
            "stage.hashmap",
            lane="hashmap",
            engine=self.engine,
            k=self.k,
            batch_reads=self.batch_reads,
        ) as stage_span, pim.phase("hashmap"):
            # window marker: the k-mer-table layout rules are in force
            # from here until hashmap:end (trace verifier scoping)
            pim.controller.mark("hashmap:begin")
            counter = PimKmerCounter(pim, self.k, engine=self.engine)
            sequences = (
                item.sequence if isinstance(item, Read) else item
                for item in reads
            )
            # rot checkpoints: retention windows elapse in *simulated*
            # time as reads are inserted, so the integrity engine must
            # get control between inserts — an end-of-stage-only sync
            # could never corrupt (or protect) the table mid-build
            if self.batch_reads is None:
                for sequence in sequences:
                    checkpoint()
                    counter.add_sequence(sequence)
                    pim.integrity_sync()
            else:
                batch: list[DnaSequence] = []
                for sequence in sequences:
                    checkpoint()
                    batch.append(sequence)
                    if len(batch) >= self.batch_reads:
                        counter.add_sequences(batch)
                        pim.integrity_sync()
                        batch = []
                if batch:
                    counter.add_sequences(batch)
                    pim.integrity_sync()
            if self._scrub_active():
                # bound how long a corrupted slot can poison queries
                with span("scrub.table"):
                    counter.scrub()
            state.counter = counter
            state.counts = counter.counts()
            pim.controller.mark("hashmap:end")
            stage_span.set_attribute("kmer_table_size", len(counter))
        return state

    def run_debruijn(self, state: PipelineState) -> PipelineState:
        """Stage 2 — de Bruijn graph construction from the table."""
        with span(
            "stage.debruijn", lane="debruijn", min_count=self.min_count
        ) as stage_span, self.pim.phase("debruijn"):
            self.pim.integrity_sync()
            graph = DeBruijnGraph.from_counts(
                state.counts, k=self.k, min_count=self.min_count
            )
            if self.simplify:
                from repro.assembly.simplify import simplify_graph

                with span("simplify.graph"):
                    graph, _ = simplify_graph(graph)
            state.graph = graph
            stage_span.set_attribute("nodes", graph.num_nodes)
        return state

    def run_traverse(self, state: PipelineState) -> PipelineState:
        """Stage 3 — degree computation (bulk PIM_Add) + path walk."""
        pim = self.pim
        with span(
            "stage.traverse",
            lane="traverse",
            engine=self.engine,
            contig_mode=self.contig_mode,
        ) as stage_span:
            with pim.phase("traverse"):
                # the table is read again below; heal any rot first
                pim.integrity_sync()
                if self._scrub_active():
                    # the table is still resident while the graph is walked
                    with span("scrub.table"):
                        state.counter.scrub()
                # Degree computation through the PIM adjacency mapping
                # (bulk PIM_Add, Fig. 8) — the in-memory portion of the
                # traversal — followed by the path walk.
                with span("traverse.degrees"):
                    state.degrees = degree_vectors_pim(
                        pim, state.graph, engine=self.engine
                    )
                with span("traverse.contigs"):
                    state.contigs = assemble_contigs(
                        state.graph,
                        mode=self.contig_mode,
                        min_length=self.min_contig_length,
                    )

            state.scaffolds = []
            if self.scaffold and state.contigs:
                with span("traverse.scaffold"):
                    state.scaffolds = greedy_scaffold(state.contigs)
            stage_span.set_attribute("contigs", len(state.contigs))
        return state

    def result(self, state: PipelineState) -> AssemblyResult:
        """Fold a completed state into the public result object."""
        pim = self.pim
        engine = pim.resilience
        return AssemblyResult(
            contigs=state.contigs,
            scaffolds=state.scaffolds,
            graph=state.graph,
            kmer_table_size=len(state.counter),
            hashmap=pim.stats.totals("hashmap"),
            debruijn=pim.stats.totals("debruijn"),
            traverse=pim.stats.totals("traverse"),
            resilience=(
                engine.report(stages=list(STAGE_NAMES))
                if engine is not None
                else None
            ),
            integrity=(
                pim.integrity.counts()
                if pim.integrity is not None
                else None
            ),
        )

    def run(self, reads: "Iterable[Read] | Sequence[DnaSequence]") -> AssemblyResult:
        """Assemble a read set end to end."""
        self._engine()
        state = PipelineState()
        self.run_hashmap(reads, state)
        self.run_debruijn(state)
        self.run_traverse(state)
        return self.result(state)


def _sized_device(reads: Sequence, k: int) -> PimAssembler:
    """Size a functional device so the hash table cannot overflow.

    Distinct k-mers are bounded by the total k-mer positions (and by
    4^k); sub-arrays are lazy, so over-provisioning costs only the
    slots actually touched.
    """
    from repro.mapping.kmer_layout import scaled_layout
    from repro.dram.geometry import SubArrayGeometry

    total = 0
    for item in reads:
        sequence = item.sequence if isinstance(item, Read) else item
        total += max(0, len(sequence) - k + 1)
    bound = max(64, min(total, 4**min(k, 30)))
    cols = max(64, 2 * ((2 * k + 7) // 8 * 4))  # k-mer must fit a row
    geometry = SubArrayGeometry(rows=512, cols=cols, compute_rows=8)
    per_subarray = scaled_layout(geometry).kmer_rows
    subarrays = max(8, -(-int(1.1 * bound) // per_subarray))
    return PimAssembler.small(subarrays=subarrays, rows=512, cols=cols)


def assemble_with_pim(
    reads: "Iterable[Read] | Sequence[DnaSequence]",
    k: int,
    pim: PimAssembler | None = None,
    **kwargs,
) -> AssemblyResult:
    """Convenience one-call assembly; sizes a device to the read set
    when none is supplied."""
    read_list = list(reads)
    pim = pim or _sized_device(read_list, k)
    pipeline = PimPipeline(pim, k=k, **kwargs)
    return pipeline.run(read_list)
