"""k-mer-spectrum read error correction (pre-assembly extension).

Frequency filtering (``min_count``) *drops* erroneous k-mers; spectral
correction *repairs* the reads instead, preserving coverage.  The
classic scheme (Euler-SR / Quake family):

1. count k-mers over the read set; k-mers with frequency >=
   ``solid_threshold`` are **solid** (real), the rest **weak** (likely
   error-tainted);
2. a read position covered only by weak k-mers is suspect; try the
   three alternative bases and accept a substitution iff it makes
   every k-mer covering that position solid and it is the *unique*
   base that does so;
3. reads with more than ``max_corrections`` suspect positions are left
   untouched (likely chimeric or low-quality).

Correction is itself a comparison-heavy k-mer workload — precisely the
PIM_XNOR-class computation PIM-Assembler accelerates — so the module
reports the number of k-mer lookups it performed, which plugs into the
same operation-count performance model as the hashmap stage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.genome.kmer import packed_kmers_array
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class CorrectionResult:
    """Outcome of correcting one read set."""

    reads: list[Read]
    corrected_reads: int
    corrected_bases: int
    abandoned_reads: int
    kmer_lookups: int

    @property
    def total_reads(self) -> int:
        return len(self.reads)


@dataclass
class SpectralCorrector:
    """k-mer-spectrum substitution corrector.

    Attributes:
        k: k-mer length of the spectrum.
        solid_threshold: minimum frequency for a k-mer to count as
            solid (>= 2 removes singletons; higher for deep coverage).
        max_corrections: give up on reads needing more substitutions.
    """

    k: int
    solid_threshold: int = 3
    max_corrections: int = 3
    _lookups: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.k <= 1:
            raise ValueError("k must be at least 2")
        if self.solid_threshold <= 0:
            raise ValueError("solid_threshold must be positive")
        if self.max_corrections <= 0:
            raise ValueError("max_corrections must be positive")

    # ----- spectrum ----------------------------------------------------------

    def build_spectrum(self, reads: Iterable[Read]) -> set[int]:
        """The solid k-mer set of a read collection."""
        counts: Counter = Counter()
        for read in reads:
            for packed in packed_kmers_array(read.sequence, self.k).tolist():
                counts[packed] += 1
        return {
            packed
            for packed, count in counts.items()
            if count >= self.solid_threshold
        }

    # ----- per-read correction ---------------------------------------------------

    def _weak_positions(
        self, codes: np.ndarray, solid: set[int]
    ) -> list[int]:
        """Base positions covered by no solid k-mer."""
        n = codes.size
        if n < self.k:
            return []
        packed = packed_kmers_array(DnaSequence(codes), self.k)
        self._lookups += packed.size
        solid_mask = np.fromiter(
            (int(p) in solid for p in packed), dtype=bool, count=packed.size
        )
        covered = np.zeros(n, dtype=bool)
        for i in np.nonzero(solid_mask)[0]:
            covered[i : i + self.k] = True
        return [int(i) for i in np.nonzero(~covered)[0]]

    def _position_fixed(
        self, codes: np.ndarray, position: int, solid: set[int]
    ) -> bool:
        """True iff every k-mer covering ``position`` is solid."""
        n = codes.size
        lo = max(0, position - self.k + 1)
        hi = min(position, n - self.k)
        for start in range(lo, hi + 1):
            window = DnaSequence(codes[start : start + self.k])
            self._lookups += 1
            packed = int(packed_kmers_array(window, self.k)[0])
            if packed not in solid:
                return False
        return True

    def correct_read(self, read: Read, solid: set[int]) -> tuple[Read, int]:
        """Attempt correction; returns (read, substitutions made).

        Returns the original read with 0 substitutions when nothing is
        suspect, when a suspect position has no unique fix, or when the
        repair budget is exceeded.
        """
        codes = read.sequence.codes.copy()
        weak = self._weak_positions(codes, solid)
        if not weak:
            return read, 0
        if len(weak) > self.max_corrections * self.k:
            return read, 0  # too damaged; likely more than substitutions

        substitutions = 0
        for position in weak:
            if self._position_fixed(codes, position, solid):
                continue  # repaired by an earlier substitution
            original = codes[position]
            candidates = []
            for base in range(4):
                if base == original:
                    continue
                codes[position] = base
                if self._position_fixed(codes, position, solid):
                    candidates.append(base)
            if len(candidates) == 1:
                codes[position] = candidates[0]
                substitutions += 1
                if substitutions > self.max_corrections:
                    return read, 0
            else:
                codes[position] = original

        if substitutions == 0:
            return read, 0
        corrected = Read(
            name=read.name,
            sequence=DnaSequence(codes),
            start=read.start,
            reverse=read.reverse,
        )
        return corrected, substitutions

    # ----- read-set correction ------------------------------------------------------

    def correct(self, reads: Sequence[Read]) -> CorrectionResult:
        """Correct a read set against its own spectrum."""
        self._lookups = 0
        solid = self.build_spectrum(reads)
        out: list[Read] = []
        corrected_reads = corrected_bases = abandoned = 0
        for read in reads:
            fixed, n_subs = self.correct_read(read, solid)
            out.append(fixed)
            if n_subs > 0:
                corrected_reads += 1
                corrected_bases += n_subs
            elif self._weak_positions(fixed.sequence.codes, solid):
                abandoned += 1
        return CorrectionResult(
            reads=out,
            corrected_reads=corrected_reads,
            corrected_bases=corrected_bases,
            abandoned_reads=abandoned,
            kmer_lookups=self._lookups,
        )


def correct_reads(
    reads: Sequence[Read],
    k: int = 15,
    solid_threshold: int = 3,
) -> CorrectionResult:
    """One-call spectral correction with default budgets."""
    return SpectralCorrector(k=k, solid_threshold=solid_threshold).correct(reads)
