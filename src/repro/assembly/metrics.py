"""Assembly quality metrics: N50, genome fraction, identity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.assembly.contigs import Contig
from repro.genome.sequence import DnaSequence


def total_length(contigs: Sequence[Contig]) -> int:
    return sum(len(c) for c in contigs)


def nx_length(contigs: Sequence[Contig], fraction: float) -> int:
    """Generalised Nx: the length L such that contigs >= L cover at
    least ``fraction`` of the total assembly length (N50 = Nx(0.5))."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if not contigs:
        return 0
    lengths = sorted((len(c) for c in contigs), reverse=True)
    threshold = fraction * sum(lengths)
    running = 0
    for length in lengths:
        running += length
        if running >= threshold:
            return length
    return lengths[-1]


def n50(contigs: Sequence[Contig]) -> int:
    return nx_length(contigs, 0.5)


def largest_contig(contigs: Sequence[Contig]) -> int:
    return max((len(c) for c in contigs), default=0)


def genome_fraction(
    contigs: Sequence[Contig], reference: DnaSequence, both_strands: bool = True
) -> float:
    """Fraction of reference bases covered by exactly-matching contigs.

    Every contig is located in the reference by exact substring search
    (adequate for the error-free simulated reads of the paper's setup);
    covered intervals are unioned.
    """
    if not len(reference):
        raise ValueError("reference must be non-empty")
    ref_text = str(reference)
    search_spaces = [ref_text]
    if both_strands:
        search_spaces.append(str(reference.reverse_complement()))
    covered = [False] * len(ref_text)
    for contig in contigs:
        text = str(contig.sequence)
        for space_index, space in enumerate(search_spaces):
            start = space.find(text)
            while start != -1:
                if space_index == 0:
                    lo, hi = start, start + len(text)
                else:
                    hi = len(ref_text) - start
                    lo = hi - len(text)
                for i in range(lo, hi):
                    covered[i] = True
                start = space.find(text, start + 1)
    return sum(covered) / len(covered)


def misassembled_contigs(
    contigs: Sequence[Contig], reference: DnaSequence, both_strands: bool = True
) -> list[Contig]:
    """Contigs that do not occur verbatim anywhere in the reference."""
    ref_text = str(reference)
    spaces = [ref_text]
    if both_strands:
        spaces.append(str(reference.reverse_complement()))
    missing = []
    for contig in contigs:
        text = str(contig.sequence)
        if not any(text in space for space in spaces):
            missing.append(contig)
    return missing


@dataclass(frozen=True)
class AssemblyReport:
    """Summary statistics of one assembly run."""

    num_contigs: int
    total_length: int
    n50: int
    largest: int
    genome_fraction: float
    misassemblies: int

    def __str__(self) -> str:
        return (
            f"contigs={self.num_contigs} total={self.total_length}bp "
            f"N50={self.n50} largest={self.largest} "
            f"genome_fraction={self.genome_fraction:.1%} "
            f"misassemblies={self.misassemblies}"
        )


def evaluate_assembly(
    contigs: Sequence[Contig], reference: DnaSequence
) -> AssemblyReport:
    """Compute the full report against a known reference."""
    return AssemblyReport(
        num_contigs=len(contigs),
        total_length=total_length(contigs),
        n50=n50(contigs),
        largest=largest_contig(contigs),
        genome_fraction=genome_fraction(contigs, reference),
        misassemblies=len(misassembled_contigs(contigs, reference)),
    )
