"""De Bruijn graph simplification: tip clipping and bubble popping.

Frequency filtering (``min_count``) removes *weak* k-mers before the
graph is built; the Velvet-class cleanups in this module remove the
error structures that survive it:

* **tips** — short dead-end branches hanging off a junction, produced
  by errors near read ends.  A tip is clipped when it is shorter than
  ``max_tip_length`` edges and strictly weaker (lower coverage) than
  the branch it competes with.
* **bubbles** — two short parallel paths between the same pair of
  junction nodes, produced by an error (or a SNP) in the middle of
  reads.  The weaker side of the bubble is removed.

Both operate on :class:`~repro.assembly.debruijn.DeBruijnGraph`
*rebuilding* it without the doomed edges (the graph class is
append-only by design), and both return statistics so pipelines can
report what was cleaned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembly.debruijn import DeBruijnGraph, Edge


@dataclass(frozen=True)
class SimplifyStats:
    """What one cleanup pass removed."""

    tips_clipped: int = 0
    tip_edges_removed: int = 0
    bubbles_popped: int = 0
    bubble_edges_removed: int = 0

    @property
    def edges_removed(self) -> int:
        return self.tip_edges_removed + self.bubble_edges_removed


def _rebuild_without(
    graph: DeBruijnGraph, doomed: set[int]
) -> DeBruijnGraph:
    """Copy the graph minus the edges whose ``id()`` is doomed."""
    out = DeBruijnGraph(k=graph.k)
    for edge in graph.edges():
        if id(edge) not in doomed:
            out.add_kmer(edge.kmer, edge.count)
    return out


def _walk_tip(
    graph: DeBruijnGraph, edge: Edge, max_length: int
) -> list[Edge] | None:
    """Follow a forward path from ``edge``; a tip if it dead-ends
    within ``max_length`` edges without re-joining a junction flow."""
    path = [edge]
    node = edge.target
    while len(path) <= max_length:
        outs = graph.out_edges(node)
        ins = graph.in_degree(node)
        if ins > 1:
            return None  # re-joins the main flow: not a tip
        if not outs:
            return path  # dead end within budget: a tip
        if len(outs) > 1:
            return None  # becomes a junction itself
        path.append(outs[0])
        node = outs[0].target
    return None


def _path_coverage(path: list[Edge]) -> float:
    return sum(e.count for e in path) / len(path)


def clip_tips(
    graph: DeBruijnGraph,
    max_tip_length: int | None = None,
    coverage_ratio: float = 0.5,
) -> tuple[DeBruijnGraph, SimplifyStats]:
    """Remove short, weak dead-end branches.

    Args:
        graph: input graph (not modified).
        max_tip_length: tip budget in edges (default ``2 * k``, the
            Velvet heuristic).
        coverage_ratio: a tip is clipped only when its mean coverage is
            below this fraction of the strongest competing branch.

    Returns:
        (cleaned graph, stats).
    """
    if max_tip_length is None:
        max_tip_length = 2 * graph.k
    if max_tip_length <= 0:
        raise ValueError("max_tip_length must be positive")
    if not 0.0 < coverage_ratio <= 1.0:
        raise ValueError("coverage_ratio must be in (0, 1]")

    doomed: set[int] = set()
    tips = 0
    for node in list(graph.nodes()):
        outs = graph.out_edges(node)
        if len(outs) < 2:
            continue  # tips compete at forward junctions
        candidates: list[list[Edge]] = []
        for edge in outs:
            tip = _walk_tip(graph, edge, max_tip_length)
            candidates.append(tip if tip is not None else [])
        strongest = max(e.count for e in outs)
        some_branch_continues = any(not t for t in candidates)
        best_tip = max(
            (t for t in candidates if t), key=_path_coverage, default=None
        )
        for tip in candidates:
            if not tip:
                continue
            if not some_branch_continues and tip is best_tip:
                continue  # every branch dead-ends: keep the strongest
            if _path_coverage(tip) <= coverage_ratio * strongest:
                doomed.update(id(e) for e in tip)
                tips += 1
    cleaned = _rebuild_without(graph, doomed)
    return cleaned, SimplifyStats(
        tips_clipped=tips, tip_edges_removed=len(doomed)
    )


def _walk_simple(
    graph: DeBruijnGraph, edge: Edge, max_length: int
) -> list[Edge] | None:
    """Follow the unique simple path from ``edge`` until a node with
    in-degree > 1 (a potential bubble sink) or give up."""
    path = [edge]
    node = edge.target
    while len(path) <= max_length:
        if graph.in_degree(node) > 1:
            return path
        outs = graph.out_edges(node)
        if len(outs) != 1:
            return None
        path.append(outs[0])
        node = outs[0].target
    return None


def pop_bubbles(
    graph: DeBruijnGraph,
    max_bubble_length: int | None = None,
) -> tuple[DeBruijnGraph, SimplifyStats]:
    """Collapse two-path bubbles, keeping the higher-coverage side.

    A bubble is two simple paths that leave one node and re-meet at
    another within ``max_bubble_length`` edges (default ``2 * k``).
    """
    if max_bubble_length is None:
        max_bubble_length = 2 * graph.k
    if max_bubble_length <= 0:
        raise ValueError("max_bubble_length must be positive")

    doomed: set[int] = set()
    bubbles = 0
    for node in list(graph.nodes()):
        outs = [e for e in graph.out_edges(node) if id(e) not in doomed]
        if len(outs) < 2:
            continue
        walked = [
            (edge, _walk_simple(graph, edge, max_bubble_length))
            for edge in outs
        ]
        # group alternatives by their sink node
        by_sink: dict[int, list[list[Edge]]] = {}
        for edge, path in walked:
            if path is not None:
                by_sink.setdefault(path[-1].target, []).append(path)
        for sink, paths in by_sink.items():
            if len(paths) < 2:
                continue
            paths.sort(key=_path_coverage, reverse=True)
            for loser in paths[1:]:
                if any(id(e) in doomed for e in loser):
                    continue
                doomed.update(id(e) for e in loser)
                bubbles += 1
    cleaned = _rebuild_without(graph, doomed)
    return cleaned, SimplifyStats(
        bubbles_popped=bubbles, bubble_edges_removed=len(doomed)
    )


def simplify_graph(
    graph: DeBruijnGraph,
    max_tip_length: int | None = None,
    max_bubble_length: int | None = None,
    rounds: int = 2,
) -> tuple[DeBruijnGraph, SimplifyStats]:
    """Alternate tip clipping and bubble popping until stable.

    Returns the cleaned graph and the accumulated statistics.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    total_tips = total_tip_edges = total_bubbles = total_bubble_edges = 0
    current = graph
    for _ in range(rounds):
        current, tip_stats = clip_tips(current, max_tip_length)
        current, bubble_stats = pop_bubbles(current, max_bubble_length)
        total_tips += tip_stats.tips_clipped
        total_tip_edges += tip_stats.tip_edges_removed
        total_bubbles += bubble_stats.bubbles_popped
        total_bubble_edges += bubble_stats.bubble_edges_removed
        if tip_stats.edges_removed + bubble_stats.edges_removed == 0:
            break
    return current, SimplifyStats(
        tips_clipped=total_tips,
        tip_edges_removed=total_tip_edges,
        bubbles_popped=total_bubbles,
        bubble_edges_removed=total_bubble_edges,
    )
