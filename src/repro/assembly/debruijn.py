"""Stage 2a — de Bruijn graph construction (paper Fig. 5c).

The reconstructed ``DeBruijn(Hashmap, k)`` procedure: for every k-mer
in the hash table, ``node_1 = k_mer[0 .. k-2]`` and ``node_2 =
k_mer[1 .. k-1]`` become vertices and ``(node_1, node_2)`` an edge.
Nodes are (k-1)-mers stored as packed integers; each distinct k-mer
contributes one edge carrying its observed frequency as an attribute
(frequencies below ``min_count`` can be dropped — the standard
error-filtering knob).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.genome.alphabet import BITS_PER_BASE
from repro.genome.kmer import unpack_kmer
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class Edge:
    """One de Bruijn edge: an observed k-mer linking two (k-1)-mers."""

    source: int
    target: int
    kmer: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("edge count must be positive")


@dataclass
class DeBruijnGraph:
    """A de Bruijn multigraph over packed (k-1)-mer node keys."""

    k: int
    _adjacency: dict[int, list[Edge]] = field(default_factory=dict)
    _in_degree: Counter = field(default_factory=Counter)
    _out_degree: Counter = field(default_factory=Counter)
    _edge_count: int = 0

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("de Bruijn construction needs k >= 2")

    # ----- construction -----------------------------------------------------

    @property
    def node_bases(self) -> int:
        """Bases per node label (k - 1)."""
        return self.k - 1

    def split_kmer(self, packed_kmer: int) -> tuple[int, int]:
        """(prefix node, suffix node) of a packed k-mer."""
        node_bits = BITS_PER_BASE * self.node_bases
        mask = (1 << node_bits) - 1
        prefix = packed_kmer >> BITS_PER_BASE
        suffix = packed_kmer & mask
        return prefix, suffix

    def add_kmer(self, packed_kmer: int, count: int = 1) -> Edge:
        """MEM_insert of one k-mer's nodes and edge."""
        source, target = self.split_kmer(packed_kmer)
        edge = Edge(source=source, target=target, kmer=packed_kmer, count=count)
        self._adjacency.setdefault(source, []).append(edge)
        self._adjacency.setdefault(target, [])
        self._out_degree[source] += 1
        self._in_degree[target] += 1
        self._edge_count += 1
        return edge

    @classmethod
    def from_counts(
        cls,
        counts: Mapping[int, int],
        k: int,
        min_count: int = 1,
    ) -> "DeBruijnGraph":
        """Build the graph from a hash table of k-mer frequencies."""
        if min_count <= 0:
            raise ValueError("min_count must be positive")
        graph = cls(k=k)
        for packed, count in sorted(counts.items()):
            if count >= min_count:
                graph.add_kmer(packed, count)
        return graph

    # ----- queries ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[int]:
        return iter(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        for out_edges in self._adjacency.values():
            yield from out_edges

    def out_edges(self, node: int) -> list[Edge]:
        return list(self._adjacency.get(node, []))

    def out_degree(self, node: int) -> int:
        return self._out_degree.get(node, 0)

    def in_degree(self, node: int) -> int:
        return self._in_degree.get(node, 0)

    def node_sequence(self, node: int) -> DnaSequence:
        """Decode a node key back into its (k-1)-mer."""
        return unpack_kmer(node, self.node_bases)

    def has_node(self, node: int) -> bool:
        return node in self._adjacency

    # ----- structure analysis --------------------------------------------------------

    def degree_imbalance(self) -> dict[int, int]:
        """node -> out_degree - in_degree (Euler path endpoints)."""
        imbalance: dict[int, int] = {}
        for node in self._adjacency:
            delta = self.out_degree(node) - self.in_degree(node)
            if delta:
                imbalance[node] = delta
        return imbalance

    def connected_components(self) -> list[set[int]]:
        """Weakly connected components (undirected reachability)."""
        undirected: dict[int, set[int]] = defaultdict(set)
        for node in self._adjacency:
            undirected.setdefault(node, set())
        for edge in self.edges():
            undirected[edge.source].add(edge.target)
            undirected[edge.target].add(edge.source)
        seen: set[int] = set()
        components: list[set[int]] = []
        for start in undirected:
            if start in seen:
                continue
            stack = [start]
            component: set[int] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(undirected[node] - component)
            seen |= component
            components.append(component)
        return components

    def is_branching(self, node: int) -> bool:
        """True if the node is not a simple pass-through (1 in, 1 out)."""
        return not (self.in_degree(node) == 1 and self.out_degree(node) == 1)


def build_graph_from_sequences(
    sequences: Iterable[DnaSequence], k: int, min_count: int = 1
) -> DeBruijnGraph:
    """Convenience: software count + graph build in one step."""
    from repro.genome.kmer import count_kmers

    counts = count_kmers(list(sequences), k)
    return DeBruijnGraph.from_counts(counts, k=k, min_count=min_count)
