"""Stage 3 — scaffolding (the paper's declared future work).

The paper leaves scaffolding out ("we ... leave stage-3 as our future
work"), so this module is the *extension* deliverable: a greedy
overlap-based scaffolder that merges contigs whose ends overlap by at
least ``min_overlap`` exact bases, and otherwise chains them with gap
placeholders when mate hints are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.assembly.contigs import Contig
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class Scaffold:
    """An ordered chain of contigs merged into one sequence."""

    name: str
    sequence: DnaSequence
    members: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.sequence)


def _suffix_prefix_overlap(a: str, b: str, min_overlap: int, max_overlap: int) -> int:
    """Longest exact overlap between a's suffix and b's prefix."""
    limit = min(len(a), len(b), max_overlap)
    for length in range(limit, min_overlap - 1, -1):
        if a[-length:] == b[:length]:
            return length
    return 0


def greedy_scaffold(
    contigs: Sequence[Contig],
    min_overlap: int = 20,
    max_overlap: int = 500,
) -> list[Scaffold]:
    """Greedily merge contigs on their best exact end overlaps.

    Repeatedly joins the pair with the longest suffix/prefix overlap
    until no pair overlaps by at least ``min_overlap`` bases.  This is
    intentionally a simple, deterministic closure of the gap between
    contig generation and full scaffolding.

    Returns:
        Scaffolds sorted by length, longest first.  Contigs that never
        merge come back as singleton scaffolds.
    """
    if min_overlap <= 0:
        raise ValueError("min_overlap must be positive")
    if max_overlap < min_overlap:
        raise ValueError("max_overlap must be >= min_overlap")

    pieces: dict[int, tuple[str, list[str]]] = {
        i: (str(c.sequence), [c.name]) for i, c in enumerate(contigs)
    }
    merged = True
    while merged and len(pieces) > 1:
        merged = False
        best: tuple[int, int, int] | None = None  # (overlap, i, j)
        keys = list(pieces)
        for i in keys:
            for j in keys:
                if i == j:
                    continue
                overlap = _suffix_prefix_overlap(
                    pieces[i][0], pieces[j][0], min_overlap, max_overlap
                )
                if overlap and (best is None or overlap > best[0]):
                    best = (overlap, i, j)
        if best is not None:
            overlap, i, j = best
            seq_i, names_i = pieces[i]
            seq_j, names_j = pieces[j]
            pieces[i] = (seq_i + seq_j[overlap:], names_i + names_j)
            del pieces[j]
            merged = True

    scaffolds = [
        Scaffold(
            name=f"scaffold{idx}",
            sequence=DnaSequence(seq),
            members=tuple(names),
        )
        for idx, (seq, names) in enumerate(
            sorted(pieces.values(), key=lambda p: len(p[0]), reverse=True)
        )
    ]
    return scaffolds


def scaffold_n50(scaffolds: Sequence[Scaffold]) -> int:
    """N50 over scaffolds (mirrors metrics.n50 for contigs)."""
    if not scaffolds:
        return 0
    lengths = sorted((len(s) for s in scaffolds), reverse=True)
    threshold = 0.5 * sum(lengths)
    running = 0
    for length in lengths:
        running += length
        if running >= threshold:
            return length
    return lengths[-1]
