"""Typed exception hierarchy for the PIM-Assembler reproduction.

Every error the library raises on the execution/resilience paths is a
:class:`ReproError` subclass, so callers can catch the whole family (or
one precise failure mode) without string-matching messages.  Each class
also inherits the builtin its call site historically raised
(``ValueError`` / ``MemoryError``), so pre-existing ``except`` clauses
and tests keep working.

Hierarchy::

    ReproError
    ├── FaultConfigError(ValueError)      — bad fault/policy parameters
    ├── CapacityError(ValueError)         — device/sub-array capacity exceeded
    ├── PhaseActiveError(RuntimeError)    — ledger op that needs no open phase
    ├── BufferStateError(RuntimeError)    — GRB read before load
    ├── AllocationError(MemoryError)      — row allocator exhausted
    ├── TableFullError(MemoryError)       — k-mer table region full
    ├── SubarrayQuarantinedError          — touched a quarantined sub-array
    ├── InputError                        — malformed/unusable user input
    │   └── TraceFormatError              — unparseable AAP trace document
    ├── TraceHazardError                  — inline checker caught a hazard
    ├── StageTimeoutError                 — a deadline budget expired
    ├── JournalError                      — job journal missing/corrupt/mismatched
    │   └── JournalLockedError            — journal held by another runner
    ├── JobFailedError                    — retry ladder exhausted
    ├── AdmissionError                    — service refused to admit a job
    │   └── CircuitOpenError              — tenant circuit breaker is open
    └── VerificationError
        └── UncorrectableFaultError       — retries exhausted, result corrupt
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the repro library."""


class FaultConfigError(ReproError, ValueError):
    """Invalid fault-model or resilience-policy configuration."""


class CapacityError(ReproError, ValueError):
    """A workload exceeds the device's capacity (partition over more chips)."""


class PhaseActiveError(ReproError, RuntimeError):
    """A :class:`~repro.core.stats.StatsLedger` operation that requires
    no open phase ran while one was active.

    Merging or snapshotting a ledger mid-phase would silently split one
    phase's events across two records (or mix partial totals into the
    target), so both refuse instead.  Inherits ``RuntimeError`` because
    the snapshot path historically raised that builtin.
    """


class BufferStateError(ReproError, RuntimeError):
    """A shared buffer (the MAT's global row buffer) was read before it
    was loaded.

    Inherits ``RuntimeError`` because the GRB read path historically
    raised that builtin.
    """


class AllocationError(ReproError, MemoryError):
    """The bump allocator ran out of usable data rows in a sub-array."""


class TableFullError(ReproError, MemoryError):
    """A sub-array's k-mer table region has no free slots left."""


class SubarrayQuarantinedError(ReproError):
    """An operation targeted a sub-array the resilience engine retired.

    Attributes:
        subarray_key: the quarantined ``(bank, mat, subarray)`` triple.
    """

    def __init__(
        self, subarray_key: tuple[int, int, int], message: str | None = None
    ) -> None:
        self.subarray_key = subarray_key
        super().__init__(
            message or f"sub-array {subarray_key} is quarantined"
        )


class InputError(ReproError):
    """User-supplied input (reads file, CLI parameters) is unusable.

    The CLI maps this family to a one-line message and a clean nonzero
    exit code instead of a traceback.
    """


class TraceFormatError(InputError):
    """An AAP trace document fails to parse or violates the envelope.

    Distinct from a verifier *finding*: a finding is a hazard in a
    well-formed command stream (exit code 1 from ``repro
    verify-trace``); this error means the file is not a trace document
    at all (exit code 2, like every other :class:`InputError`).
    """


class TraceHazardError(ReproError):
    """The inline AAP checker caught a hazard at the issuing call site.

    Raised only in the opt-in strict mode of
    :class:`repro.analysis.verifier.InlineChecker`; the offline
    ``repro verify-trace`` path reports the same hazards as findings
    instead of raising.
    """


class StageTimeoutError(ReproError):
    """A cooperative deadline budget expired inside a pipeline stage.

    Raised by the watchdog (:mod:`repro.runtime.watchdog`) at one of
    the cancellation checkpoints the compute loops poll.  The job layer
    guarantees the on-disk journal still holds the last completed stage
    boundary, so the job remains resumable.

    Attributes:
        stage: the stage that was executing (``"hashmap"`` / ...).
        scope: ``"stage"`` when a per-stage budget expired, ``"job"``
            when the whole-job budget did.
        budget_s: the configured budget in seconds.
        elapsed_s: wall-clock seconds consumed when the check fired.
    """

    def __init__(
        self, stage: str, scope: str, budget_s: float, elapsed_s: float
    ) -> None:
        self.stage = stage
        self.scope = scope
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        super().__init__(
            f"{scope} deadline of {budget_s:.3f}s exceeded after "
            f"{elapsed_s:.3f}s (in stage {stage!r}); job is resumable "
            "from the last journaled checkpoint"
        )


class JournalError(ReproError):
    """A job journal is missing, corrupt, or belongs to another job."""


class JournalLockedError(JournalError):
    """Another live runner holds the journal's exclusive MANIFEST lock.

    Two :class:`~repro.runtime.jobs.JobRunner` processes pointed at the
    same ``--job-dir`` would interleave journal writes and corrupt the
    manifest prefix; the second acquirer gets this error instead.  The
    lock is advisory and process-scoped (``flock``), so it can never go
    stale after ``kill -9`` — a dead holder releases it automatically.

    Attributes:
        job_dir: the contended journal directory.
    """

    def __init__(self, job_dir: str, message: "str | None" = None) -> None:
        self.job_dir = job_dir
        super().__init__(
            message
            or f"job journal at {job_dir} is locked by another running "
            "job; wait for it to finish or choose a different --job-dir"
        )


class AdmissionError(ReproError):
    """The assembly service refused to admit (or shed) a job.

    Load-shedding is a *typed* outcome, not a crash: quota overruns,
    oversized inputs and saturated queues all surface as this family so
    callers (and the CLI, which maps it to its own exit code) can tell
    "the service is protecting itself" from "the job is broken".

    Attributes:
        tenant: the submitting tenant id.
        reason: stable machine-readable reason code, e.g.
            ``"tenant-queue-full"`` / ``"service-queue-full"`` /
            ``"input-too-large"`` / ``"tenant-inflight-cap"`` /
            ``"breaker-open"``.
    """

    def __init__(self, tenant: str, reason: str, message: str) -> None:
        self.tenant = tenant
        self.reason = reason
        super().__init__(message)


class CircuitOpenError(AdmissionError):
    """A tenant's circuit breaker is open after repeated job failures.

    New submissions from the tenant are shed until the breaker's
    cooldown (measured in scheduling rounds, not wall-clock) elapses
    and a half-open probe job succeeds.

    Attributes:
        retry_after_rounds: scheduling rounds until a probe is allowed.
    """

    def __init__(self, tenant: str, retry_after_rounds: int) -> None:
        self.retry_after_rounds = retry_after_rounds
        super().__init__(
            tenant,
            "breaker-open",
            f"tenant {tenant!r} circuit breaker is open after repeated "
            f"failures; retry after {retry_after_rounds} scheduling "
            "round(s)",
        )


class JobFailedError(ReproError):
    """Every rung of the retry/degradation ladder was exhausted.

    Attributes:
        stage: the stage that could not be completed.
        attempts: total stage executions (1 original + retries).
        last_error: the exception that ended the final attempt.
    """

    def __init__(
        self, stage: str, attempts: int, last_error: BaseException
    ) -> None:
        self.stage = stage
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempts across the "
            f"degradation ladder: {last_error}"
        )


class VerificationError(ReproError):
    """An in-memory verification step failed."""


class UncorrectableFaultError(VerificationError):
    """A verified operation stayed corrupt after every bounded retry.

    Raised only under ``ResiliencePolicy(raise_on_uncorrected=True)``;
    the default graceful-degradation mode records the event in the
    :class:`~repro.core.resilience.ResilienceEngine` and continues.

    Attributes:
        subarray_key: where the operation executed.
        mechanism: the fault mechanism (``"compute2"`` / ``"tra"`` / ...).
        attempts: total executions (1 original + retries).
    """

    def __init__(
        self,
        subarray_key: tuple[int, int, int],
        mechanism: str,
        attempts: int,
    ) -> None:
        self.subarray_key = subarray_key
        self.mechanism = mechanism
        self.attempts = attempts
        super().__init__(
            f"{mechanism} op in sub-array {subarray_key} still corrupt "
            f"after {attempts} attempts"
        )
