"""PIM-Assembler: a processing-in-DRAM platform for genome assembly.

A full behavioural reproduction of *PIM-Assembler: A Processing-in-
Memory Platform for Genome Assembly* (Angizi, Fahmi, Zhang, Fan —
DAC 2020).

Package map:

* :mod:`repro.dram` — analog DRAM substrate: charge sharing, shifted-
  VTC sensing, process variation, transients.
* :mod:`repro.core` — the architectural contribution: computational
  sub-arrays, the AAP ISA, controller, timing/energy/area models and
  the :class:`~repro.core.platform.PimAssembler` facade.
* :mod:`repro.platforms` — analytic models of the compared platforms
  (CPU, GPU, HMC 2.0, Ambit, DRISA-1T1C/3T1C).
* :mod:`repro.genome` — sequences, FASTA/FASTQ IO, synthetic
  references, read simulation, k-mers.
* :mod:`repro.assembly` — the PIM-mapped de Bruijn pipeline (hashmap,
  graph, Eulerian traversal, contigs, scaffolding) plus the software
  golden model.
* :mod:`repro.mapping` — correlated hash-table layout, interval-block
  partitioning, allocation, adjacency mapping, the Pd model.
* :mod:`repro.eval` — one experiment module per paper table/figure.

Quickstart::

    from repro import PimAssembler, assemble_with_pim
    from repro.genome import synthetic_chromosome, ReadSimulator

    ref = synthetic_chromosome(2000, seed=7)
    sim = ReadSimulator(read_length=60, seed=1)
    reads = sim.sample(ref, sim.reads_for_coverage(len(ref), 25))
    result = assemble_with_pim(reads, k=21)
    print(result.contigs[0].sequence)
"""

from repro.assembly import PimPipeline, assemble, assemble_with_pim
from repro.core import PimAssembler
from repro.genome import DnaSequence, ReadSimulator, synthetic_chromosome

__version__ = "1.0.0"

__all__ = [
    "PimAssembler",
    "PimPipeline",
    "assemble",
    "assemble_with_pim",
    "DnaSequence",
    "ReadSimulator",
    "synthetic_chromosome",
    "__version__",
]
