"""Chrome/Perfetto trace-event export and metrics snapshots.

Serialises a :class:`~repro.observability.spans.Tracer` into the JSON
Chrome trace-event format (the ``traceEvents`` array Perfetto's UI and
``chrome://tracing`` both load):

* the primary timeline is **simulated device time** — ``ts`` is the
  modeled nanosecond the stats ledger had charged when the span
  opened/closed, so stage durations in the viewer agree with
  ``StatsLedger.totals()`` (host wall-clock rides along in ``args``);
* every lane becomes one named thread track: one lane per pipeline
  stage (``hashmap`` / ``debruijn`` / ``traverse``), plus ``job``,
  ``resilience`` and ``watchdog`` lanes for ladder decisions, recovery
  events and deadline activity;
* spans emit strictly nested ``B``/``E`` duration pairs (validated by
  :func:`validate_chrome_trace`, which CI runs against every smoke
  trace); instant events emit ``i`` phases.

Also here: the ``metrics.json`` snapshot writer and the sub-array
utilization heatmap table derived from a platform's row allocator.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Span, Tracer

__all__ = [
    "chrome_trace",
    "format_subarray_heatmap",
    "subarray_utilization",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
    "write_metrics",
]

#: preferred lane ordering (sort index in the viewer); unknown lanes follow
LANE_ORDER = (
    "service",
    "job",
    "hashmap",
    "debruijn",
    "traverse",
    "resilience",
    "watchdog",
)

_PID = 1


def _lane_tids(tracer: Tracer) -> dict[str, int]:
    """Stable lane → tid assignment, known lanes first."""
    lanes = tracer.lanes()
    ordered = [lane for lane in LANE_ORDER if lane in lanes]
    ordered += [lane for lane in lanes if lane not in LANE_ORDER]
    return {lane: tid for tid, lane in enumerate(ordered, start=1)}


def _span_args(span: Span) -> dict:
    args = {
        "wall_us": span.wall_duration_ns / 1e3,
        "sim_ns": span.sim_duration_ns,
    }
    args.update(span.attributes)
    return args


def chrome_trace(tracer: Tracer, power=None) -> dict:
    """Render a tracer into a Chrome trace-event JSON document.

    Only finished spans are exported (a crashed run can leave open
    ones); ``ts`` is simulated time in microseconds, the unit the
    format specifies.  Per lane, spans are emitted in depth-first
    start order, which yields strictly nested ``B``/``E`` pairs with
    non-decreasing timestamps — the simulated clock never runs
    backwards, and a child span's interval is contained in its
    parent's by construction of the tracer stack.

    When a :class:`~repro.observability.power.PowerTimeline` is given,
    its binned series render as Perfetto **counter tracks** (``"C"``
    phase events on ``tid 0``): one ``power_w`` track for the whole
    device plus one ``power_w.<lane>`` track per attribution lane,
    sitting next to the span lanes on the same simulated clock.
    """
    tids = _lane_tids(tracer)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "pim-assembler (simulated time)"},
        }
    ]
    for lane, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    finished = [s for s in tracer.spans() if s.finished]
    dropped = len(tracer.spans()) - len(finished)

    # Per-lane forest: a span roots its lane when its parent is absent,
    # unfinished, or renders in a different lane.
    by_id = {s.span_id: s for s in finished}
    children: dict[int, list[Span]] = {}
    roots: dict[str, list[Span]] = {}
    for s in finished:
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is not None and parent.lane == s.lane:
            children.setdefault(parent.span_id, []).append(s)
        else:
            roots.setdefault(s.lane, []).append(s)

    def emit(s: Span, tid: int, out: list[dict]) -> None:
        out.append(
            {
                "name": s.name,
                "ph": "B",
                "ts": s.sim_start_ns / 1e3,
                "pid": _PID,
                "tid": tid,
                "args": _span_args(s),
            }
        )
        for child in children.get(s.span_id, []):
            emit(child, tid, out)
        out.append(
            {
                "name": s.name,
                "ph": "E",
                "ts": s.sim_end_ns / 1e3,
                "pid": _PID,
                "tid": tid,
            }
        )

    # One stream per lane: the depth-first B/E stream is already
    # ts-non-decreasing; instant events are folded in by timestamp
    # (stable sort, so B/E ordering — and therefore nesting — survives).
    streams: dict[str, list[dict]] = {lane: [] for lane in tids}
    for lane, lane_roots in roots.items():
        for root in lane_roots:
            emit(root, tids[lane], streams[lane])
    for evt in sorted(tracer.events(), key=lambda e: e.sim_ns):
        streams[evt.lane].append(
            {
                "name": evt.name,
                "ph": "i",
                "s": "t",
                "ts": evt.sim_ns / 1e3,
                "pid": _PID,
                "tid": tids[evt.lane],
                "args": dict(evt.attributes),
            }
        )
    for lane in tids:
        events.extend(sorted(streams[lane], key=lambda e: e["ts"]))

    counter_events = 0
    if power is not None:
        counters: list[dict] = []
        tracks = [("power_w", None)] + [
            (f"power_w.{lane}", lane) for lane in power.lanes()
        ]
        for track_name, lane in tracks:
            for bin_start_ns, power_w in power.series(lane):
                counters.append(
                    {
                        "name": track_name,
                        "ph": "C",
                        "ts": bin_start_ns / 1e3,
                        "pid": _PID,
                        "tid": 0,
                        "args": {"W": power_w},
                    }
                )
        # all counter tracks share tid 0: one ts-sorted stream keeps
        # the per-(pid, tid) monotonicity contract the validator checks
        counters.sort(key=lambda e: (e["ts"], e["name"]))
        events.extend(counters)
        counter_events = len(counters)

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated device time (us)",
            "spans": len(finished),
            "instant_events": len(tracer.events()),
        },
    }
    if counter_events:
        doc["otherData"]["counter_events"] = counter_events
    if dropped:
        doc["otherData"]["unfinished_spans_dropped"] = dropped
    return doc


def write_chrome_trace(path: "str | Path", tracer: Tracer, power=None) -> Path:
    """Serialise the tracer to ``path``; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(tracer, power=power), indent=1),
        encoding="utf-8",
    )
    return path


# ----- schema validation -----------------------------------------------------

#: trace-event phases the exporter may legitimately emit
#: (``C`` = counter samples from the power timeline)
_ALLOWED_PHASES = {"B", "E", "i", "M", "C"}


def validate_chrome_trace(doc: dict) -> list[str]:
    """Check a trace document against the Chrome trace-event schema.

    Returns a list of problems (empty = valid).  Beyond well-formed
    ``ph``/``ts``/``pid``/``tid`` fields, enforces the contract the
    exporter promises: per ``(pid, tid)``, ``B``/``E`` pairs strictly
    nest (every ``E`` matches the innermost open ``B`` by name), every
    opened span closes, and timestamps never decrease in file order.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    for i, evt in enumerate(events):
        if not isinstance(evt, dict):
            problems.append(f"event #{i}: not an object")
            continue
        ph = evt.get("ph")
        if ph not in _ALLOWED_PHASES:
            problems.append(f"event #{i}: bad ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(evt.get(key), int):
                problems.append(f"event #{i}: missing/invalid {key}")
        if ph == "M":
            continue
        if not isinstance(evt.get("name"), str) or not evt.get("name"):
            problems.append(f"event #{i}: missing name")
        ts = evt.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event #{i}: missing/invalid ts")
            continue
        key = (evt.get("pid"), evt.get("tid"))
        if ts < last_ts.get(key, float("-inf")):
            problems.append(
                f"event #{i}: ts {ts} decreases on pid/tid {key}"
            )
        last_ts[key] = ts
        if ph == "C":
            args = evt.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event #{i}: counter without args")
            elif not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"event #{i}: non-numeric counter value")
        elif ph == "B":
            stacks.setdefault(key, []).append(evt.get("name", ""))
        elif ph == "E":
            stack = stacks.get(key, [])
            if not stack:
                problems.append(f"event #{i}: E without open B on {key}")
            else:
                opened = stack.pop()
                name = evt.get("name")
                if name is not None and name != opened:
                    problems.append(
                        f"event #{i}: E {name!r} closes B {opened!r} on {key}"
                    )
    for key, stack in stacks.items():
        if stack:
            problems.append(f"pid/tid {key}: unclosed B spans {stack}")
    return problems


def validate_trace_file(path: "str | Path") -> list[str]:
    """Load and validate a trace JSON file; returns the problem list."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_chrome_trace(doc)


def validate_trace_report(path: "str | Path"):
    """Findings-model view of :func:`validate_trace_file`.

    Each schema problem becomes a rule-``X001`` finding in the shared
    :class:`~repro.analysis.findings.FindingReport` model, so the span
    validator, the AAP trace verifier and the lint pass report (and
    exit) through one vocabulary.  The legacy ``list[str]`` API above
    stays for callers that assert on exact problem strings.
    """
    from repro.analysis.findings import FindingReport

    report = FindingReport()
    for problem in validate_trace_file(path):
        report.add("X001", problem, source=str(path))
    return report


# ----- metrics snapshot ------------------------------------------------------


def write_metrics(
    path: "str | Path",
    registry: MetricsRegistry,
    extra: "dict | None" = None,
) -> Path:
    """Write ``metrics.json``: the registry snapshot plus extras.

    ``extra`` merges additional top-level sections (e.g. the sub-array
    heatmap) next to the ``"metrics"`` map.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {"metrics": registry.snapshot()}
    if extra:
        doc.update(extra)
    path.write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return path


# ----- sub-array utilization heatmap ----------------------------------------


def subarray_utilization(pim) -> list[dict]:
    """Per-sub-array occupancy records from a platform's memory state.

    One record per *instantiated* sub-array holding data: ``rows_used``
    is the number of data rows with at least one set bit (which covers
    the k-mer table's slot rows — the table writes straight into row
    storage, not through the bump allocator), floored by the allocator
    cursor for explicitly allocated rows.  Records carry ``{"bank",
    "mat", "subarray", "rows_used", "data_rows", "utilization"}``,
    sorted busiest first.  Works identically on a live platform and on
    one rehydrated from a journal snapshot.
    """
    data_rows = pim.geometry.bank.mat.subarray.data_rows
    records = []
    for bank_idx, bank in pim.device._banks.items():
        for mat_idx, mat in bank._mats.items():
            for sub_idx, sub in mat._subarrays.items():
                key = (bank_idx, mat_idx, sub_idx)
                # packed occupancy: a row is used iff any stored word
                # is non-zero (tail bits are zero by invariant)
                used = int(
                    sub.store.tensor[sub.slot, :data_rows]
                    .any(axis=1)
                    .sum()
                )
                used = max(used, int(pim._next_row.get(key, 0)))
                if used <= 0:
                    continue
                records.append(
                    {
                        "bank": bank_idx,
                        "mat": mat_idx,
                        "subarray": sub_idx,
                        "rows_used": used,
                        "data_rows": int(data_rows),
                        "utilization": used / data_rows,
                    }
                )
    records.sort(
        key=lambda r: (-r["utilization"], r["bank"], r["mat"], r["subarray"])
    )
    return records


def format_subarray_heatmap(records: list[dict], limit: int = 16) -> str:
    """Text heatmap of sub-array occupancy, busiest first."""
    if not records:
        return "no sub-array allocations recorded"
    width = 24
    lines = [
        f"{'sub-array':>12} {'rows':>11} {'util':>6}  heat",
    ]
    for record in records[:limit]:
        key = f"{record['bank']},{record['mat']},{record['subarray']}"
        bar = "#" * max(1, round(record["utilization"] * width))
        lines.append(
            f"{key:>12} "
            f"{record['rows_used']:>5}/{record['data_rows']:<5} "
            f"{record['utilization']:>5.0%}  {bar}"
        )
    if len(records) > limit:
        rest = records[limit:]
        mean = sum(r["utilization"] for r in rest) / len(rest)
        lines.append(
            f"{'...':>12} (+{len(rest)} more sub-arrays, mean {mean:.0%})"
        )
    return "\n".join(lines)
