"""Metrics registry: counters, gauges and histograms.

The registry is the quantitative half of the observability layer: while
spans (:mod:`repro.observability.spans`) answer *when*, metrics answer
*how much* — command counts per mnemonic, simulated time/energy per
mnemonic, batch sizes, resilience retries and remaps, checkpoint bytes,
sub-array occupancy.

Feeding paths
=============

Existing components never import this module's classes directly; they
feed metrics through two narrow, off-by-default channels:

* the :class:`Recorder` protocol — :class:`~repro.core.stats.StatsLedger`
  forwards every :meth:`~repro.core.stats.StatsLedger.record` call to an
  attached recorder (``None`` by default), preserving the ledger's
  additive-only functional/timed separation: the registry observes the
  same event stream, it never becomes a second source of truth;
* the module-level :func:`inc` / :func:`observe` / :func:`set_gauge`
  helpers, which no-op unless a registry is activated — the same
  pattern the span tracer uses, so instrumented hot paths stay free
  when observability is off.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "STORAGE_BYTES",
    "STORAGE_PACK_ROWS",
    "STORAGE_SLOTS",
    "STORAGE_UNPACK_ROWS",
    "active_registry",
    "inc",
    "observe",
    "set_gauge",
]

#: gauges/counters the packed bit-plane store feeds
#: (:class:`repro.core.storage.BitPlaneStore`): backing-tensor bytes,
#: claimed slots, and rows crossing the pack boundary in each
#: direction.  Per-bank variants append ``.<label>`` (e.g.
#: ``storage.pack_rows.bank0``) — boundary churn is the packed-era
#: performance bug class, so it gets first-class names.
STORAGE_BYTES = "storage.bytes"
STORAGE_SLOTS = "storage.slots"
STORAGE_PACK_ROWS = "storage.pack_rows"
STORAGE_UNPACK_ROWS = "storage.unpack_rows"

#: per-thread slot for the currently active registry — like the span
#: tracer, activation is thread-scoped so concurrent service workers
#: never interleave updates into one unsynchronized registry
_TLS = threading.local()


@runtime_checkable
class Recorder(Protocol):
    """What a :class:`~repro.core.stats.StatsLedger` forwards events to.

    The protocol is deliberately one method wide: the ledger pushes its
    raw command events and nothing else, so the stats path needs no
    knowledge of metric names or aggregation.
    """

    def on_command(
        self,
        command: str,
        count: int,
        time_ns: float,
        energy_nj: float,
        phase: "str | None",
    ) -> None:
        """One ledger record: ``count`` commands, combined time/energy."""


class Counter:
    """Monotonically increasing value (float-valued to carry ns/nJ)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (occupancy, queue depth, configuration)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution with power-of-two buckets.

    Tracks count/sum/min/max exactly plus a coarse shape: bucket ``i``
    counts observations in ``(2**(i-1), 2**i]`` (bucket 0 is ``<= 1``),
    enough to tell "many small batches" from "a few huge ones" without
    storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: highest bucket exponent; observations beyond 2**30 saturate
    MAX_BUCKET = 30

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (self.MAX_BUCKET + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = 0
        bound = 1.0
        while value > bound and index < self.MAX_BUCKET:
            index += 1
            bound *= 2.0
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by upper-bound interpolation.

        Walks the cumulative bucket counts to the bucket holding the
        target rank, then interpolates linearly between the bucket's
        lower and upper bound by rank position, clamped to the exact
        tracked ``min``/``max``.  With power-of-two buckets the
        estimate is within a factor of two of the exact sample
        quantile for positive observations (the property the tests
        check); ``min``/``max`` clamping makes q=0 / q=1 exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        # rank = ceil(q * count), with a tolerance so float noise on an
        # exact boundary (0.7 * 10 -> 7.000...01) cannot shift a rank
        rank = max(1, math.ceil(q * self.count - 1e-9))
        cumulative = 0
        for index, n in enumerate(self.buckets):
            if n == 0:
                continue
            below = cumulative
            cumulative += n
            if cumulative >= rank:
                lower = 0.0 if index == 0 else 2.0 ** (index - 1)
                upper = 2.0 ** index
                fraction = (rank - below) / n
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                f"le_2e{i}": n for i, n in enumerate(self.buckets) if n
            },
        }


class MetricsRegistry:
    """Named metric store; also a :class:`Recorder` for a stats ledger."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ----- creation / lookup ------------------------------------------------

    def _get(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str):
        """The metric registered under ``name`` (``None`` when absent)."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # ----- Recorder protocol ------------------------------------------------

    def on_command(
        self,
        command: str,
        count: int,
        time_ns: float,
        energy_nj: float,
        phase: "str | None",
    ) -> None:
        """Fold one ledger record into the per-mnemonic counters."""
        self.counter(f"pim.commands.{command}").inc(count)
        self.counter(f"pim.time_ns.{command}").inc(time_ns)
        self.counter(f"pim.energy_nj.{command}").inc(energy_nj)
        self.counter("pim.commands.total").inc(count)
        self.counter("pim.time_ns.total").inc(time_ns)
        self.counter("pim.energy_nj.total").inc(energy_nj)
        if phase is not None:
            self.counter(f"pim.stage_time_ns.{phase}").inc(time_ns)

    # ----- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable dump of every metric, sorted by name."""
        return {
            name: self._metrics[name].snapshot() for name in self.names()
        }

    # ----- activation -------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["MetricsRegistry"]:
        """Install this registry as this thread's helpers' target."""
        previous = getattr(_TLS, "registry", None)
        _TLS.registry = self
        try:
            yield self
        finally:
            _TLS.registry = previous


def active_registry() -> "MetricsRegistry | None":
    """This thread's registry installed by :meth:`MetricsRegistry.activate`."""
    return getattr(_TLS, "registry", None)


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the active registry (no-op when none)."""
    active = getattr(_TLS, "registry", None)
    if active is not None:
        active.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry (no-op)."""
    active = getattr(_TLS, "registry", None)
    if active is not None:
        active.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Write a gauge on the active registry (no-op when none)."""
    active = getattr(_TLS, "registry", None)
    if active is not None:
        active.gauge(name).set(value)
