"""Structured span tracing for the PIM-Assembler execution path.

A :class:`Tracer` records *spans* — named, attributed, parent/child
nested intervals — on two clocks at once:

* the host's monotonic wall clock (``time.perf_counter_ns``), which
  measures how long the *simulator* took;
* the **simulated device clock**, the cumulative modeled nanoseconds
  the :class:`~repro.core.stats.StatsLedger` has charged, which
  measures how long the *modeled hardware* took.

Both timelines ride every span, so one trace answers both "where does
the simulation spend python time" and "where does the device spend
device time" — the per-stage breakdown of the paper's Fig. 9, but
end-to-end correlated with resilience recoveries, watchdog deadlines
and job-ladder decisions.

Instrumentation call sites use the module-level :func:`span` and
:func:`event` helpers, which are **off by default**: without an active
tracer they cost one global load and return a shared no-op context
manager, so the instrumented hot paths carry no measurable overhead
(the contract benchmarked by ``benchmarks/bench_observability_overhead``).

Activation is a context manager over a *thread-local* slot, mirroring
the watchdog's design: each service worker thread traces (or doesn't)
independently, so one tracer's span stack can never be corrupted by a
concurrent job's nesting::

    tracer = Tracer(sim_clock=lambda: ledger.elapsed_ns())
    with tracer.activate():
        with span("stage.hashmap", lane="hashmap", engine="bulk"):
            ...
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "active_tracer",
    "event",
    "span",
]

#: per-thread slot for the currently active tracer
_TLS = threading.local()

#: lane a root span lands in when none is given
DEFAULT_LANE = "job"


@dataclass
class Span:
    """One named interval on both clocks.

    Attributes:
        name: span name (dotted, e.g. ``"stage.hashmap"``).
        span_id: unique id within the tracer (issue order, from 1).
        parent_id: enclosing span's id (``None`` for roots).
        lane: timeline lane the span renders in (inherited from the
            parent when not given; pipeline stages use their stage
            name so each stage gets its own Perfetto track).
        wall_start_ns / wall_end_ns: host monotonic timestamps.
        sim_start_ns / sim_end_ns: simulated-device timestamps.
        attributes: arbitrary JSON-able key/values.
    """

    name: str
    span_id: int
    parent_id: "int | None"
    lane: str
    wall_start_ns: int
    sim_start_ns: float
    wall_end_ns: "int | None" = None
    sim_end_ns: "float | None" = None
    attributes: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.wall_end_ns is not None

    @property
    def wall_duration_ns(self) -> int:
        if self.wall_end_ns is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.wall_end_ns - self.wall_start_ns

    @property
    def sim_duration_ns(self) -> float:
        if self.sim_end_ns is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.sim_end_ns - self.sim_start_ns

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value


@dataclass(frozen=True)
class SpanEvent:
    """One instant event (a point, not an interval) on a lane."""

    name: str
    lane: str
    wall_ns: int
    sim_ns: float
    attributes: dict = field(default_factory=dict)


class _NoopSpan:
    """Shared do-nothing stand-in returned when tracing is inactive."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects spans and instant events on the dual clock.

    Args:
        sim_clock: returns the current simulated time in nanoseconds
            (typically the stats ledger's cumulative charged time);
            defaults to a constant 0 so a tracer works standalone.
        wall_clock: monotonic nanosecond source (injectable for tests).
    """

    def __init__(
        self,
        sim_clock: "Callable[[], float] | None" = None,
        wall_clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        self.sim_clock = sim_clock or (lambda: 0.0)
        self.wall_clock = wall_clock
        self._spans: list[Span] = []
        self._events: list[SpanEvent] = []
        self._stack: list[Span] = []
        self._next_id = 1
        #: optional sink notified of span closes and instant events —
        #: the flight recorder's feed (duck-typed: ``on_span_close`` /
        #: ``on_event``); ``None`` keeps recording allocation-free
        self.listener = None

    # ----- recording --------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, lane: "str | None" = None, **attributes
    ) -> Iterator[Span]:
        """Open a nested span; closes (even on error) when the block exits."""
        parent = self._stack[-1] if self._stack else None
        if lane is None:
            lane = parent.lane if parent is not None else DEFAULT_LANE
        record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            lane=lane,
            wall_start_ns=self.wall_clock(),
            sim_start_ns=float(self.sim_clock()),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._spans.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.wall_end_ns = self.wall_clock()
            record.sim_end_ns = float(self.sim_clock())
            if self.listener is not None:
                self.listener.on_span_close(record)

    def event(self, name: str, lane: "str | None" = None, **attributes) -> SpanEvent:
        """Record one instant event (defaults to the current span's lane)."""
        if lane is None:
            current = self._stack[-1] if self._stack else None
            lane = current.lane if current is not None else DEFAULT_LANE
        record = SpanEvent(
            name=name,
            lane=lane,
            wall_ns=self.wall_clock(),
            sim_ns=float(self.sim_clock()),
            attributes=dict(attributes),
        )
        self._events.append(record)
        if self.listener is not None:
            self.listener.on_event(record)
        return record

    # ----- access -----------------------------------------------------------

    @property
    def current_span(self) -> "Span | None":
        return self._stack[-1] if self._stack else None

    def spans(self, name: "str | None" = None) -> list[Span]:
        """All recorded spans, in start order (optionally by name)."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def events(self, name: "str | None" = None) -> list[SpanEvent]:
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def lanes(self) -> list[str]:
        """Every lane touched by a span or event, spans first."""
        seen: dict[str, None] = {}
        for record in self._spans:
            seen.setdefault(record.lane, None)
        for record in self._events:
            seen.setdefault(record.lane, None)
        return list(seen)

    # ----- activation -------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as this thread's :func:`span` target."""
        previous = getattr(_TLS, "tracer", None)
        _TLS.tracer = self
        try:
            yield self
        finally:
            _TLS.tracer = previous


def active_tracer() -> "Tracer | None":
    """This thread's tracer installed by :meth:`Tracer.activate`."""
    return getattr(_TLS, "tracer", None)


def span(name: str, lane: "str | None" = None, **attributes):
    """Open a span on the active tracer — a shared no-op when none is.

    The instrumented call sites across the pipeline, job runtime,
    scheduler and controller all route through here, so disabling
    observability (the default) reduces them to one thread-local check.
    """
    active = getattr(_TLS, "tracer", None)
    if active is None:
        return _NOOP
    return active.span(name, lane=lane, **attributes)


def event(name: str, lane: "str | None" = None, **attributes) -> "SpanEvent | None":
    """Record an instant event on the active tracer (no-op when none)."""
    active = getattr(_TLS, "tracer", None)
    if active is None:
        return None
    return active.event(name, lane=lane, **attributes)
