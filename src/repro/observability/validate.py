"""Trace-schema validation CLI: ``python -m repro.observability.validate``.

Exits through the shared static-analysis taxonomy
(:mod:`repro.analysis.findings`): 0 when every given trace file is
well-formed Chrome trace-event JSON with strictly nested ``B``/``E``
pairs, 1 when any file has findings (each printed), 2 on usage errors.
CI runs this against the smoke trace the hotpath job emits.
"""

from __future__ import annotations

import sys

from repro.analysis.findings import EXIT_INPUT, FindingReport
from repro.observability.export import validate_trace_report


def main(argv: "list[str] | None" = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.observability.validate TRACE.json ...")
        return EXIT_INPUT
    combined = FindingReport()
    for path in paths:
        report = validate_trace_report(path)
        combined.extend(report)
        if report.findings:
            print(f"{path}: INVALID")
            for finding in report:
                print(f"  - {finding.message}")
        else:
            print(f"{path}: ok")
    return combined.exit_code


if __name__ == "__main__":
    sys.exit(main())
