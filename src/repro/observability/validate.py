"""Schema validation CLI: ``python -m repro.observability.validate``.

Validates two artefact kinds through the shared static-analysis
taxonomy (:mod:`repro.analysis.findings`):

* Chrome trace-event JSON (rule ``X001``) — strict ``B``/``E``
  nesting, monotone timestamps, counter-track sanity;
* Prometheus text-format v0.0.4 expositions (rule ``X002``) — files
  ending in ``.prom`` or ``.txt``: legal metric names, ``# TYPE``
  headers preceding their samples, parseable sample values, cumulative
  histogram buckets with a ``+Inf`` bound matching ``_count``, and no
  duplicate samples.

Exit codes: 0 when every file is clean, 1 when any file has findings
(each printed), 2 on usage errors.  CI runs this against the smoke
trace and the ``--telemetry-out`` exposition the hotpath job emits.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.analysis.findings import EXIT_INPUT, FindingReport
from repro.observability.export import validate_trace_report

__all__ = [
    "main",
    "validate_exposition_file",
    "validate_exposition_report",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_TYPE_RE = re.compile(
    r"^# TYPE\s+(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)\s+(?P<kind>\S+)\s*$"
)
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
_LE_RE = re.compile(r'le="(?P<bound>[^"]+)"')


def _parse_value(text: str) -> "float | None":
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def validate_exposition_file(path: "str | Path") -> list[str]:
    """Check a text exposition; returns a problem list (empty = valid)."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"cannot load {path}: {exc}"]
    problems: list[str] = []
    types: dict[str, str] = {}
    seen_samples: set[str] = set()
    #: histogram family -> list of (bound, cumulative) in file order
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    sums: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                match = _TYPE_RE.match(line)
                if match is None:
                    problems.append(f"line {lineno}: malformed TYPE line")
                    continue
                kind = match.group("kind")
                if kind not in _VALID_TYPES:
                    problems.append(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                types[match.group("name")] = kind
            elif not line.startswith("# HELP"):
                problems.append(
                    f"line {lineno}: unknown comment directive"
                )
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
            continue
        sample_key = f"{name}{{{match.group('labels') or ''}}}"
        if sample_key in seen_samples:
            problems.append(f"line {lineno}: duplicate sample {sample_key}")
        seen_samples.add(sample_key)
        # which family does this sample belong to?
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name} without a # TYPE header"
            )
            continue
        if types.get(family) == "histogram" and name == f"{family}_bucket":
            labels = match.group("labels") or ""
            le = _LE_RE.search(labels)
            if le is None:
                problems.append(
                    f"line {lineno}: histogram bucket without le label"
                )
                continue
            bound = _parse_value(le.group("bound"))
            if bound is None:
                problems.append(
                    f"line {lineno}: bad le bound {le.group('bound')!r}"
                )
                continue
            buckets.setdefault(family, []).append((bound, value))
        elif name == f"{family}_count" and types.get(family) == "histogram":
            counts[family] = value
        elif name == f"{family}_sum" and types.get(family) == "histogram":
            sums.add(family)
    for family, series in buckets.items():
        bounds = [b for b, _ in series]
        values = [v for _, v in series]
        if bounds != sorted(bounds):
            problems.append(f"{family}: bucket bounds not ascending")
        if values != sorted(values):
            problems.append(f"{family}: bucket counts not cumulative")
        if not bounds or bounds[-1] != float("inf"):
            problems.append(f"{family}: missing +Inf bucket")
        elif family in counts and values[-1] != counts[family]:
            problems.append(
                f"{family}: +Inf bucket {values[-1]} != _count "
                f"{counts[family]}"
            )
        if family not in counts:
            problems.append(f"{family}: missing _count sample")
        if family not in sums:
            problems.append(f"{family}: missing _sum sample")
    return problems


def validate_exposition_report(path: "str | Path") -> FindingReport:
    """Findings-model view of :func:`validate_exposition_file`."""
    report = FindingReport()
    for problem in validate_exposition_file(path):
        report.add("X002", problem, source=str(path))
    return report


def main(argv: "list[str] | None" = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print(
            "usage: python -m repro.observability.validate "
            "TRACE.json|TELEMETRY.prom ..."
        )
        return EXIT_INPUT
    combined = FindingReport()
    for path in paths:
        if Path(path).suffix in (".prom", ".txt"):
            report = validate_exposition_report(path)
        else:
            report = validate_trace_report(path)
        combined.extend(report)
        if report.findings:
            print(f"{path}: INVALID")
            for finding in report:
                print(f"  - {finding.message}")
        else:
            print(f"{path}: ok")
    return combined.exit_code


if __name__ == "__main__":
    sys.exit(main())
