"""Trace-schema validation CLI: ``python -m repro.observability.validate``.

Exits 0 when every given trace file is well-formed Chrome trace-event
JSON with strictly nested ``B``/``E`` pairs, 1 otherwise (printing each
problem).  CI runs this against the smoke trace the hotpath job emits.
"""

from __future__ import annotations

import sys

from repro.observability.export import validate_trace_file


def main(argv: "list[str] | None" = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.observability.validate TRACE.json ...")
        return 2
    failures = 0
    for path in paths:
        problems = validate_trace_file(path)
        if problems:
            failures += 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
