"""SLO objectives, burn-rate tracking, and the alert-rule evaluator.

The serve manifest can now declare *service-level objectives* per
tenant (a latency bound at a quantile, with an error budget) and
*alert rules* over the metrics registry.  Every scheduler round the
:class:`AlertEvaluator` re-evaluates the rules; a rule crossing its
threshold emits a typed :class:`AlertEvent` into the span trace (lane
``"slo"``), the metrics registry (``alerts.fired.<name>`` counters),
the service audit log and the flight recorder.

Alert-rule grammar (one rule per string)::

    <expr> <op> <number>

    expr  := <metric-name>            value of a counter/gauge
           | rate(<metric-name>)      delta since the last evaluation
           | burn_rate(<tenant>)      SLO budget burn rate for tenant
    op    := > | >= | < | <= | ==

Examples: ``service.failed.total >= 1``,
``rate(service.shed.total) > 10``, ``burn_rate(genomics-a) > 2``.

Rules are **edge-triggered**: an alert fires when its condition
transitions from false to true and re-arms when the condition clears,
so a persistently bad metric yields one event per excursion rather
than one per round.  Evaluation is pure over the registry and the SLO
tracker — deterministic under the seeded chaos harness, which is what
lets tests assert "this rule fires exactly here".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import InputError
from repro.observability.metrics import Gauge, Histogram, MetricsRegistry

__all__ = [
    "AlertEvaluator",
    "AlertEvent",
    "AlertRule",
    "SloObjective",
    "SloTracker",
]

#: trace lane alert events render in
SLO_LANE = "slo"

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}

_RULE_RE = re.compile(
    r"^\s*(?P<fn>rate|burn_rate)?\s*"
    r"(?:\(\s*(?P<arg>[^()\s]+)\s*\)|(?P<metric>[^()\s]+))\s*"
    r"(?P<op>>=|<=|==|>|<)\s*"
    r"(?P<value>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*$"
)


@dataclass(frozen=True)
class SloObjective:
    """One tenant's latency objective.

    Attributes:
        tenant: tenant name (matches the serve manifest key).
        latency_ms: the bound the tenant's jobs should finish within.
        quantile: the quantile the bound applies to (0.95 = p95).
        error_budget: tolerated fraction of jobs violating the bound;
            burn rate 1.0 means the budget is being consumed exactly
            at the tolerated pace, >1 means faster.
    """

    tenant: str
    latency_ms: float
    quantile: float = 0.95
    error_budget: float = 0.1

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise InputError("slo latency_ms must be positive")
        if not 0.0 < self.quantile < 1.0:
            raise InputError("slo quantile must be in (0, 1)")
        if not 0.0 < self.error_budget <= 1.0:
            raise InputError("slo error_budget must be in (0, 1]")

    @classmethod
    def from_manifest(cls, tenant: str, spec: Mapping) -> "SloObjective":
        """Build from a serve-manifest ``slos`` entry (dict of knobs)."""
        if not isinstance(spec, Mapping):
            raise InputError(f"slo for tenant {tenant!r} must be an object")
        unknown = set(spec) - {"latency_ms", "quantile", "error_budget"}
        if unknown:
            raise InputError(
                f"slo for tenant {tenant!r}: unknown keys {sorted(unknown)}"
            )
        if "latency_ms" not in spec:
            raise InputError(f"slo for tenant {tenant!r} needs latency_ms")
        return cls(
            tenant=tenant,
            latency_ms=float(spec["latency_ms"]),
            quantile=float(spec.get("quantile", 0.95)),
            error_budget=float(spec.get("error_budget", 0.1)),
        )


class SloTracker:
    """Counts per-tenant objective violations and derives burn rates."""

    def __init__(self, objectives: "list[SloObjective] | None" = None) -> None:
        self.objectives: dict[str, SloObjective] = {
            o.tenant: o for o in (objectives or [])
        }
        self._total: dict[str, int] = {}
        self._violations: dict[str, int] = {}

    def observe(
        self, tenant: str, latency_ms: float, ok: bool = True,
        registry: "MetricsRegistry | None" = None,
    ) -> bool:
        """Record one finished job; returns True when it violated.

        A job violates its tenant's SLO when it failed outright or
        exceeded the latency bound.  Tenants without an objective are
        ignored (returns False).
        """
        objective = self.objectives.get(tenant)
        if objective is None:
            return False
        violated = (not ok) or latency_ms > objective.latency_ms
        self._total[tenant] = self._total.get(tenant, 0) + 1
        if violated:
            self._violations[tenant] = self._violations.get(tenant, 0) + 1
        if registry is not None:
            registry.counter(f"slo.jobs.{tenant}").inc()
            if violated:
                registry.counter(f"slo.violations.{tenant}").inc()
            registry.gauge(f"slo.burn_rate.{tenant}").set(
                self.burn_rate(tenant)
            )
        return violated

    def burn_rate(self, tenant: str) -> float:
        """Violation fraction over the error budget (0 when untracked)."""
        objective = self.objectives.get(tenant)
        total = self._total.get(tenant, 0)
        if objective is None or total == 0:
            return 0.0
        fraction = self._violations.get(tenant, 0) / total
        return fraction / objective.error_budget

    def snapshot(self) -> dict:
        """Per-tenant rollup for the audit log / service report."""
        return {
            tenant: {
                "latency_ms": objective.latency_ms,
                "quantile": objective.quantile,
                "error_budget": objective.error_budget,
                "jobs": self._total.get(tenant, 0),
                "violations": self._violations.get(tenant, 0),
                "burn_rate": self.burn_rate(tenant),
            }
            for tenant, objective in sorted(self.objectives.items())
        }


@dataclass(frozen=True)
class AlertEvent:
    """One alert firing: which rule, what it saw, when."""

    name: str
    expression: str
    severity: str
    value: float
    threshold: float
    round_index: "int | None" = None
    sim_ns: float = 0.0

    def to_dict(self) -> dict:
        return {
            "kind": "alert",
            "name": self.name,
            "expression": self.expression,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "round": self.round_index,
            "sim_ns": self.sim_ns,
        }


@dataclass
class AlertRule:
    """One parsed threshold/rate/burn-rate rule (see module grammar)."""

    name: str
    expression: str
    kind: str  # "threshold" | "rate" | "burn_rate"
    subject: str  # metric name or tenant
    op: str
    threshold: float
    severity: str = "warning"
    _last: "float | None" = field(default=None, repr=False)
    _active: bool = field(default=False, repr=False)

    @classmethod
    def parse(
        cls,
        expression: str,
        name: "str | None" = None,
        severity: str = "warning",
    ) -> "AlertRule":
        match = _RULE_RE.match(expression)
        if match is None:
            raise InputError(
                f"cannot parse alert rule {expression!r} "
                "(expected '<metric> <op> <number>', 'rate(<metric>) ...' "
                "or 'burn_rate(<tenant>) ...')"
            )
        fn = match.group("fn")
        arg = match.group("arg")
        metric = match.group("metric")
        if fn is not None and arg is None:
            raise InputError(
                f"alert rule {expression!r}: {fn} needs parentheses"
            )
        if fn is None and arg is not None:
            raise InputError(
                f"alert rule {expression!r}: parentheses without rate/"
                "burn_rate"
            )
        kind = "threshold" if fn is None else fn
        subject = metric if fn is None else arg
        assert subject is not None
        return cls(
            name=name or expression.strip(),
            expression=expression.strip(),
            kind=kind,
            subject=subject,
            op=match.group("op"),
            threshold=float(match.group("value")),
            severity=severity,
        )

    @classmethod
    def from_manifest(cls, spec) -> "AlertRule":
        """Build from a serve-manifest ``alerts`` entry (string or dict)."""
        if isinstance(spec, str):
            return cls.parse(spec)
        if isinstance(spec, Mapping):
            unknown = set(spec) - {"name", "expr", "severity"}
            if unknown:
                raise InputError(
                    f"alert rule: unknown keys {sorted(unknown)}"
                )
            if "expr" not in spec:
                raise InputError("alert rule object needs an 'expr' key")
            return cls.parse(
                str(spec["expr"]),
                name=spec.get("name"),
                severity=str(spec.get("severity", "warning")),
            )
        raise InputError("alert rule must be a string or an object")

    # ----- evaluation --------------------------------------------------------

    def _read(self, registry: MetricsRegistry, slo: "SloTracker | None") -> float:
        if self.kind == "burn_rate":
            return slo.burn_rate(self.subject) if slo is not None else 0.0
        metric = registry.get(self.subject)
        if metric is None:
            current = 0.0
        elif isinstance(metric, Histogram):
            current = float(metric.count)
        elif isinstance(metric, Gauge):
            current = float(metric.value or 0.0)
        else:
            current = float(metric.value)
        if self.kind == "rate":
            previous = self._last
            self._last = current
            return 0.0 if previous is None else current - previous
        return current

    def evaluate(
        self,
        registry: MetricsRegistry,
        slo: "SloTracker | None" = None,
        round_index: "int | None" = None,
        sim_ns: float = 0.0,
    ) -> "AlertEvent | None":
        """Edge-triggered check; an event only on a false→true crossing."""
        value = self._read(registry, slo)
        holds = _OPS[self.op](value, self.threshold)
        if holds and not self._active:
            self._active = True
            return AlertEvent(
                name=self.name,
                expression=self.expression,
                severity=self.severity,
                value=value,
                threshold=self.threshold,
                round_index=round_index,
                sim_ns=sim_ns,
            )
        if not holds:
            self._active = False
        return None


class AlertEvaluator:
    """Evaluates a rule set each round and fans events out everywhere."""

    def __init__(
        self,
        rules: list[AlertRule],
        registry: MetricsRegistry,
        slo: "SloTracker | None" = None,
        tracer=None,
        flight=None,
        audit=None,
    ) -> None:
        self.rules = list(rules)
        self.registry = registry
        self.slo = slo
        self.tracer = tracer
        self.flight = flight
        #: callable(dict) appending to the service audit log, if any
        self.audit = audit
        self.fired: list[AlertEvent] = []

    def evaluate(
        self, round_index: "int | None" = None, sim_ns: float = 0.0
    ) -> list[AlertEvent]:
        """One evaluation sweep; returns (and records) new firings."""
        events: list[AlertEvent] = []
        for rule in self.rules:
            fired = rule.evaluate(
                self.registry, self.slo, round_index, sim_ns
            )
            if fired is None:
                continue
            events.append(fired)
            self.fired.append(fired)
            self.registry.counter("alerts.fired.total").inc()
            self.registry.counter(f"alerts.fired.{fired.name}").inc()
            if self.tracer is not None:
                self.tracer.event(
                    f"alert.{fired.name}",
                    lane=SLO_LANE,
                    severity=fired.severity,
                    value=fired.value,
                    threshold=fired.threshold,
                    expression=fired.expression,
                )
            if self.flight is not None:
                self.flight.on_alert(fired)
            if self.audit is not None:
                self.audit(fired.to_dict())
        return events
