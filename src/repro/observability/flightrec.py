"""Flight recorder: bounded ring of recent activity, dumped on failure.

Post-mortems should not require shipping a full Perfetto trace of a
week-long serve run.  The :class:`FlightRecorder` keeps *bounded*
deques of the most recent ledger commands, closed spans, instant
events and alert firings; when anything goes wrong — a
:class:`~repro.errors.ReproError` escaping the job runner, a watchdog
kill, a circuit-breaker trip — the rings are dumped as ``flight.json``
into the job directory, where ``repro inspect`` renders them.

The recorder is fed passively: the observability session forwards its
command stream, and the span tracer's listener hook reports span
closes and events.  Appends are O(1) ``deque(maxlen=...)`` pushes, so
the enabled-path cost stays a few tens of nanoseconds per record; with
observability off nothing here runs at all.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

__all__ = ["FLIGHT_FILENAME", "FlightRecorder"]

FLIGHT_FILENAME = "flight.json"

#: default ring depths: commands dominate volume, alerts are rare
DEFAULT_COMMAND_CAPACITY = 512
DEFAULT_SPAN_CAPACITY = 128
DEFAULT_EVENT_CAPACITY = 128
DEFAULT_ALERT_CAPACITY = 64


class FlightRecorder:
    """Bounded rings of recent commands / spans / events / alerts."""

    def __init__(
        self,
        command_capacity: int = DEFAULT_COMMAND_CAPACITY,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
        alert_capacity: int = DEFAULT_ALERT_CAPACITY,
    ) -> None:
        self._commands: deque = deque(maxlen=command_capacity)
        self._spans: deque = deque(maxlen=span_capacity)
        self._events: deque = deque(maxlen=event_capacity)
        self._alerts: deque = deque(maxlen=alert_capacity)
        self.dumps = 0

    # ----- feeding -----------------------------------------------------------

    def on_command(
        self,
        command: str,
        count: int,
        time_ns: float,
        energy_nj: float,
        phase: "str | None",
        sim_ns: float = 0.0,
        lane: "str | None" = None,
    ) -> None:
        """One ledger record (compact tuple; GIL-safe deque append)."""
        self._commands.append(
            (sim_ns, command, count, time_ns, energy_nj, phase, lane)
        )

    def on_span_close(self, span) -> None:
        """Tracer listener: a span just finished (crashed spans never do,
        which is fine — their enclosing attempt span carries the error)."""
        self._spans.append(span)

    def on_event(self, event) -> None:
        """Tracer listener: one instant event was recorded."""
        self._events.append(event)

    def on_alert(self, alert) -> None:
        """An :class:`~repro.observability.slo.AlertEvent` fired."""
        self._alerts.append(alert)

    # ----- reading / dumping -------------------------------------------------

    def snapshot(self, reason: str) -> dict:
        """JSON-serializable dump of every ring, oldest first."""
        return {
            "format": "repro-flight-v1",
            "reason": reason,
            "commands": [
                {
                    "sim_ns": sim_ns,
                    "command": command,
                    "count": count,
                    "time_ns": time_ns,
                    "energy_nj": energy_nj,
                    "phase": phase,
                    "lane": lane,
                }
                for (
                    sim_ns, command, count, time_ns, energy_nj, phase, lane,
                ) in self._commands
            ],
            "spans": [
                {
                    "name": s.name,
                    "lane": s.lane,
                    "sim_start_ns": s.sim_start_ns,
                    "sim_end_ns": s.sim_end_ns,
                    "wall_us": (
                        s.wall_duration_ns / 1e3 if s.finished else None
                    ),
                    "attributes": dict(s.attributes),
                }
                for s in self._spans
            ],
            "events": [
                {
                    "name": e.name,
                    "lane": e.lane,
                    "sim_ns": e.sim_ns,
                    "attributes": dict(e.attributes),
                }
                for e in self._events
            ],
            "alerts": [a.to_dict() for a in self._alerts],
        }

    def dump(self, job_dir: "str | Path", reason: str) -> Path:
        """Write ``flight.json`` into ``job_dir``; returns the path.

        Dumps never raise into the failure path that triggered them:
        the recorder is a post-mortem aid, not another failure mode —
        an unwritable job dir yields a silent no-op (the counter still
        advances so tests can assert the attempt happened).
        """
        self.dumps += 1
        path = Path(job_dir) / FLIGHT_FILENAME
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(self.snapshot(reason), indent=1, default=str),
                encoding="utf-8",
            )
        except OSError:
            return path
        return path

    @staticmethod
    def load(job_dir: "str | Path") -> "dict | None":
        """Read a previously dumped ``flight.json`` (``None`` if absent)."""
        path = Path(job_dir) / FLIGHT_FILENAME
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
