"""Post-hoc inspection of a journaled job directory.

``repro inspect <job-dir>`` renders, from the journal alone, the same
per-stage accounting a live run prints: per-stage simulated time,
energy and command counts (from the stats ledger snapshot inside the
last valid journal record), the top-k hottest command mnemonics, the
sub-array occupancy implied by the platform's allocator cursors, and
every retry-ladder decision.  Because the journal's torn-write-safe
prefix validation yields the last *complete* record, this works on
crashed and timed-out jobs exactly as on finished ones — the use case
the tracing layer exists for: seeing where a dead job's time went.

Pointing ``repro inspect`` at a *service* root (the directory a
``serve`` run managed: per-tenant job dirs plus ``audit.jsonl``)
renders the fleet view instead: a per-tenant rollup (grants, sheds,
breaker trips, latency quantiles, energy share), the top-k energy
mnemonics across every journaled job, and any flight-recorder dumps
left behind by failures.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.stats import StatsLedger
from repro.errors import InputError, JournalError
from repro.observability.export import (
    format_subarray_heatmap,
    subarray_utilization,
)
from repro.observability.flightrec import FLIGHT_FILENAME, FlightRecorder
from repro.observability.metrics import Histogram

__all__ = [
    "format_flight_section",
    "format_power_section",
    "format_stage_table",
    "format_top_commands",
    "inspect_job",
    "inspect_service",
    "is_service_root",
    "render_inspection",
    "render_job_inspection",
    "render_service_inspection",
]

#: stage rows rendered first, in pipeline order (others follow sorted)
_STAGE_ORDER = ("hashmap", "debruijn", "traverse")


def format_stage_table(ledger: StatsLedger) -> str:
    """Per-stage time/energy/command table with a total row.

    The per-stage simulated durations are the ledger's own
    ``totals(stage)`` values, so the table agrees with a live run's
    span trace to within float rounding.
    """
    phases = [p for p in _STAGE_ORDER if p in ledger.phases()]
    phases += [p for p in ledger.phases() if p not in _STAGE_ORDER]
    total = ledger.totals()
    header = (
        f"{'stage':>10} {'time':>14} {'energy':>14} "
        f"{'commands':>10} {'share':>6}"
    )
    lines = [header, "-" * len(header)]
    for name in phases:
        totals = ledger.totals(name)
        share = totals.time_ns / total.time_ns if total.time_ns > 0 else 0.0
        lines.append(
            f"{name:>10} {totals.time_ns / 1e3:>11.3f} us "
            f"{totals.energy_nj:>11.3f} nJ "
            f"{totals.total_commands:>10d} {share:>6.1%}"
        )
    lines.append(
        f"{'total':>10} {total.time_ns / 1e3:>11.3f} us "
        f"{total.energy_nj:>11.3f} nJ "
        f"{total.total_commands:>10d} {'100.0%':>6}"
    )
    return "\n".join(lines)


def format_top_commands(ledger: StatsLedger, top_k: int = 8) -> str:
    """The ``top_k`` hottest mnemonics by issue count, with stage mix."""
    commands = ledger.totals().commands
    if not commands:
        return "no commands recorded"
    total = sum(commands.values())
    ranked = sorted(commands.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    lines = [f"{'mnemonic':>10} {'count':>12} {'share':>6}  stages"]
    for mnemonic, count in ranked:
        stages = [
            f"{phase}:{ledger.command_count(mnemonic, phase)}"
            for phase in ledger.phases()
            if ledger.command_count(mnemonic, phase)
        ]
        lines.append(
            f"{mnemonic:>10} {count:>12d} {count / total:>6.1%}  "
            + (" ".join(stages) or "-")
        )
    return "\n".join(lines)


def _energy_table(platform_state: "dict | None") -> dict:
    """Mnemonic -> nJ/issue from a journaled platform's own parameters.

    Falls back to the library defaults when the journal predates
    parameter snapshots (or none is available at all), so the power
    section degrades to an estimate rather than disappearing.
    """
    from repro.core.energy import DEFAULT_ENERGY, EnergyParameters
    from repro.core.timing import (
        DEFAULT_TIMING,
        TimingParameters,
        command_energy_table,
    )

    timing, energy = DEFAULT_TIMING, DEFAULT_ENERGY
    if platform_state:
        try:
            timing = TimingParameters(**platform_state["timing"])
            energy = EnergyParameters(**platform_state["energy"])
        except (KeyError, TypeError, ValueError):
            pass
    return command_energy_table(timing, energy)


def format_power_section(
    ledger: StatsLedger,
    energy_table: "dict | None" = None,
    top_k: int = 5,
) -> str:
    """Top-``top_k`` mnemonics by attributed energy, plus average power.

    Energy per mnemonic is ``count * nJ/issue`` from the timing/energy
    cost table — the same table the simulator charges from, so the
    column sums to the ledger's total energy up to float rounding.
    """
    total = ledger.totals()
    commands = total.commands
    if not commands:
        return "no commands recorded"
    table = energy_table if energy_table is not None else _energy_table(None)
    per_mnemonic = {
        name: count * table.get(name, 0.0)
        for name, count in commands.items()
    }
    energy_total = sum(per_mnemonic.values()) or 1.0
    avg_w = total.energy_nj / total.time_ns if total.time_ns > 0 else 0.0
    lines = [
        f"average power: {avg_w:.3f} W over {total.time_ns / 1e3:.3f} us "
        f"({total.energy_nj:.3f} nJ)",
        f"{'mnemonic':>10} {'count':>12} {'energy':>14} {'share':>6}",
    ]
    ranked = sorted(
        per_mnemonic.items(), key=lambda kv: (-kv[1], kv[0])
    )[:top_k]
    for name, energy_nj in ranked:
        lines.append(
            f"{name:>10} {commands[name]:>12d} {energy_nj:>11.3f} nJ "
            f"{energy_nj / energy_total:>6.1%}"
        )
    return "\n".join(lines)


def format_flight_section(flight: dict) -> str:
    """Human rendering of one flight-recorder dump (``flight.json``)."""
    lines = [
        f"reason: {flight.get('reason', '<unknown>')}",
        f"captured: {len(flight.get('commands', []))} commands, "
        f"{len(flight.get('spans', []))} spans, "
        f"{len(flight.get('events', []))} events, "
        f"{len(flight.get('alerts', []))} alerts",
    ]
    spans = flight.get("spans", [])
    if spans:
        lines.append("last spans:")
        for span in spans[-5:]:
            lines.append(
                f"  {span.get('name')} lane={span.get('lane')} "
                f"sim=[{span.get('sim_start_ns')}..{span.get('sim_end_ns')}] ns"
            )
    alerts = flight.get("alerts", [])
    for alert in alerts[-5:]:
        lines.append(
            f"  ALERT {alert.get('name')}: {alert.get('expression')} "
            f"(value={alert.get('value')})"
        )
    return "\n".join(lines)


def inspect_job(job_dir: "str | Path") -> dict:
    """Load everything inspectable from a job directory.

    Returns a dict with the journal config, the last valid record's
    stage name and payload, a rehydrated :class:`StatsLedger`, the
    occupancy records, and the decision log.

    Raises:
        InputError: the directory holds no readable job journal.
    """
    from repro.core.platform import PimAssembler
    from repro.runtime.checkpoint import JobJournal

    journal = JobJournal(job_dir)
    try:
        config = journal.load_config()
    except JournalError as exc:
        raise InputError(f"no job journal in {job_dir}: {exc}")
    flight = FlightRecorder.load(job_dir)
    latest = journal.latest()
    if latest is None:
        return {
            "config": config,
            "stage": None,
            "ledger": StatsLedger(),
            "subarrays": [],
            "storage": None,
            "decisions": journal.decisions(),
            "platform_state": None,
            "flight": flight,
        }
    ref, payload = latest
    ledger = StatsLedger()
    ledger.load_state(payload["platform"]["stats"])
    pim = PimAssembler.from_state(payload["platform"])
    store = pim.device.store
    return {
        "config": config,
        "stage": ref.stage,
        "ledger": ledger,
        "subarrays": subarray_utilization(pim),
        "storage": {
            "slots": store.n_slots,
            "bytes": store.nbytes,
            "slot_bytes": store.slot_nbytes,
            "unpacked_slot_bytes": store.unpacked_slot_nbytes,
        },
        "decisions": journal.decisions(),
        "platform_state": payload["platform"],
        "flight": flight,
    }


def _storage_counters(job_dir: "str | Path") -> dict:
    """Pack/unpack conversion counters from ``metrics.json``, if written.

    The metrics snapshot is optional (observability off means no file);
    a missing or unreadable file is simply no churn data, not an error.
    """
    import json

    path = Path(job_dir) / "metrics.json"
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    out = {}
    for name, snap in doc.get("metrics", {}).items():
        if name.startswith(("storage.pack_rows", "storage.unpack_rows")):
            if snap.get("type") == "counter":
                out[name] = snap.get("value", 0)
    return out


def render_job_inspection(
    job_dir: "str | Path", top_k: int = 8
) -> str:
    """The full ``repro inspect`` report for one job directory."""
    info = inspect_job(job_dir)
    config = info["config"].get("config", {})
    lines = [
        f"job: {job_dir}",
        f"last journaled stage: {info['stage'] or '<none — no stage completed>'}",
        f"config: k={config.get('k')} engine={config.get('engine')} "
        f"min_count={config.get('min_count')} "
        f"reads={info['config'].get('reads')}",
        "",
        "per-stage accounting (simulated device time)",
        format_stage_table(info["ledger"]),
        "",
        f"hottest mnemonics (top {top_k})",
        format_top_commands(info["ledger"], top_k=top_k),
        "",
        "power (top energy mnemonics)",
        format_power_section(
            info["ledger"],
            energy_table=_energy_table(info.get("platform_state")),
            top_k=top_k,
        ),
        "",
        "sub-array occupancy",
        format_subarray_heatmap(info["subarrays"]),
    ]
    storage = info.get("storage")
    if storage is not None:
        ratio = storage["slot_bytes"] / storage["unpacked_slot_bytes"]
        lines += [
            "",
            "packed storage (columnar bit-plane store)",
            f"  slots: {storage['slots']}  backing bytes: {storage['bytes']}"
            f"  bytes/slot: {storage['slot_bytes']}"
            f" ({ratio:.3f}x of unpacked {storage['unpacked_slot_bytes']})",
        ]
        counters = _storage_counters(job_dir)
        if counters:
            lines += [
                "  pack-boundary churn (rows converted):",
                *(
                    f"    {name}: {int(value)}"
                    for name, value in sorted(counters.items())
                ),
            ]
    decisions = info["decisions"]
    lines += ["", f"retry-ladder decisions: {len(decisions)}"]
    for decision in decisions:
        lines.append(
            f"  {decision.get('stage')}#{decision.get('attempt')} "
            f"{decision.get('action')} after {decision.get('error')}"
        )
    if info.get("flight"):
        lines += [
            "",
            "flight recorder dump",
            format_flight_section(info["flight"]),
        ]
    return "\n".join(lines)


# ----- service-root inspection ---------------------------------------------


def is_service_root(path: "str | Path") -> bool:
    """True when ``path`` looks like a ``serve`` root, not one job.

    A service root has no job journal of its own; it holds the audit
    log and/or ``tenant/job`` journal directories one level down.
    """
    root = Path(path)
    if (root / "job.json").is_file():
        return False
    if (root / "audit.jsonl").is_file():
        return True
    return any(root.glob("*/*/job.json"))


def _audit_records(root: Path) -> list:
    records = []
    try:
        text = (root / "audit.jsonl").read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn tail write — same stance as the journal
    return records


def inspect_service(root: "str | Path") -> dict:
    """Roll a service root up into per-tenant and fleet aggregates.

    Per tenant: admission grants/sheds, breaker trips, completions and
    failures, latency quantiles (from the audit log's latency samples,
    estimated through the same power-of-two :class:`Histogram` the live
    exposition uses), journaled energy, and flight-dump count.  The
    fleet view merges every job ledger for the top-energy mnemonics.

    Raises:
        InputError: the directory is neither a job dir nor a service
            root.
    """
    root = Path(root)
    if not is_service_root(root):
        raise InputError(
            f"{root} is neither a job directory nor a service root"
        )
    records = _audit_records(root)
    tenants: dict[str, dict] = {}

    def bucket(tenant: str) -> dict:
        return tenants.setdefault(
            tenant,
            {
                "grants": 0,
                "sheds": 0,
                "breaker_trips": 0,
                "completed": 0,
                "failed": 0,
                "latency_ms": Histogram(f"latency_ms.{tenant}"),
                "energy_nj": 0.0,
                "time_ns": 0.0,
                "flight_dumps": 0,
                "jobs": 0,
            },
        )

    for record in records:
        tenant = record.get("tenant")
        if not tenant:
            continue
        entry = bucket(tenant)
        kind = record.get("kind")
        if kind == "admit":
            entry["grants"] += 1
        elif kind == "shed":
            entry["sheds"] += 1
        elif kind == "breaker-trip":
            entry["breaker_trips"] += 1
        elif kind == "job-completed":
            entry["completed"] += 1
            entry["latency_ms"].observe(float(record.get("latency_ms", 0.0)))
        elif kind == "job-failed":
            entry["failed"] += 1
            if "latency_ms" in record:
                entry["latency_ms"].observe(float(record["latency_ms"]))
    merged = StatsLedger()
    energy_table: "dict | None" = None
    alerts = [r for r in records if r.get("kind") == "alert"]
    for job_json in sorted(root.glob("*/*/job.json")):
        job_dir = job_json.parent
        tenant = job_dir.parent.name
        entry = bucket(tenant)
        entry["jobs"] += 1
        if (job_dir / FLIGHT_FILENAME).is_file():
            entry["flight_dumps"] += 1
        try:
            info = inspect_job(job_dir)
        except InputError:
            continue
        totals = info["ledger"].totals()
        entry["energy_nj"] += totals.energy_nj
        entry["time_ns"] += totals.time_ns
        merged.merge(info["ledger"])
        if energy_table is None and info.get("platform_state"):
            energy_table = _energy_table(info["platform_state"])
    summary = [r for r in records if r.get("kind") == "drain-summary"]
    return {
        "root": root,
        "tenants": tenants,
        "merged_ledger": merged,
        "energy_table": energy_table,
        "alerts": alerts,
        "drain_summary": summary[-1] if summary else None,
        "audit_records": len(records),
    }


def render_service_inspection(root: "str | Path", top_k: int = 8) -> str:
    """The full ``repro inspect`` report for one service root."""
    info = inspect_service(root)
    tenants = info["tenants"]
    total_energy = sum(t["energy_nj"] for t in tenants.values()) or 1.0
    header = (
        f"{'tenant':>12} {'grants':>6} {'done':>5} {'fail':>5} "
        f"{'shed':>5} {'trips':>5} {'p50ms':>8} {'p95ms':>8} "
        f"{'p99ms':>8} {'energy':>12} {'share':>6} {'flights':>7}"
    )
    lines = [
        f"service root: {info['root']}",
        f"audit records: {info['audit_records']} "
        f"(alerts fired: {len(info['alerts'])})",
        "",
        "per-tenant rollup",
        header,
        "-" * len(header),
    ]
    for tenant in sorted(tenants):
        entry = tenants[tenant]
        hist = entry["latency_ms"]
        lines.append(
            f"{tenant:>12} {entry['grants']:>6d} {entry['completed']:>5d} "
            f"{entry['failed']:>5d} {entry['sheds']:>5d} "
            f"{entry['breaker_trips']:>5d} "
            f"{hist.quantile(0.5):>8.2f} {hist.quantile(0.95):>8.2f} "
            f"{hist.quantile(0.99):>8.2f} "
            f"{entry['energy_nj']:>9.1f} nJ "
            f"{entry['energy_nj'] / total_energy:>6.1%} "
            f"{entry['flight_dumps']:>7d}"
        )
    lines += [
        "",
        "power (top energy mnemonics, all journaled jobs)",
        format_power_section(
            info["merged_ledger"],
            energy_table=info["energy_table"],
            top_k=top_k,
        ),
    ]
    for alert in info["alerts"][-top_k:]:
        lines.append(
            f"alert: {alert.get('name')} {alert.get('expression')} "
            f"(value={alert.get('value')}, round={alert.get('round')})"
        )
    summary = info["drain_summary"]
    if summary:
        slo = summary.get("slo") or {}
        lines += ["", "last drain summary"]
        lines.append(
            f"  completed={summary.get('completed')} "
            f"failed={summary.get('failed')} shed={summary.get('shed')} "
            f"rounds={summary.get('rounds')}"
        )
        for tenant in sorted(slo):
            snap = slo[tenant]
            lines.append(
                f"  slo[{tenant}]: burn_rate={snap.get('burn_rate'):.3f} "
                f"violations={snap.get('violations')}/{snap.get('jobs')}"
            )
    return "\n".join(lines)


def render_inspection(path: "str | Path", top_k: int = 8) -> str:
    """Dispatch ``repro inspect`` to the job or service renderer."""
    if is_service_root(path):
        return render_service_inspection(path, top_k=top_k)
    return render_job_inspection(path, top_k=top_k)
