"""Post-hoc inspection of a journaled job directory.

``repro inspect <job-dir>`` renders, from the journal alone, the same
per-stage accounting a live run prints: per-stage simulated time,
energy and command counts (from the stats ledger snapshot inside the
last valid journal record), the top-k hottest command mnemonics, the
sub-array occupancy implied by the platform's allocator cursors, and
every retry-ladder decision.  Because the journal's torn-write-safe
prefix validation yields the last *complete* record, this works on
crashed and timed-out jobs exactly as on finished ones — the use case
the tracing layer exists for: seeing where a dead job's time went.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.stats import StatsLedger
from repro.errors import InputError, JournalError
from repro.observability.export import (
    format_subarray_heatmap,
    subarray_utilization,
)

__all__ = [
    "format_stage_table",
    "format_top_commands",
    "inspect_job",
    "render_job_inspection",
]

#: stage rows rendered first, in pipeline order (others follow sorted)
_STAGE_ORDER = ("hashmap", "debruijn", "traverse")


def format_stage_table(ledger: StatsLedger) -> str:
    """Per-stage time/energy/command table with a total row.

    The per-stage simulated durations are the ledger's own
    ``totals(stage)`` values, so the table agrees with a live run's
    span trace to within float rounding.
    """
    phases = [p for p in _STAGE_ORDER if p in ledger.phases()]
    phases += [p for p in ledger.phases() if p not in _STAGE_ORDER]
    total = ledger.totals()
    header = (
        f"{'stage':>10} {'time':>14} {'energy':>14} "
        f"{'commands':>10} {'share':>6}"
    )
    lines = [header, "-" * len(header)]
    for name in phases:
        totals = ledger.totals(name)
        share = totals.time_ns / total.time_ns if total.time_ns > 0 else 0.0
        lines.append(
            f"{name:>10} {totals.time_ns / 1e3:>11.3f} us "
            f"{totals.energy_nj:>11.3f} nJ "
            f"{totals.total_commands:>10d} {share:>6.1%}"
        )
    lines.append(
        f"{'total':>10} {total.time_ns / 1e3:>11.3f} us "
        f"{total.energy_nj:>11.3f} nJ "
        f"{total.total_commands:>10d} {'100.0%':>6}"
    )
    return "\n".join(lines)


def format_top_commands(ledger: StatsLedger, top_k: int = 8) -> str:
    """The ``top_k`` hottest mnemonics by issue count, with stage mix."""
    commands = ledger.totals().commands
    if not commands:
        return "no commands recorded"
    total = sum(commands.values())
    ranked = sorted(commands.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    lines = [f"{'mnemonic':>10} {'count':>12} {'share':>6}  stages"]
    for mnemonic, count in ranked:
        stages = [
            f"{phase}:{ledger.command_count(mnemonic, phase)}"
            for phase in ledger.phases()
            if ledger.command_count(mnemonic, phase)
        ]
        lines.append(
            f"{mnemonic:>10} {count:>12d} {count / total:>6.1%}  "
            + (" ".join(stages) or "-")
        )
    return "\n".join(lines)


def inspect_job(job_dir: "str | Path") -> dict:
    """Load everything inspectable from a job directory.

    Returns a dict with the journal config, the last valid record's
    stage name and payload, a rehydrated :class:`StatsLedger`, the
    occupancy records, and the decision log.

    Raises:
        InputError: the directory holds no readable job journal.
    """
    from repro.core.platform import PimAssembler
    from repro.runtime.checkpoint import JobJournal

    journal = JobJournal(job_dir)
    try:
        config = journal.load_config()
    except JournalError as exc:
        raise InputError(f"no job journal in {job_dir}: {exc}")
    latest = journal.latest()
    if latest is None:
        return {
            "config": config,
            "stage": None,
            "ledger": StatsLedger(),
            "subarrays": [],
            "storage": None,
            "decisions": journal.decisions(),
        }
    ref, payload = latest
    ledger = StatsLedger()
    ledger.load_state(payload["platform"]["stats"])
    pim = PimAssembler.from_state(payload["platform"])
    store = pim.device.store
    return {
        "config": config,
        "stage": ref.stage,
        "ledger": ledger,
        "subarrays": subarray_utilization(pim),
        "storage": {
            "slots": store.n_slots,
            "bytes": store.nbytes,
            "slot_bytes": store.slot_nbytes,
            "unpacked_slot_bytes": store.unpacked_slot_nbytes,
        },
        "decisions": journal.decisions(),
    }


def _storage_counters(job_dir: "str | Path") -> dict:
    """Pack/unpack conversion counters from ``metrics.json``, if written.

    The metrics snapshot is optional (observability off means no file);
    a missing or unreadable file is simply no churn data, not an error.
    """
    import json

    path = Path(job_dir) / "metrics.json"
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    out = {}
    for name, snap in doc.get("metrics", {}).items():
        if name.startswith(("storage.pack_rows", "storage.unpack_rows")):
            if snap.get("type") == "counter":
                out[name] = snap.get("value", 0)
    return out


def render_job_inspection(
    job_dir: "str | Path", top_k: int = 8
) -> str:
    """The full ``repro inspect`` report for one job directory."""
    info = inspect_job(job_dir)
    config = info["config"].get("config", {})
    lines = [
        f"job: {job_dir}",
        f"last journaled stage: {info['stage'] or '<none — no stage completed>'}",
        f"config: k={config.get('k')} engine={config.get('engine')} "
        f"min_count={config.get('min_count')} "
        f"reads={info['config'].get('reads')}",
        "",
        "per-stage accounting (simulated device time)",
        format_stage_table(info["ledger"]),
        "",
        f"hottest mnemonics (top {top_k})",
        format_top_commands(info["ledger"], top_k=top_k),
        "",
        "sub-array occupancy",
        format_subarray_heatmap(info["subarrays"]),
    ]
    storage = info.get("storage")
    if storage is not None:
        ratio = storage["slot_bytes"] / storage["unpacked_slot_bytes"]
        lines += [
            "",
            "packed storage (columnar bit-plane store)",
            f"  slots: {storage['slots']}  backing bytes: {storage['bytes']}"
            f"  bytes/slot: {storage['slot_bytes']}"
            f" ({ratio:.3f}x of unpacked {storage['unpacked_slot_bytes']})",
        ]
        counters = _storage_counters(job_dir)
        if counters:
            lines += [
                "  pack-boundary churn (rows converted):",
                *(
                    f"    {name}: {int(value)}"
                    for name, value in sorted(counters.items())
                ),
            ]
    decisions = info["decisions"]
    lines += ["", f"retry-ladder decisions: {len(decisions)}"]
    for decision in decisions:
        lines.append(
            f"  {decision.get('stage')}#{decision.get('attempt')} "
            f"{decision.get('action')} after {decision.get('error')}"
        )
    return "\n".join(lines)
