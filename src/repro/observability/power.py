"""Windowed power timeline built from the stats-ledger command stream.

The paper's headline comparisons are power numbers (Fig. 9b, Fig. 10),
but until now the simulator only reported energy as a single end-of-run
scalar.  :class:`PowerTimeline` turns the same
:class:`~repro.core.stats.StatsLedger` command stream the metrics
registry already observes into a *timeline*: energy binned over
simulated time, attributed per mnemonic and per **lane** (a pipeline
stage for single jobs, a service tenant under the multi-tenant
scheduler), and reported in watts with the exact formula
``energy_nj / time_ns + p_background_w`` that
:meth:`repro.core.energy.EnergyModel.power_w` uses (1 nJ / 1 ns = 1 W).

Conservation by construction
============================

The headline invariant — *the timeline integrates to the ledger's total
energy, exactly* — is kept bit-exact, not approximately:

* :attr:`total_energy_nj` is accumulated with the same ``+=`` sequence
  (same addends, same order) as the ledger's ROOT accumulator, so for a
  single-threaded run ``timeline.total_energy_nj ==
  ledger.totals().energy_nj`` holds under IEEE-754 equality, float
  non-associativity notwithstanding;
* per-phase accumulators mirror the ledger's per-phase ``+=`` order the
  same way, so ``stage_energy_nj[phase] ==
  ledger.totals(phase).energy_nj`` is also exact;
* binning *spreads* each event's energy uniformly over its duration,
  charging the final bin with the residual ``energy - assigned`` rather
  than its proportional share, so every event deposits exactly its
  energy into the bins and the bin sum differs from the total only by
  float reassociation (checked with ``math.fsum`` in tests and by the
  ``--check`` gate of ``benchmarks/bench_power_timeline.py``).

Lane attribution uses a thread-local :func:`lane_scope` (the service
worker enters ``lane_scope(tenant)`` around each job) falling back to
the ledger phase, so one timeline serves both the single-job and the
multi-tenant views.  All mutation happens under one lock: service
workers are real threads sharing one session.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "DEFAULT_BIN_NS",
    "PowerTimeline",
    "current_lane",
    "lane_scope",
]

#: default bin width, simulated nanoseconds (100 us — fine enough to
#: resolve stage transitions of the tier-1 workloads, coarse enough
#: that a paper-scale run stays a few thousand bins)
DEFAULT_BIN_NS = 100_000.0

#: lane charged when neither a lane scope nor a ledger phase is active
DEFAULT_POWER_LANE = "job"

#: per-thread slot for the current attribution lane
_TLS = threading.local()


@contextmanager
def lane_scope(name: str) -> Iterator[None]:
    """Attribute this thread's command energy to lane ``name``.

    The service worker wraps each dispatched job in
    ``lane_scope(tenant)`` so per-tenant energy shares fall out of the
    timeline without the ledger or the pipeline knowing about tenants.
    """
    previous = getattr(_TLS, "lane", None)
    _TLS.lane = name
    try:
        yield
    finally:
        _TLS.lane = previous


def current_lane() -> "str | None":
    """This thread's lane installed by :func:`lane_scope` (or ``None``)."""
    return getattr(_TLS, "lane", None)


class PowerTimeline:
    """Bins the command stream into per-lane / per-mnemonic energy.

    Args:
        bin_ns: bin width in simulated nanoseconds.
        p_background_w: standby+refresh+controller watts added to every
            reported power figure (the paper's background term).
        thermal_tau_ns: time constant of the thermal-proxy EWMA over
            bin powers; a sustained-power gauge that a single hot bin
            cannot spike the way it spikes :meth:`peak_power_w`.
    """

    def __init__(
        self,
        bin_ns: float = DEFAULT_BIN_NS,
        p_background_w: "float | None" = None,
        thermal_tau_ns: "float | None" = None,
    ) -> None:
        if p_background_w is None or thermal_tau_ns is None:
            # lazy: repro.core imports the observability session at
            # module load, so a top-level energy import would cycle
            from repro.core.energy import DEFAULT_ENERGY

            if p_background_w is None:
                p_background_w = DEFAULT_ENERGY.p_background_w
            if thermal_tau_ns is None:
                thermal_tau_ns = DEFAULT_ENERGY.thermal_tau_ns
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        if thermal_tau_ns <= 0:
            raise ValueError("thermal_tau_ns must be positive")
        self.bin_ns = float(bin_ns)
        self.p_background_w = float(p_background_w)
        self.thermal_tau_ns = float(thermal_tau_ns)
        self._lock = threading.Lock()
        self._cursor_ns = 0.0
        #: exact mirrors of the ledger accumulators (see module docs)
        self.total_energy_nj = 0.0
        self.total_time_ns = 0.0
        self.stage_energy_nj: dict[str, float] = {}
        self.lane_energy_nj: dict[str, float] = {}
        self.mnemonic_energy_nj: dict[str, float] = {}
        self.mnemonic_time_ns: dict[str, float] = {}
        self.mnemonic_count: dict[str, int] = {}
        #: bin index -> deposited energy (nJ), globally and per lane
        self._bins: dict[int, float] = {}
        self._lane_bins: dict[str, dict[int, float]] = {}
        self.events = 0

    # ----- feeding (the Recorder-shaped entry point) -------------------------

    def on_command(
        self,
        command: str,
        count: int,
        time_ns: float,
        energy_nj: float,
        phase: "str | None",
        lane: "str | None" = None,
    ) -> None:
        """Deposit one ledger record into the timeline.

        ``lane`` defaults to the thread's :func:`lane_scope`, then the
        ledger phase, then ``"job"`` — so pipeline stages form lanes by
        themselves and the service overrides with the tenant name.
        """
        if lane is None:
            lane = getattr(_TLS, "lane", None)
            if lane is None:
                lane = phase if phase is not None else DEFAULT_POWER_LANE
        with self._lock:
            self.events += 1
            self.total_energy_nj += energy_nj
            self.total_time_ns += time_ns
            if phase is not None:
                self.stage_energy_nj[phase] = (
                    self.stage_energy_nj.get(phase, 0.0) + energy_nj
                )
            self.lane_energy_nj[lane] = (
                self.lane_energy_nj.get(lane, 0.0) + energy_nj
            )
            self.mnemonic_energy_nj[command] = (
                self.mnemonic_energy_nj.get(command, 0.0) + energy_nj
            )
            self.mnemonic_time_ns[command] = (
                self.mnemonic_time_ns.get(command, 0.0) + time_ns
            )
            self.mnemonic_count[command] = (
                self.mnemonic_count.get(command, 0) + count
            )
            self._deposit(lane, time_ns, energy_nj)

    def _deposit(self, lane: str, time_ns: float, energy_nj: float) -> None:
        """Spread one event's energy over [cursor, cursor + time_ns)."""
        start = self._cursor_ns
        self._cursor_ns = start + time_ns
        lane_bins = self._lane_bins.get(lane)
        if lane_bins is None:
            lane_bins = self._lane_bins[lane] = {}
        if energy_nj == 0.0:
            return
        first = int(start // self.bin_ns)
        last = int(self._cursor_ns // self.bin_ns)
        if time_ns <= 0.0 or first == last:
            # instantaneous (or bin-contained) event: all in one bin
            self._bins[first] = self._bins.get(first, 0.0) + energy_nj
            lane_bins[first] = lane_bins.get(first, 0.0) + energy_nj
            return
        assigned = 0.0
        for index in range(first, last + 1):
            lo = max(start, index * self.bin_ns)
            hi = min(self._cursor_ns, (index + 1) * self.bin_ns)
            if index == last:
                # residual, not proportional share: the event deposits
                # exactly energy_nj across its bins
                share = energy_nj - assigned
            else:
                share = energy_nj * ((hi - lo) / time_ns)
                assigned += share
            self._bins[index] = self._bins.get(index, 0.0) + share
            lane_bins[index] = lane_bins.get(index, 0.0) + share

    # ----- reading -----------------------------------------------------------

    @property
    def cursor_ns(self) -> float:
        """Simulated time the timeline has advanced to."""
        return self._cursor_ns

    def lanes(self) -> list[str]:
        return sorted(self._lane_bins)

    def integral_nj(self, lane: "str | None" = None) -> float:
        """Energy deposited into the bins (``math.fsum``, reassociated)."""
        bins = self._bins if lane is None else self._lane_bins.get(lane, {})
        return math.fsum(bins.values())

    def series(self, lane: "str | None" = None) -> list[tuple[float, float]]:
        """``(bin_start_ns, power_w)`` points, gaps filled with background.

        Power of a bin is its deposited energy over the bin width plus
        the background term; bins between the first and last touched
        bin that saw no energy still report background power, so the
        series is a gap-free step function a counter track can render.
        """
        bins = self._bins if lane is None else self._lane_bins.get(lane, {})
        if not bins:
            return []
        first, last = min(bins), max(bins)
        return [
            (
                index * self.bin_ns,
                bins.get(index, 0.0) / self.bin_ns + self.p_background_w,
            )
            for index in range(first, last + 1)
        ]

    def peak_power_w(self, lane: "str | None" = None) -> float:
        """Hottest single bin, in watts (background when empty)."""
        bins = self._bins if lane is None else self._lane_bins.get(lane, {})
        if not bins:
            return self.p_background_w
        return max(bins.values()) / self.bin_ns + self.p_background_w

    def thermal_proxy_w(self, lane: "str | None" = None) -> float:
        """Peak of an EWMA over bin powers — sustained-power proxy.

        The EWMA's smoothing factor comes from the thermal time
        constant (``alpha = 1 - exp(-bin_ns / tau_ns)``): one hot bin
        barely moves it, a sustained burn converges to the bin power.
        Deterministic — computed from the bins, no wall clock anywhere.
        """
        series = self.series(lane)
        if not series:
            return self.p_background_w
        alpha = 1.0 - math.exp(-self.bin_ns / self.thermal_tau_ns)
        ewma = self.p_background_w
        hottest = ewma
        for _, power_w in series:
            ewma += alpha * (power_w - ewma)
            if ewma > hottest:
                hottest = ewma
        return hottest

    def average_power_w(self) -> float:
        """Whole-run average: total energy over elapsed time + background."""
        if self.total_time_ns <= 0:
            return self.p_background_w
        return self.total_energy_nj / self.total_time_ns + self.p_background_w

    def top_mnemonics(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` mnemonics with the largest energy share, descending."""
        ranked = sorted(
            self.mnemonic_energy_nj.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:k]

    # ----- export ------------------------------------------------------------

    def summary(self) -> dict:
        """JSON-serializable rollup (no raw bins — those go to traces)."""
        return {
            "bin_ns": self.bin_ns,
            "p_background_w": self.p_background_w,
            "events": self.events,
            "total_energy_nj": self.total_energy_nj,
            "total_time_ns": self.total_time_ns,
            "average_power_w": self.average_power_w(),
            "peak_power_w": self.peak_power_w(),
            "thermal_proxy_w": self.thermal_proxy_w(),
            "lanes": {
                lane: {
                    "energy_nj": self.lane_energy_nj.get(lane, 0.0),
                    "peak_power_w": self.peak_power_w(lane),
                }
                for lane in self.lanes()
            },
            "stages": dict(sorted(self.stage_energy_nj.items())),
            "mnemonics": {
                name: {
                    "energy_nj": self.mnemonic_energy_nj[name],
                    "time_ns": self.mnemonic_time_ns[name],
                    "count": self.mnemonic_count[name],
                }
                for name in sorted(self.mnemonic_energy_nj)
            },
        }

    def publish_gauges(self, registry) -> None:
        """Write the peak/thermal/average gauges into a metrics registry."""
        registry.gauge("power.peak_w").set(self.peak_power_w())
        registry.gauge("power.thermal_proxy_w").set(self.thermal_proxy_w())
        registry.gauge("power.average_w").set(self.average_power_w())
        for lane in self.lanes():
            registry.gauge(f"power.lane_energy_nj.{lane}").set(
                self.lane_energy_nj.get(lane, 0.0)
            )
