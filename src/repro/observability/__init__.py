"""Unified observability: span tracing, metrics, Perfetto export.

One subsystem correlates everything the simulator can tell you about a
run on a single timeline:

* :mod:`repro.observability.spans` — zero-dependency structured span
  tracer (context-manager API, monotonic *and* simulated-ns clocks,
  parent/child nesting, attributes), wired through the pipeline
  stages, job retries, scheduler batches and controller dispatch;
* :mod:`repro.observability.metrics` — counters/gauges/histograms fed
  by the stats ledger through the narrow :class:`Recorder` protocol
  and by instrumentation points through module-level helpers;
* :mod:`repro.observability.export` — Chrome/Perfetto trace-event
  JSON (one lane per pipeline stage plus resilience/watchdog lanes),
  ``metrics.json`` snapshots, sub-array utilization heatmaps, and the
  schema validator CI runs;
* :mod:`repro.observability.session` — one-call activation wiring all
  of the above around a run (the CLI's ``--trace-out``/
  ``--metrics-out``);
* :mod:`repro.observability.inspect` — post-hoc ``repro inspect`` of
  a finished or crashed job directory;
* :mod:`repro.observability.power` — windowed per-lane/per-mnemonic
  power timeline off the ledger command stream, with a bit-exact
  conservation invariant against the ledger totals;
* :mod:`repro.observability.exposition` — zero-dependency Prometheus
  text-format v0.0.4 writer (the CLI's ``--telemetry-out``);
* :mod:`repro.observability.slo` — per-tenant SLO objectives, burn
  rates, and the alert-rule evaluator the serve loop runs each round;
* :mod:`repro.observability.flightrec` — bounded ring of recent
  commands/spans/events/alerts, dumped as ``flight.json`` on failure.

Everything is **off by default**: without an active session the
instrumentation points reduce to one global ``None`` check each, a
contract enforced by ``benchmarks/bench_observability_overhead.py``.
"""

from repro.observability.export import (
    chrome_trace,
    format_subarray_heatmap,
    subarray_utilization,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_metrics,
)
from repro.observability.exposition import (
    render_prometheus,
    write_exposition,
)
from repro.observability.flightrec import FlightRecorder
from repro.observability.power import PowerTimeline, current_lane, lane_scope
from repro.observability.slo import (
    AlertEvaluator,
    AlertEvent,
    AlertRule,
    SloObjective,
    SloTracker,
)
from repro.observability.inspect import (
    format_stage_table,
    format_top_commands,
    inspect_job,
    render_job_inspection,
)
from repro.observability.metrics import (
    MetricsRegistry,
    Recorder,
    active_registry,
    inc,
    observe,
    set_gauge,
)
from repro.observability.session import (
    ObservabilitySession,
    active_session,
    connect_ledger,
)
from repro.observability.spans import Span, Tracer, active_tracer, event, span

__all__ = [
    "AlertEvaluator",
    "AlertEvent",
    "AlertRule",
    "FlightRecorder",
    "MetricsRegistry",
    "ObservabilitySession",
    "PowerTimeline",
    "Recorder",
    "SloObjective",
    "SloTracker",
    "Span",
    "Tracer",
    "active_registry",
    "active_session",
    "active_tracer",
    "chrome_trace",
    "connect_ledger",
    "current_lane",
    "event",
    "format_stage_table",
    "format_subarray_heatmap",
    "format_top_commands",
    "inc",
    "inspect_job",
    "lane_scope",
    "observe",
    "render_job_inspection",
    "render_prometheus",
    "set_gauge",
    "span",
    "subarray_utilization",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
    "write_exposition",
    "write_metrics",
]
