"""Prometheus text-format (v0.0.4) exposition for the metrics registry.

Zero-dependency writer that turns a
:class:`~repro.observability.metrics.MetricsRegistry` into the plain
text format every Prometheus-compatible scraper understands, plus a
JSON snapshot for programmatic consumers:

* counters/gauges become single sample lines with ``# HELP`` /
  ``# TYPE`` headers (the original dotted metric name rides in the
  HELP line, since Prometheus names flatten ``.`` to ``_``);
* histograms expand to the conventional ``_bucket{le="..."}``
  cumulative series (power-of-two upper bounds plus ``+Inf``),
  ``_sum`` and ``_count``, and three extra ``_p50/_p95/_p99`` gauges
  from :meth:`~repro.observability.metrics.Histogram.quantile`;
* files are written **atomically** (temp file in the target directory,
  then ``os.replace``) because the serve loop rewrites the exposition
  every scheduler round while a scraper may be mid-read.

The CLI exposes this as ``--telemetry-out`` on both ``assemble`` (one
write at the end) and ``serve`` (periodic, per round).  The format is
validated in CI by ``repro.observability.validate``.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "render_prometheus",
    "sanitize_metric_name",
    "write_exposition",
    "write_json_snapshot",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Flatten a dotted registry name into a legal Prometheus name."""
    flat = _NAME_BAD_CHARS.sub("_", name)
    if not flat or not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _format_value(value: float) -> str:
    """Prometheus sample value: repr floats, but ints without ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered metric as text-format v0.0.4."""
    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        flat = sanitize_metric_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# HELP {flat} repro counter {name}")
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.value is None:
                continue
            lines.append(f"# HELP {flat} repro gauge {name}")
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {flat} repro histogram {name}")
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for index, count in enumerate(metric.buckets):
                if count == 0:
                    continue
                cumulative += count
                bound = _format_value(2.0**index)
                lines.append(
                    f'{flat}_bucket{{le="{bound}"}} {cumulative}'
                )
            lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{flat}_sum {_format_value(metric.total)}")
            lines.append(f"{flat}_count {metric.count}")
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                lines.append(f"# TYPE {flat}_{label} gauge")
                lines.append(
                    f"{flat}_{label} {_format_value(metric.quantile(q))}"
                )
    lines.append("")  # trailing newline per the format spec
    return "\n".join(lines)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a sibling temp file + ``os.replace`` (atomic on POSIX)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_exposition(
    path: "str | Path",
    registry: MetricsRegistry,
    extra: "dict | None" = None,
) -> Path:
    """Atomically write the text exposition to ``path``.

    When ``extra`` is given, a companion ``<path>.json`` snapshot is
    written next to it carrying the registry snapshot plus the extra
    sections (e.g. the power summary) — the JSON half of the surface.
    """
    path = Path(path)
    _atomic_write_text(path, render_prometheus(registry))
    if extra is not None:
        write_json_snapshot(path.with_suffix(path.suffix + ".json"),
                            registry, extra=extra)
    return path


def write_json_snapshot(
    path: "str | Path",
    registry: MetricsRegistry,
    extra: "dict | None" = None,
) -> Path:
    """Atomically write the JSON snapshot companion."""
    path = Path(path)
    doc: dict = {"metrics": registry.snapshot()}
    if extra:
        doc.update(extra)
    _atomic_write_text(path, json.dumps(doc, indent=1))
    return path
