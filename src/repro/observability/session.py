"""One-stop wiring of the observability layer around a run.

:class:`ObservabilitySession` bundles the three pieces — a span
:class:`~repro.observability.spans.Tracer`, a
:class:`~repro.observability.metrics.MetricsRegistry`, and the
simulated-clock bridge between them — and activates them together::

    session = ObservabilitySession()
    with session.activate():
        result = assemble_with_pim(reads, k=21)
    session.export(trace_path="t.json", metrics_path="m.json", pim=pim)

The simulated clock is fed by the session's own
:class:`~repro.observability.metrics.Recorder`: every stats-ledger
record the run charges flows through :meth:`on_command`, which both
advances the tracer's simulated timestamp and folds the event into the
registry.  Ledgers connect through :func:`connect_ledger`, which
:class:`~repro.core.platform.PimAssembler` calls at construction — a
no-op unless a session is active, so the default simulator keeps its
zero-instrumentation cost and job resumes (which rebuild the platform
mid-run) reconnect automatically.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from typing import Iterator

from repro.observability.export import (
    subarray_utilization,
    write_chrome_trace,
    write_metrics,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Tracer

__all__ = ["ObservabilitySession", "active_session", "connect_ledger"]

#: the currently active session (single-threaded cooperative model)
_ACTIVE: "ObservabilitySession | None" = None


class ObservabilitySession:
    """Tracer + registry + simulated clock, activated as one unit."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._sim_time_ns = 0.0
        self.tracer = Tracer(sim_clock=lambda: self._sim_time_ns)

    # ----- the Recorder fed to every connected StatsLedger -------------------

    def on_command(
        self,
        command: str,
        count: int,
        time_ns: float,
        energy_nj: float,
        phase: "str | None",
    ) -> None:
        """Advance the simulated clock and mirror the event as metrics."""
        self._sim_time_ns += time_ns
        self.registry.on_command(command, count, time_ns, energy_nj, phase)

    @property
    def sim_time_ns(self) -> float:
        """Cumulative simulated nanoseconds observed by this session."""
        return self._sim_time_ns

    # ----- lifecycle --------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["ObservabilitySession"]:
        """Install the session, its tracer and its registry globally."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        with ExitStack() as stack:
            stack.enter_context(self.tracer.activate())
            stack.enter_context(self.registry.activate())
            try:
                yield self
            finally:
                _ACTIVE = previous

    # ----- export -----------------------------------------------------------

    def snapshot_platform(self, pim) -> list[dict]:
        """Fold a platform's sub-array occupancy into gauges; return it."""
        records = subarray_utilization(pim)
        for record in records:
            key = f"{record['bank']}.{record['mat']}.{record['subarray']}"
            self.registry.gauge(f"pim.subarray.rows_used.{key}").set(
                record["rows_used"]
            )
        self.registry.gauge("pim.subarray.touched").set(len(records))
        if records:
            self.registry.gauge("pim.subarray.max_utilization").set(
                max(r["utilization"] for r in records)
            )
        return records

    def export(
        self,
        trace_path: "str | None" = None,
        metrics_path: "str | None" = None,
        pim=None,
    ) -> list[str]:
        """Write the requested artefacts; returns the written paths."""
        written: list[str] = []
        heatmap = self.snapshot_platform(pim) if pim is not None else []
        if trace_path:
            written.append(str(write_chrome_trace(trace_path, self.tracer)))
        if metrics_path:
            extra = {"subarray_heatmap": heatmap} if heatmap else None
            written.append(
                str(write_metrics(metrics_path, self.registry, extra=extra))
            )
        return written


def active_session() -> "ObservabilitySession | None":
    """The session currently installed by :meth:`ObservabilitySession.activate`."""
    return _ACTIVE


def connect_ledger(ledger) -> None:
    """Attach the active session's recorder to a stats ledger.

    Called by :class:`~repro.core.platform.PimAssembler` when it builds
    (or rebuilds, on resume) its ledger; a cheap no-op when no session
    is active, so construction stays instrumentation-free by default.
    """
    if _ACTIVE is not None:
        ledger.attach_recorder(_ACTIVE)
