"""One-stop wiring of the observability layer around a run.

:class:`ObservabilitySession` bundles the pieces — a span
:class:`~repro.observability.spans.Tracer`, a
:class:`~repro.observability.metrics.MetricsRegistry`, a
:class:`~repro.observability.power.PowerTimeline`, a
:class:`~repro.observability.flightrec.FlightRecorder`, and the
simulated-clock bridge between them — and activates them together::

    session = ObservabilitySession()
    with session.activate():
        result = assemble_with_pim(reads, k=21)
    session.export(trace_path="t.json", metrics_path="m.json", pim=pim)

The simulated clock is fed by the session's own
:class:`~repro.observability.metrics.Recorder`: every stats-ledger
record the run charges flows through :meth:`on_command`, which
advances the tracer's simulated timestamp, folds the event into the
registry, deposits its energy into the power timeline, and pushes it
onto the flight-recorder ring.  Ledgers connect through
:func:`connect_ledger`, which
:class:`~repro.core.platform.PimAssembler` calls at construction — a
no-op unless a session is active, so the default simulator keeps its
zero-instrumentation cost and job resumes (which rebuild the platform
mid-run) reconnect automatically.

One lock serialises :meth:`on_command`: the multi-tenant service runs
real worker threads against a single shared session, and the power
timeline's conservation invariant (bit-exact against the ledger) does
not survive lost updates.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from typing import Iterator

from repro.observability.export import (
    subarray_utilization,
    write_chrome_trace,
    write_metrics,
)
from repro.observability.exposition import write_exposition
from repro.observability.flightrec import FlightRecorder
from repro.observability.metrics import MetricsRegistry
from repro.observability.power import PowerTimeline, current_lane
from repro.observability.spans import Tracer

__all__ = ["ObservabilitySession", "active_session", "connect_ledger"]

#: the currently active session (single-threaded cooperative model)
_ACTIVE: "ObservabilitySession | None" = None


class ObservabilitySession:
    """Tracer + registry + power timeline + flight recorder, as one unit.

    Args:
        power_bin_ns: bin width of the power timeline (simulated ns);
            ``None`` keeps the default.
        flight: pass ``False`` to skip the flight recorder (micro-
            benchmarks measuring the enabled path without ring pushes).
    """

    def __init__(
        self,
        power_bin_ns: "float | None" = None,
        flight: bool = True,
    ) -> None:
        self.registry = MetricsRegistry()
        self._sim_time_ns = 0.0
        self.tracer = Tracer(sim_clock=lambda: self._sim_time_ns)
        self.power = (
            PowerTimeline(bin_ns=power_bin_ns)
            if power_bin_ns is not None
            else PowerTimeline()
        )
        self.flight = FlightRecorder() if flight else None
        if self.flight is not None:
            self.tracer.listener = self.flight
        self._lock = threading.Lock()

    # ----- the Recorder fed to every connected StatsLedger -------------------

    def on_command(
        self,
        command: str,
        count: int,
        time_ns: float,
        energy_nj: float,
        phase: "str | None",
    ) -> None:
        """Advance the simulated clock and fan the event out.

        Lane attribution happens here (thread-local
        :func:`~repro.observability.power.lane_scope`, falling back to
        the ledger phase) so the power timeline and the flight ring
        agree on who burned the energy.
        """
        lane = current_lane()
        if lane is None:
            lane = phase if phase is not None else "job"
        with self._lock:
            self._sim_time_ns += time_ns
            self.registry.on_command(command, count, time_ns, energy_nj, phase)
            self.power.on_command(
                command, count, time_ns, energy_nj, phase, lane=lane
            )
            if self.flight is not None:
                self.flight.on_command(
                    command,
                    count,
                    time_ns,
                    energy_nj,
                    phase,
                    sim_ns=self._sim_time_ns,
                    lane=lane,
                )

    @property
    def sim_time_ns(self) -> float:
        """Cumulative simulated nanoseconds observed by this session."""
        return self._sim_time_ns

    # ----- lifecycle --------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["ObservabilitySession"]:
        """Install the session, its tracer and its registry globally."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        with ExitStack() as stack:
            stack.enter_context(self.tracer.activate())
            stack.enter_context(self.registry.activate())
            try:
                yield self
            finally:
                _ACTIVE = previous

    # ----- failure handling --------------------------------------------------

    def dump_flight(self, job_dir, reason: str):
        """Dump the flight rings into ``job_dir`` (no-op without rings)."""
        if self.flight is None:
            return None
        return self.flight.dump(job_dir, reason)

    # ----- export -----------------------------------------------------------

    def snapshot_platform(self, pim) -> list[dict]:
        """Fold a platform's sub-array occupancy into gauges; return it."""
        records = subarray_utilization(pim)
        for record in records:
            key = f"{record['bank']}.{record['mat']}.{record['subarray']}"
            self.registry.gauge(f"pim.subarray.rows_used.{key}").set(
                record["rows_used"]
            )
        self.registry.gauge("pim.subarray.touched").set(len(records))
        if records:
            self.registry.gauge("pim.subarray.max_utilization").set(
                max(r["utilization"] for r in records)
            )
        return records

    def export(
        self,
        trace_path: "str | None" = None,
        metrics_path: "str | None" = None,
        pim=None,
        telemetry_path: "str | None" = None,
    ) -> list[str]:
        """Write the requested artefacts; returns the written paths."""
        written: list[str] = []
        heatmap = self.snapshot_platform(pim) if pim is not None else []
        self.power.publish_gauges(self.registry)
        if trace_path:
            written.append(
                str(write_chrome_trace(trace_path, self.tracer,
                                       power=self.power))
            )
        if metrics_path:
            extra: dict = {"power": self.power.summary()}
            if heatmap:
                extra["subarray_heatmap"] = heatmap
            written.append(
                str(write_metrics(metrics_path, self.registry, extra=extra))
            )
        if telemetry_path:
            written.append(
                str(
                    write_exposition(
                        telemetry_path,
                        self.registry,
                        extra={"power": self.power.summary()},
                    )
                )
            )
        return written

    def write_telemetry(self, telemetry_path) -> str:
        """Periodic exposition write (the serve loop's per-round hook)."""
        self.power.publish_gauges(self.registry)
        return str(
            write_exposition(
                telemetry_path,
                self.registry,
                extra={"power": self.power.summary()},
            )
        )


def active_session() -> "ObservabilitySession | None":
    """The session currently installed by :meth:`ObservabilitySession.activate`."""
    return _ACTIVE


def connect_ledger(ledger) -> None:
    """Attach the active session's recorder to a stats ledger.

    Called by :class:`~repro.core.platform.PimAssembler` when it builds
    (or rebuilds, on resume) its ledger; a cheap no-op when no session
    is active, so construction stays instrumentation-free by default.
    """
    if _ACTIVE is not None:
        ledger.attach_recorder(_ACTIVE)
