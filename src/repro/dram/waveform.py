"""Transient waveforms of the in-memory XNOR2 operation (paper Fig. 3a).

The paper's Fig. 3a shows Spectre transients of the two-row-activation
XNOR2: the bit-line pair precharged to Vdd/2, the word lines of compute
rows x1/x2 pulsing, the charge-sharing dip/bump, and the sense
amplification driving the bit line to the XNOR2 rail — cells recharge to
Vdd for Di Dj in {00, 11} and discharge to GND for {01, 10}.

This module synthesises the equivalent behavioural waveforms from RC
first-order dynamics.  The three phases are:

1. ``precharge``  — BL/BLB held at Vdd/2.
2. ``share``      — WLx1/WLx2 rise; the compute node settles
   exponentially to the charge-sharing level from
   :func:`repro.dram.charge_sharing.two_row_share`.
3. ``sense``      — the enabled reconfigurable SA regeneratively drives
   BL to the XNOR2 rail and BLB to its complement.

Timebase and time constants are taken from the timing model
(:mod:`repro.core.timing` nominal activation values) so the waveform is
consistent with the cycle accounting used everywhere else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.dram.cell import CellParameters
from repro.dram.charge_sharing import two_row_share
from repro.dram.sense_voltage import ReconfigurableSenseVoltages


@dataclass(frozen=True)
class TransientPhases:
    """Phase boundaries of one XNOR2 cycle, in nanoseconds."""

    precharge_ns: float = 5.0
    share_ns: float = 15.0
    sense_ns: float = 15.0
    #: RC settling constant of the charge-sharing phase.
    share_tau_ns: float = 2.0
    #: regeneration constant of the cross-coupled sense phase.
    sense_tau_ns: float = 1.5

    @property
    def total_ns(self) -> float:
        return self.precharge_ns + self.share_ns + self.sense_ns


@dataclass
class TransientWaveform:
    """A named set of sampled traces over a common timebase."""

    time_ns: np.ndarray
    traces: dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, name: str, values: np.ndarray) -> None:
        if values.shape != self.time_ns.shape:
            raise ValueError("trace length must match the timebase")
        self.traces[name] = values

    def at(self, name: str, t_ns: float) -> float:
        """Sample a trace at (the nearest point to) a given time."""
        idx = int(np.argmin(np.abs(self.time_ns - t_ns)))
        return float(self.traces[name][idx])

    def final(self, name: str) -> float:
        return float(self.traces[name][-1])


def _exp_settle(t: np.ndarray, start: float, target: float, tau: float) -> np.ndarray:
    return target + (start - target) * np.exp(-t / tau)


def xnor2_transient(
    di: int,
    dj: int,
    params: CellParameters | None = None,
    phases: TransientPhases | None = None,
    samples_per_ns: float = 10.0,
) -> TransientWaveform:
    """Synthesise the Fig. 3a transient for one input pattern.

    Args:
        di, dj: logic values stored in compute rows x1 and x2.
        params: cell electrical constants.
        phases: phase durations / time constants.
        samples_per_ns: sampling density of the output traces.

    Returns:
        A :class:`TransientWaveform` with traces ``WLx1``, ``WLx2``,
        ``node`` (shared compute node), ``BL`` (carries XNOR2), and
        ``BLB`` (carries XOR2).
    """
    params = params or CellParameters()
    phases = phases or TransientPhases()
    sa = ReconfigurableSenseVoltages.nominal(params)

    share_level = two_row_share(di, dj, params).voltage
    decision = sa.decide(share_level)
    bl_rail = params.vdd if decision.xnor2 else 0.0
    blb_rail = params.vdd - bl_rail

    n = max(2, int(round(phases.total_ns * samples_per_ns)))
    time_ns = np.linspace(0.0, phases.total_ns, n)
    wave = TransientWaveform(time_ns=time_ns)

    t_share = phases.precharge_ns
    t_sense = phases.precharge_ns + phases.share_ns

    wl = np.where((time_ns >= t_share), params.vdd, 0.0)
    wave.add("WLx1", wl.copy())
    wave.add("WLx2", wl.copy())

    node = np.empty_like(time_ns)
    bl = np.empty_like(time_ns)
    blb = np.empty_like(time_ns)
    pre = params.precharge_voltage

    pre_mask = time_ns < t_share
    share_mask = (time_ns >= t_share) & (time_ns < t_sense)
    sense_mask = time_ns >= t_sense

    node[pre_mask] = pre
    bl[pre_mask] = pre
    blb[pre_mask] = pre

    ts = time_ns[share_mask] - t_share
    node[share_mask] = _exp_settle(ts, pre, share_level, phases.share_tau_ns)
    bl[share_mask] = pre
    blb[share_mask] = pre

    te = time_ns[sense_mask] - t_sense
    node_at_sense = share_level if share_mask.any() else pre
    node[sense_mask] = _exp_settle(te, node_at_sense, bl_rail, phases.sense_tau_ns)
    bl[sense_mask] = _exp_settle(te, pre, bl_rail, phases.sense_tau_ns)
    blb[sense_mask] = _exp_settle(te, pre, blb_rail, phases.sense_tau_ns)

    wave.add("node", node)
    wave.add("BL", bl)
    wave.add("BLB", blb)
    return wave


def xnor2_transient_suite(
    params: CellParameters | None = None,
    phases: TransientPhases | None = None,
) -> dict[str, TransientWaveform]:
    """All four input patterns of Fig. 3a, keyed by ``"DiDj"`` string."""
    suite = {}
    for di in (0, 1):
        for dj in (0, 1):
            suite[f"{di}{dj}"] = xnor2_transient(di, dj, params, phases)
    return suite


def settling_error(wave: TransientWaveform, trace: str, target: float) -> float:
    """|final - target| of a trace — convergence check used in tests."""
    if trace not in wave.traces:
        raise KeyError(trace)
    return abs(wave.final(trace) - target)


def cycle_time_ns(phases: TransientPhases | None = None) -> float:
    """Total XNOR2 cycle duration implied by the waveform phases."""
    phases = phases or TransientPhases()
    return phases.total_ns


def is_settled(
    wave: TransientWaveform,
    trace: str,
    target: float,
    tolerance: float = 1e-3,
) -> bool:
    """Whether a trace has regenerated to within ``tolerance`` of a rail."""
    return settling_error(wave, trace, target) <= tolerance or math.isclose(
        wave.final(trace), target, abs_tol=tolerance
    )
