"""Shifted-VTC inverters and the analog decision path of the new SA.

PIM-Assembler's reconfigurable sense amplifier (paper Fig. 2) adds two
inverters with deliberately shifted voltage-transfer characteristics to
the standard cross-coupled pair:

* a **low-Vs** inverter (high-Vth NMOS / low-Vth PMOS) whose switching
  voltage sits at ~Vdd/4 — it amplifies deviation from 1/4 Vdd, so its
  output is the **NOR2** of the two shared compute cells;
* a **high-Vs** inverter (low-Vth NMOS / high-Vth PMOS) switching at
  ~3/4 Vdd — its output is the **NAND2**.

A CMOS AND gate with one inverted input combines them into **XOR2**
(= NAND & NOT NOR), and the 4:1 output MUX places XOR2 / XNOR2 onto the
bit-line pair.  This module evaluates that analog chain for given node
voltages and (possibly perturbed) thresholds; the architectural simulator
uses the ideal outcome, the Monte-Carlo study the perturbed one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.cell import CellParameters
from repro.dram.charge_sharing import triple_row_share, two_row_share


@dataclass(frozen=True)
class InverterVTC:
    """A static CMOS inverter with an engineered switching voltage.

    Attributes:
        switching_voltage: input level at which the output crosses mid
            rail (``Vs`` in the paper's Fig. 2b).
        vdd: supply rail.
        gain: small-signal gain magnitude around the switching point;
            only used when an analog (non-saturated) output is requested.
    """

    switching_voltage: float
    vdd: float = 1.0
    gain: float = 20.0

    def __post_init__(self) -> None:
        if not 0 < self.switching_voltage < self.vdd:
            raise ValueError("switching voltage must lie inside the rails")
        if self.gain <= 0:
            raise ValueError("gain must be positive")

    def digital(self, vin: float) -> int:
        """Hard decision: 1 when the input is below the switching point."""
        return 1 if vin < self.switching_voltage else 0

    def analog(self, vin: float) -> float:
        """Smooth VTC (logistic approximation) for waveform plotting."""
        x = self.gain * (self.switching_voltage - vin) / self.vdd
        return self.vdd / (1.0 + math.exp(-2.0 * x))


def low_vs_inverter(params: CellParameters | None = None) -> InverterVTC:
    """NOR-detecting inverter, nominal Vs = Vdd/4."""
    params = params or CellParameters()
    return InverterVTC(switching_voltage=0.25 * params.vdd, vdd=params.vdd)


def high_vs_inverter(params: CellParameters | None = None) -> InverterVTC:
    """NAND-detecting inverter, nominal Vs = 3 Vdd/4."""
    params = params or CellParameters()
    return InverterVTC(switching_voltage=0.75 * params.vdd, vdd=params.vdd)


def normal_vs_inverter(params: CellParameters | None = None) -> InverterVTC:
    """The ordinary SA inverter, Vs = Vdd/2 (memory read reference)."""
    params = params or CellParameters()
    return InverterVTC(switching_voltage=0.5 * params.vdd, vdd=params.vdd)


@dataclass(frozen=True)
class SenseDecision:
    """All logic outcomes the reconfigurable SA derives from one share.

    ``nor2``/``nand2`` come straight from the two inverters; ``xor2`` is
    the add-on AND gate's output (NAND & !NOR); ``xnor2`` its complement
    as driven onto the complementary bit line by the MUX.
    """

    nor2: int
    nand2: int

    @property
    def xor2(self) -> int:
        return self.nand2 & (1 - self.nor2)

    @property
    def xnor2(self) -> int:
        return 1 - self.xor2

    @property
    def and2(self) -> int:
        """AND2 = NOT NAND2 — available for free, used by the DPU path."""
        return 1 - self.nand2

    @property
    def or2(self) -> int:
        """OR2 = NOT NOR2."""
        return 1 - self.nor2


@dataclass(frozen=True)
class ReconfigurableSenseVoltages:
    """The analog decision path: inverters + AND gate + MUX.

    This object is deliberately tiny so the Monte-Carlo engine can stamp
    thousands of perturbed instances cheaply.
    """

    low_vs: InverterVTC
    high_vs: InverterVTC

    @classmethod
    def nominal(cls, params: CellParameters | None = None) -> "ReconfigurableSenseVoltages":
        params = params or CellParameters()
        return cls(low_vs=low_vs_inverter(params), high_vs=high_vs_inverter(params))

    def decide(self, node_voltage: float) -> SenseDecision:
        """Resolve the shared compute-node voltage into logic outputs.

        The low-Vs inverter outputs 1 only when the node is below Vdd/4
        (both cells stored 0 -> NOR2); the high-Vs inverter outputs 0
        only when the node is above 3Vdd/4 (both stored 1 -> NAND2 = 0).
        """
        return SenseDecision(
            nor2=self.low_vs.digital(node_voltage),
            nand2=self.high_vs.digital(node_voltage),
        )

    def xnor2(self, di: int, dj: int, params: CellParameters | None = None) -> int:
        """End-to-end nominal XNOR2 of two stored bits via charge sharing."""
        result = two_row_share(di, dj, params)
        return self.decide(result.voltage).xnor2


def tra_majority(
    bits: tuple[int, int, int] | list[int],
    params: CellParameters | None = None,
    reference: float | None = None,
) -> int:
    """Majority-of-3 as sensed by the standard SA after a TRA share.

    Args:
        bits: the three stored logic values.
        params: electrical constants.
        reference: the SA decision threshold; defaults to the precharge
            level (Vdd/2).  The variation study perturbs it.
    """
    params = params or CellParameters()
    if reference is None:
        reference = params.precharge_voltage
    share = triple_row_share(list(bits), params)
    return 1 if share.voltage > reference else 0
