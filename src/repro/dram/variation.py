"""Monte-Carlo process-variation study (paper Table I).

The paper runs 10 000 Spectre Monte-Carlo trials per variation level,
perturbing "all components including DRAM cell (BL/WL capacitance and
transistor) and SA (width/length of transistors - Vs)", and reports the
percentage of erroneous trials for Ambit's triple-row activation (TRA)
versus PIM-Assembler's two-row activation.

Our behavioural equivalent perturbs the same physical quantities through
the first-order charge-sharing equations of
:mod:`repro.dram.charge_sharing`:

* **cell capacitances** and the **bit-line capacitance** — relative
  Gaussian deviations (``sigma = percent/3``, i.e. the stated +/-X% is
  read as a 3-sigma bound);
* **stored cell voltages** — charge loss/gain, scaled by
  ``voltage_sensitivity``;
* **sense thresholds** — the engineered low-/high-Vs inverters are
  skewed, minimum-size, single-ended devices and therefore carry a much
  larger input-referred offset per unit transistor variation than the
  layout-symmetric differential SA; the two sensitivities
  (``shifted_vs_sensitivity`` vs ``reference_sensitivity``) encode that
  ratio and are the calibration constants of this model (see DESIGN.md);
* **coupling disturbances** — the Fig. 4 noise sources, injected as
  bounded uniform additive noise on the sensed node.

A TRA trial errs when the sensed majority differs from the ideal
majority of a random 3-bit pattern; a two-row trial errs when the
sensed XNOR2 differs from the ideal XNOR2 of a random 2-bit pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.dram.cell import CellParameters, NoiseSources

#: Variation levels reported in Table I of the paper.
TABLE_I_LEVELS: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 30.0)

#: Paper-reported error percentages, for reference in tests/benchmarks.
TABLE_I_PAPER: Mapping[str, Mapping[float, float]] = {
    "tra": {5.0: 0.00, 10.0: 0.18, 15.0: 5.5, 20.0: 17.1, 30.0: 28.4},
    "two_row": {5.0: 0.00, 10.0: 0.00, 15.0: 1.6, 20.0: 11.2, 30.0: 18.1},
}


@dataclass(frozen=True)
class VariationSpec:
    """How a +/-X% component variation maps onto model parameters.

    Attributes:
        percent: the +/-X% variation level.
        sigma_fraction: Gaussian sigma as a fraction of X (default: X is
            a 3-sigma bound).
        shifted_vs_sensitivity: input-referred threshold deviation of the
            engineered low-/high-Vs inverters, in Vdd per unit relative
            transistor variation.  Calibrated so the two-row error rates
            track Table I (skewed single-ended inverters are offset-heavy).
        reference_sensitivity: same for the differential SA decision
            reference; smaller than the engineered inverters thanks to
            the symmetric cross-coupled layout, but inflated by BL/BLB
            precharge-level mismatch, which lands on the same axis.
        voltage_sensitivity: stored-charge deviation in Vdd per unit
            relative variation.
        include_coupling_noise: add the Fig. 4 coupling disturbances.
    """

    percent: float
    sigma_fraction: float = 1.0 / 3.0
    shifted_vs_sensitivity: float = 2.0
    reference_sensitivity: float = 1.0
    voltage_sensitivity: float = 0.5
    include_coupling_noise: bool = True

    def __post_init__(self) -> None:
        if self.percent < 0:
            raise ValueError("percent must be non-negative")
        if self.sigma_fraction <= 0:
            raise ValueError("sigma_fraction must be positive")

    @property
    def relative_sigma(self) -> float:
        """Per-component relative standard deviation (unitless)."""
        return self.percent / 100.0 * self.sigma_fraction


@dataclass(frozen=True)
class VariationResult:
    """Error statistics of one Monte-Carlo run."""

    mechanism: str
    percent: float
    trials: int
    errors: int

    @property
    def error_percent(self) -> float:
        return 100.0 * self.errors / self.trials if self.trials else 0.0


@dataclass
class MonteCarloSense:
    """Vectorised Monte-Carlo engine over the sensing mechanisms.

    Args:
        params: nominal cell electrical constants.
        noise: coupling-noise amplitudes (Fig. 4 sources).
        seed: RNG seed for reproducibility.
    """

    params: CellParameters = field(default_factory=CellParameters)
    noise: NoiseSources = field(default_factory=NoiseSources)
    seed: int = 0x5EED

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _coupling(self, rng: np.random.Generator, n: int, spec: VariationSpec) -> np.ndarray:
        """Bounded-uniform additive disturbance from the Fig. 4 sources."""
        if not spec.include_coupling_noise:
            return np.zeros(n)
        total = np.zeros(n)
        for amplitude in (
            self.noise.wordline_bitline,
            self.noise.bitline_substrate,
            self.noise.bitline_crosstalk,
        ):
            total += rng.uniform(-amplitude, amplitude, size=n) * self.params.vdd
        return total

    def run_tra(self, spec: VariationSpec, trials: int = 10_000) -> VariationResult:
        """Triple-row activation (Ambit carry/majority) under variation."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        rng = self._rng()
        p = self.params
        sigma = spec.relative_sigma

        bits = rng.integers(0, 2, size=(trials, 3))
        ideal = (bits.sum(axis=1) >= 2).astype(np.int64)

        cs = p.cell_capacitance_f * (1.0 + sigma * rng.standard_normal((trials, 3)))
        cs = np.clip(cs, 0.05 * p.cell_capacitance_f, None)
        cb = p.bitline_capacitance_f * (1.0 + sigma * rng.standard_normal(trials))
        cb = np.clip(cb, 0.05 * p.bitline_capacitance_f, None)

        stored = np.where(bits == 1, p.vdd * (1.0 - p.retention_degradation), 0.0)
        stored = stored + spec.voltage_sensitivity * sigma * p.vdd * rng.standard_normal(
            (trials, 3)
        )

        voltage = (cb * p.precharge_voltage + (cs * stored).sum(axis=1)) / (
            cb + cs.sum(axis=1)
        )
        voltage = voltage + self._coupling(rng, trials, spec)

        reference = p.precharge_voltage + (
            spec.reference_sensitivity * sigma * p.vdd * rng.standard_normal(trials)
        )
        sensed = (voltage > reference).astype(np.int64)
        errors = int((sensed != ideal).sum())
        return VariationResult("tra", spec.percent, trials, errors)

    def run_two_row(self, spec: VariationSpec, trials: int = 10_000) -> VariationResult:
        """PIM-Assembler two-row activation (XNOR2) under variation."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        rng = self._rng()
        p = self.params
        sigma = spec.relative_sigma

        bits = rng.integers(0, 2, size=(trials, 2))
        ideal_xnor = (bits[:, 0] == bits[:, 1]).astype(np.int64)

        cs = p.cell_capacitance_f * (1.0 + sigma * rng.standard_normal((trials, 2)))
        cs = np.clip(cs, 0.05 * p.cell_capacitance_f, None)

        stored = np.where(bits == 1, p.vdd * (1.0 - p.retention_degradation), 0.0)
        stored = stored + spec.voltage_sensitivity * sigma * p.vdd * rng.standard_normal(
            (trials, 2)
        )

        voltage = (cs * stored).sum(axis=1) / cs.sum(axis=1)
        voltage = voltage + self._coupling(rng, trials, spec)

        low_vs = 0.25 * p.vdd + (
            spec.shifted_vs_sensitivity * sigma * p.vdd * rng.standard_normal(trials)
        )
        high_vs = 0.75 * p.vdd + (
            spec.shifted_vs_sensitivity * sigma * p.vdd * rng.standard_normal(trials)
        )

        nor2 = (voltage < low_vs).astype(np.int64)
        nand2 = (voltage < high_vs).astype(np.int64)
        xor2 = nand2 & (1 - nor2)
        xnor2 = 1 - xor2
        errors = int((xnor2 != ideal_xnor).sum())
        return VariationResult("two_row", spec.percent, trials, errors)

    def run(self, mechanism: str, spec: VariationSpec, trials: int = 10_000) -> VariationResult:
        if mechanism == "tra":
            return self.run_tra(spec, trials)
        if mechanism == "two_row":
            return self.run_two_row(spec, trials)
        raise ValueError(f"unknown mechanism: {mechanism!r}")


def run_variation_table(
    levels: Iterable[float] = TABLE_I_LEVELS,
    trials: int = 10_000,
    seed: int = 0x5EED,
) -> dict[str, dict[float, VariationResult]]:
    """Regenerate Table I: error % vs variation for TRA and 2-row act.

    Returns:
        ``{"tra": {level: result}, "two_row": {level: result}}``.
    """
    engine = MonteCarloSense(seed=seed)
    table: dict[str, dict[float, VariationResult]] = {"tra": {}, "two_row": {}}
    for level in levels:
        spec = VariationSpec(percent=level)
        table["tra"][level] = engine.run_tra(spec, trials)
        table["two_row"][level] = engine.run_two_row(spec, trials)
    return table
