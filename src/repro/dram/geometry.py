"""Physical organisation of the PIM-Assembler memory.

The paper (Section II-A and Section IV "Setup") fixes the following
hierarchy, which this module captures as a set of immutable dataclasses:

* **sub-array**: 1024 rows x 256 columns.  1016 rows are ordinary *data
  rows* behind a regular row decoder; 8 rows (labelled ``x1..x8``) are
  *compute rows* behind a 3:8 Modified Row Decoder (MRD) that supports
  multi-row activation.
* **MAT**: 4x4 sub-arrays sharing a Global Row Decoder (GRD) and a Global
  Row Buffer (GRB), plus one Digital Processing Unit (DPU) for non-bulk
  bit-wise operations.
* **bank**: a grid of MATs routed in an H-tree.
* **device / memory group**: 16x16 banks.  The micro-benchmark comparison
  of Fig. 3b uses an 8-bank configuration, which callers can request via
  :func:`microbenchmark_geometry`.

All capacity and parallelism figures used by the timing model derive from
this module so that changing one number (say, the column count) propagates
consistently through the whole evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SubArrayGeometry:
    """Dimensions of one computational sub-array.

    Attributes:
        rows: total word lines, data + compute.
        cols: bit lines; also the number of bits processed per in-memory
            operation (one full row at a time).
        compute_rows: rows wired to the modified row decoder (``x1..x8``).
    """

    rows: int = 1024
    cols: int = 256
    compute_rows: int = 8

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("sub-array dimensions must be positive")
        if not 0 < self.compute_rows < self.rows:
            raise ValueError(
                "compute_rows must be positive and leave room for data rows"
            )

    @property
    def data_rows(self) -> int:
        """Rows available for operand storage (1016 in the paper)."""
        return self.rows - self.compute_rows

    @property
    def row_bits(self) -> int:
        """Bits per row; the granularity of every bulk bit-wise op."""
        return self.cols

    @property
    def capacity_bits(self) -> int:
        return self.rows * self.cols

    @property
    def data_capacity_bits(self) -> int:
        return self.data_rows * self.cols


@dataclass(frozen=True)
class MatGeometry:
    """A MAT: a grid of sub-arrays plus shared GRD/GRB and one DPU."""

    subarray: SubArrayGeometry = SubArrayGeometry()
    subarrays_x: int = 4
    subarrays_y: int = 4
    #: how many sub-arrays may activate a row simultaneously within a MAT
    #: (paper setup: 1/1 row/column activation per MAT).
    active_subarrays: int = 1

    def __post_init__(self) -> None:
        if self.subarrays_x <= 0 or self.subarrays_y <= 0:
            raise ValueError("MAT grid dimensions must be positive")
        if not 0 < self.active_subarrays <= self.subarrays_x * self.subarrays_y:
            raise ValueError("active_subarrays out of range")

    @property
    def num_subarrays(self) -> int:
        return self.subarrays_x * self.subarrays_y

    @property
    def capacity_bits(self) -> int:
        return self.num_subarrays * self.subarray.capacity_bits


@dataclass(frozen=True)
class BankGeometry:
    """A bank: a grid of MATs routed in an H-tree manner."""

    mat: MatGeometry = MatGeometry()
    mats_x: int = 16
    mats_y: int = 16
    active_mats: int = 1

    def __post_init__(self) -> None:
        if self.mats_x <= 0 or self.mats_y <= 0:
            raise ValueError("bank grid dimensions must be positive")
        if not 0 < self.active_mats <= self.mats_x * self.mats_y:
            raise ValueError("active_mats out of range")

    @property
    def num_mats(self) -> int:
        return self.mats_x * self.mats_y

    @property
    def num_subarrays(self) -> int:
        return self.num_mats * self.mat.num_subarrays

    @property
    def capacity_bits(self) -> int:
        return self.num_mats * self.mat.capacity_bits


@dataclass(frozen=True)
class DeviceGeometry:
    """A full PIM-Assembler device (chip / memory group)."""

    bank: BankGeometry = BankGeometry()
    num_banks: int = 8

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")

    @property
    def num_subarrays(self) -> int:
        return self.num_banks * self.bank.num_subarrays

    @property
    def capacity_bits(self) -> int:
        return self.num_banks * self.bank.capacity_bits

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8

    @property
    def row_bits(self) -> int:
        return self.bank.mat.subarray.row_bits

    def parallel_op_bits(self, parallelism_degree: int = 1) -> int:
        """Bits processed by one device-wide in-memory operation.

        Every bank can drive ``active_mats`` MATs, each with
        ``active_subarrays`` sub-arrays, each computing one full row.
        ``parallelism_degree`` (Pd in the paper, Fig. 10) replicates the
        computation over additional sub-arrays within the MAT.

        Raises:
            ValueError: if ``parallelism_degree`` exceeds the sub-arrays
                physically present in a MAT.
        """
        mat = self.bank.mat
        if not 0 < parallelism_degree <= mat.num_subarrays:
            raise ValueError(
                f"parallelism_degree must be in 1..{mat.num_subarrays}"
            )
        per_bank = self.bank.active_mats * mat.active_subarrays
        return (
            self.num_banks
            * per_bank
            * parallelism_degree
            * mat.subarray.row_bits
        )


def default_geometry() -> DeviceGeometry:
    """The Section IV setup: 1024x256 sub-arrays, 4x4 MATs, 16x16 banks."""
    return DeviceGeometry(
        bank=BankGeometry(
            mat=MatGeometry(subarray=SubArrayGeometry(rows=1024, cols=256)),
        ),
        num_banks=8,
    )


def microbenchmark_geometry() -> DeviceGeometry:
    """The Fig. 3b raw-throughput setup: 8 banks of 1024x256 sub-arrays.

    The paper states every PIM platform is evaluated with an identical
    physical memory configuration; the same geometry is therefore shared
    with the Ambit and DRISA models in :mod:`repro.platforms`.
    """
    return default_geometry()
