"""Sense-margin analysis and technology-scaling study.

The paper closes its reliability section with: "By scaling down the
transistor size, the process variation effect is expected to get
worse."  This module quantifies that expectation within our model:

* :func:`margin_report` — the nominal sense margins of the two
  mechanisms and their sensitivity to the Cs/Cb ratio;
* :func:`scaling_study` — sweep a technology-scaling factor (smaller
  nodes shrink the storage capacitor faster than the bit line) and
  report the Monte-Carlo error rates at a fixed variation level, for
  TRA and two-row activation.

The qualitative expectations the tests pin down: TRA's margin shrinks
with Cs (its signal is the Cs/(Cb+3Cs) divider) so its error rate
climbs steeply; two-row activation's compute-node margin is
Cb-independent, so it degrades only through the threshold-variation
channel and stays ahead at every node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.cell import CellParameters
from repro.dram.charge_sharing import tra_nominal_margin, two_row_nominal_levels
from repro.dram.variation import MonteCarloSense, VariationSpec


@dataclass(frozen=True)
class MarginReport:
    """Nominal margins of the two sensing mechanisms, volts."""

    tra_margin: float
    two_row_margin: float
    cs_over_cb: float

    @property
    def margin_ratio(self) -> float:
        """two-row / TRA margin — the robustness headroom."""
        if self.tra_margin <= 0:
            return float("inf")
        return self.two_row_margin / self.tra_margin


def two_row_margin(params: CellParameters | None = None) -> float:
    """Worst-case distance of the compute-node levels to the shifted
    thresholds (nominally Vdd/4; retention derates the top level)."""
    params = params or CellParameters()
    levels = two_row_nominal_levels(params)
    thresholds = (0.25 * params.vdd, 0.75 * params.vdd)
    return min(abs(level - t) for level in levels for t in thresholds)


def margin_report(params: CellParameters | None = None) -> MarginReport:
    params = params or CellParameters()
    return MarginReport(
        tra_margin=tra_nominal_margin(params),
        two_row_margin=two_row_margin(params),
        cs_over_cb=params.cell_capacitance_f / params.bitline_capacitance_f,
    )


@dataclass(frozen=True)
class ScalingPoint:
    """One technology node of the scaling study."""

    scale: float
    cell_capacitance_f: float
    tra_margin: float
    two_row_margin: float
    tra_error_percent: float
    two_row_error_percent: float


def scaled_cell(
    scale: float, base: CellParameters | None = None
) -> CellParameters:
    """Cell parameters at a relative technology scale.

    Storage capacitance shrinks ~linearly with feature size (trench/
    stack height limits), while the bit line — whose capacitance is
    wire-dominated — shrinks more slowly (~sqrt of the scale).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    base = base or CellParameters()
    return replace(
        base,
        cell_capacitance_f=base.cell_capacitance_f * scale,
        bitline_capacitance_f=base.bitline_capacitance_f * scale**0.5,
    )


def scaling_study(
    scales: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4),
    variation_percent: float = 15.0,
    trials: int = 10_000,
    seed: int = 0x5CA1E,
) -> list[ScalingPoint]:
    """Error rates vs technology scale at a fixed variation level."""
    if not scales:
        raise ValueError("at least one scale is required")
    points = []
    for scale in scales:
        params = scaled_cell(scale)
        engine = MonteCarloSense(params=params, seed=seed)
        spec = VariationSpec(percent=variation_percent)
        tra = engine.run_tra(spec, trials)
        two_row = engine.run_two_row(spec, trials)
        points.append(
            ScalingPoint(
                scale=scale,
                cell_capacitance_f=params.cell_capacitance_f,
                tra_margin=tra_nominal_margin(params),
                two_row_margin=two_row_margin(params),
                tra_error_percent=tra.error_percent,
                two_row_error_percent=two_row.error_percent,
            )
        )
    return points
