"""Multi-row activation charge-sharing arithmetic.

This module answers the purely capacitive question at the heart of both
PIM-Assembler's two-row activation and Ambit's triple-row activation
(TRA): *when several cells dump their charge onto a shared node, what
voltage results?*

Two sharing topologies appear in the paper:

1. **Bit-line sharing** (used by TRA and by ordinary reads): the cells
   share charge with the half-Vdd-precharged bit line, so the result is

   ``V = (Cb * Vpre + sum(Cs_i * V_i)) / (Cb + sum(Cs_i))``

   The sense margin is the deviation of ``V`` from the SA reference
   (Vdd/2), which for TRA is small — roughly
   ``(Vdd/2) * Cs / (Cb + 3 Cs)`` — and is why TRA is the reliability
   bottleneck of prior processing-in-DRAM designs (Table I).

2. **Decoupled compute-node sharing** (PIM-Assembler's two-row scheme):
   the add-on sense amplifier connects the two activated compute-row
   cells to the inverter inputs through a node whose parasitic load is
   negligible next to the cell capacitors, so the shared voltage is the
   capacitance-weighted mean of the stored levels:

   ``V = sum(Cs_i * V_i) / sum(Cs_i)  ~=  n * Vdd / C``

   with ``n`` the number of 1-cells and ``C`` the number of unit
   capacitors — exactly the expression in Section II-A.  The resulting
   levels {0, Vdd/2, Vdd} sit a full Vdd/4 away from the shifted inverter
   thresholds, which is the source of the scheme's robustness advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dram.cell import CellParameters


@dataclass(frozen=True)
class ChargeShareResult:
    """Outcome of one charge-sharing event.

    Attributes:
        voltage: resulting node voltage, volts.
        ones: number of participating cells that stored logic 1.
        cells: number of participating cells.
        margin: distance from the nearest decision threshold the caller
            supplied, volts (``None`` when no threshold was supplied).
    """

    voltage: float
    ones: int
    cells: int
    margin: float | None = None

    def with_margin(self, thresholds: Sequence[float]) -> "ChargeShareResult":
        """Return a copy annotated with the minimum threshold distance."""
        if not thresholds:
            raise ValueError("thresholds must be non-empty")
        margin = min(abs(self.voltage - t) for t in thresholds)
        return ChargeShareResult(self.voltage, self.ones, self.cells, margin)


def share_voltage(
    cell_voltages: Sequence[float],
    cell_capacitances: Sequence[float],
    extra_capacitance: float = 0.0,
    extra_voltage: float = 0.0,
) -> float:
    """Capacitive charge-sharing among arbitrary nodes.

    Args:
        cell_voltages: pre-share voltage on each cell capacitor.
        cell_capacitances: capacitance of each cell (same length).
        extra_capacitance: an additional node (e.g. the bit line) that
            participates in the share.
        extra_voltage: that node's pre-share voltage (e.g. the precharge
            level).

    Returns:
        The common voltage after charge redistribution (charge
        conservation over ideal capacitors).
    """
    if len(cell_voltages) != len(cell_capacitances):
        raise ValueError("voltages and capacitances must align")
    if not cell_voltages and extra_capacitance == 0.0:
        raise ValueError("nothing to share")
    if any(c <= 0 for c in cell_capacitances) or extra_capacitance < 0:
        raise ValueError("capacitances must be positive")
    charge = extra_capacitance * extra_voltage
    total = extra_capacitance
    for v, c in zip(cell_voltages, cell_capacitances):
        charge += v * c
        total += c
    return charge / total


def two_row_share(
    di: int,
    dj: int,
    params: CellParameters | None = None,
    compute_node_capacitance: float = 0.0,
) -> ChargeShareResult:
    """PIM-Assembler's two-row activation onto the decoupled compute node.

    Args:
        di, dj: the logic values stored in compute rows ``x1`` and ``x2``.
        params: electrical constants (defaults are the 45 nm nominals).
        compute_node_capacitance: parasitic load of the add-on SA input
            node, farads.  The nominal design keeps this negligible; the
            variation study perturbs it.

    Returns:
        The shared voltage, nominally ``n * Vdd / 2`` for ``n`` stored 1s.
    """
    params = params or CellParameters()
    for bit in (di, dj):
        if bit not in (0, 1):
            raise ValueError("operand bits must be 0 or 1")
    cs = params.cell_capacitance_f
    voltage = share_voltage(
        [params.stored_voltage(di), params.stored_voltage(dj)],
        [cs, cs],
        extra_capacitance=compute_node_capacitance,
        extra_voltage=0.0,
    )
    return ChargeShareResult(voltage=voltage, ones=di + dj, cells=2)


def triple_row_share(
    bits: Sequence[int],
    params: CellParameters | None = None,
) -> ChargeShareResult:
    """Ambit-style triple-row activation onto the precharged bit line.

    Used by PIM-Assembler only for the carry (majority-of-3) step of
    in-memory addition; the resulting sense margin is the quantity the
    Table I reliability comparison is about.

    Args:
        bits: exactly three stored logic values.
        params: electrical constants.

    Returns:
        The bit-line voltage after the share.  Majority(bits) == 1 iff
        the voltage exceeds the Vdd/2 sense reference (nominally).
    """
    params = params or CellParameters()
    if len(bits) != 3:
        raise ValueError("TRA activates exactly three rows")
    if any(b not in (0, 1) for b in bits):
        raise ValueError("operand bits must be 0 or 1")
    cs = params.cell_capacitance_f
    voltage = share_voltage(
        [params.stored_voltage(b) for b in bits],
        [cs, cs, cs],
        extra_capacitance=params.bitline_capacitance_f,
        extra_voltage=params.precharge_voltage,
    )
    return ChargeShareResult(voltage=voltage, ones=sum(bits), cells=3)


def tra_nominal_margin(params: CellParameters | None = None) -> float:
    """Worst-case TRA sense margin (volts) over all 3-bit patterns.

    The tightest patterns are the 2-vs-1 splits; with ideal cells the
    margin is ``(Vdd/2 - 0) * Cs / (Cb + 3 Cs)`` on either side of the
    reference.  Retention derating makes the 1-heavy side slightly worse,
    which this function captures by evaluating all patterns.
    """
    params = params or CellParameters()
    reference = params.precharge_voltage
    margins = []
    for pattern in range(8):
        bits = [(pattern >> i) & 1 for i in range(3)]
        result = triple_row_share(bits, params)
        margins.append(abs(result.voltage - reference))
    return min(margins)


def two_row_nominal_levels(params: CellParameters | None = None) -> tuple[float, float, float]:
    """The three nominal compute-node levels (n = 0, 1, 2 stored ones)."""
    params = params or CellParameters()
    return (
        two_row_share(0, 0, params).voltage,
        two_row_share(1, 0, params).voltage,
        two_row_share(1, 1, params).voltage,
    )
