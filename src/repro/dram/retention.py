"""Data-retention modelling for long-resident PIM data structures.

A conventional DRAM row is rewritten constantly; PIM-Assembler's hash
table instead *resides* in the arrays for the whole assembly run
(tens of seconds), so retention behaviour matters in a way it does not
for a cache-like use.  This module models it:

* per-cell retention times follow the classic two-population model —
  a lognormal main population (seconds to minutes) plus a small
  "leaky" tail — and a cell loses its bit if it is not refreshed
  within its retention time;
* the refresh interval (tREFW, 64 ms nominal) bounds the unrefreshed
  window, so the per-cell upset probability per window is the tail
  mass of the retention distribution below tREFW;
* a *table upset* happens when any occupied cell of the k-mer table
  upsets during the residency.

:func:`residency_study` sweeps refresh intervals and reports upset
probabilities for a table of a given size and residency — showing the
safety margin of nominal refresh and how aggressive refresh-relaxation
schemes (a common DRAM power optimisation) would endanger a resident
PIM table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RetentionModel:
    """Two-population lognormal retention-time model.

    Attributes:
        main_median_s: median retention of the main population (64 s is
            a typical 45 nm-class figure; the 64 ms refresh window sits
            three orders of magnitude below it).
        main_sigma: lognormal shape of the main population.
        leaky_fraction: *residual* share of cells in the leaky tail —
            after manufacturer repair/remapping, what remains are the
            variable-retention-time (VRT) cells.
        leaky_median_s: median retention of the residual leaky cells.
        leaky_sigma: lognormal shape of the leaky population.
    """

    main_median_s: float = 64.0
    main_sigma: float = 0.4
    leaky_fraction: float = 2e-10
    leaky_median_s: float = 0.5
    leaky_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.main_median_s <= 0 or self.leaky_median_s <= 0:
            raise ValueError("medians must be positive")
        if self.main_sigma <= 0 or self.leaky_sigma <= 0:
            raise ValueError("sigmas must be positive")
        if not 0.0 <= self.leaky_fraction <= 1.0:
            raise ValueError("leaky_fraction must be within [0, 1]")

    def state_dict(self) -> dict:
        """JSON-serializable form (journalled with the integrity config)."""
        return {
            "main_median_s": self.main_median_s,
            "main_sigma": self.main_sigma,
            "leaky_fraction": self.leaky_fraction,
            "leaky_median_s": self.leaky_median_s,
            "leaky_sigma": self.leaky_sigma,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RetentionModel":
        return cls(
            main_median_s=float(state["main_median_s"]),
            main_sigma=float(state["main_sigma"]),
            leaky_fraction=float(state["leaky_fraction"]),
            leaky_median_s=float(state["leaky_median_s"]),
            leaky_sigma=float(state["leaky_sigma"]),
        )

    @staticmethod
    def _lognormal_cdf(x: float, median: float, sigma: float) -> float:
        if x <= 0:
            return 0.0
        z = (math.log(x) - math.log(median)) / (sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def upset_probability_per_window(self, refresh_interval_s: float) -> float:
        """P(cell retention < refresh window), mixed over populations."""
        if refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive")
        main = self._lognormal_cdf(
            refresh_interval_s, self.main_median_s, self.main_sigma
        )
        leaky = self._lognormal_cdf(
            refresh_interval_s, self.leaky_median_s, self.leaky_sigma
        )
        return (1.0 - self.leaky_fraction) * main + self.leaky_fraction * leaky

    def cell_failure_probability(
        self, refresh_interval_s: float, residency_s: float
    ) -> float:
        """P(one cell loses its bit during the residency).

        Retention is a per-cell property: a cell fails iff its
        retention time is below its unrefreshed exposure — the refresh
        window, capped by the residency itself for very short runs.
        """
        if refresh_interval_s <= 0 or residency_s <= 0:
            raise ValueError("intervals must be positive")
        exposure = min(refresh_interval_s, residency_s)
        return self.upset_probability_per_window(exposure)

    def table_upset_probability(
        self,
        table_bits: int,
        residency_s: float,
        refresh_interval_s: float = 0.064,
    ) -> float:
        """P(any occupied bit upsets while the table is resident)."""
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        p = self.cell_failure_probability(refresh_interval_s, residency_s)
        if p >= 1.0:
            return 1.0
        # log-space survival to avoid underflow at tiny probabilities
        return 1.0 - math.exp(table_bits * math.log1p(-p))


@dataclass(frozen=True)
class ResidencyPoint:
    """One refresh-interval point of the residency study."""

    refresh_interval_s: float
    per_bit_per_window: float
    table_upset_probability: float
    expected_upsets: float

    @property
    def needs_protection(self) -> bool:
        """True when the run expects at least one upset — the point at
        which a resident table needs ECC or per-run scrubbing."""
        return self.expected_upsets >= 1.0


def residency_study(
    table_bits: int = 88_000_000 * 34,  # chr14 table: keys + counters
    residency_s: float = 25.0,  # the P-A chr14 run time
    refresh_intervals_s: tuple[float, ...] = (0.064, 0.256, 1.024, 4.096),
    model: RetentionModel | None = None,
) -> list[ResidencyPoint]:
    """Upset probability vs refresh interval for a resident table.

    The expected shape (asserted by tests): negligible risk at the
    nominal 64 ms window, rising through relaxed-refresh settings, and
    effectively certain corruption once the window approaches the leaky
    population's retention.
    """
    model = model or RetentionModel()
    points = []
    for interval in refresh_intervals_s:
        per_bit = model.cell_failure_probability(interval, residency_s)
        points.append(
            ResidencyPoint(
                refresh_interval_s=interval,
                per_bit_per_window=per_bit,
                table_upset_probability=model.table_upset_probability(
                    table_bits, residency_s, interval
                ),
                expected_upsets=table_bits * per_bit,
            )
        )
    return points
