"""Analog-behavioural DRAM substrate for PIM-Assembler.

This package models the *electrical* layer of the PIM-Assembler platform:
DRAM cells, bit-line charge sharing, the reconfigurable sense amplifier's
shifted-VTC inverters, process variation, and transient waveforms.

It intentionally knows nothing about genome assembly or even about memory
commands; it answers questions of the form "if these cells are activated
onto this bit line, what voltage does the sense amplifier see, and which
logic value does it resolve to?".  The architectural layer
(:mod:`repro.core`) builds the functional simulator on top of the *ideal*
answers, while the reliability study (Table I of the paper) re-asks the
same questions under Monte-Carlo component variation.

The model corresponds to Section II-A and Figures 2-4 of the paper; its
fidelity substitutions relative to the authors' Cadence Spectre + 45 nm
NCSU PDK setup are documented in ``DESIGN.md``.
"""

from repro.dram.geometry import (
    SubArrayGeometry,
    MatGeometry,
    BankGeometry,
    DeviceGeometry,
    default_geometry,
)
from repro.dram.cell import CellParameters, NoiseSources
from repro.dram.charge_sharing import (
    share_voltage,
    two_row_share,
    triple_row_share,
    ChargeShareResult,
)
from repro.dram.sense_voltage import (
    InverterVTC,
    ReconfigurableSenseVoltages,
    SenseDecision,
)
from repro.dram.variation import (
    VariationSpec,
    MonteCarloSense,
    VariationResult,
    run_variation_table,
)
from repro.dram.margins import (
    MarginReport,
    ScalingPoint,
    margin_report,
    scaling_study,
)
from repro.dram.retention import (
    ResidencyPoint,
    RetentionModel,
    residency_study,
)
from repro.dram.waveform import TransientWaveform, xnor2_transient

__all__ = [
    "SubArrayGeometry",
    "MatGeometry",
    "BankGeometry",
    "DeviceGeometry",
    "default_geometry",
    "CellParameters",
    "NoiseSources",
    "share_voltage",
    "two_row_share",
    "triple_row_share",
    "ChargeShareResult",
    "InverterVTC",
    "ReconfigurableSenseVoltages",
    "SenseDecision",
    "VariationSpec",
    "MonteCarloSense",
    "VariationResult",
    "run_variation_table",
    "TransientWaveform",
    "xnor2_transient",
    "MarginReport",
    "ScalingPoint",
    "margin_report",
    "scaling_study",
    "ResidencyPoint",
    "RetentionModel",
    "residency_study",
]
