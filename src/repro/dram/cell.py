"""DRAM cell electrical parameters and noise-source inventory.

Nominal values follow the Rambus DRAM power model (the source the paper
cites for its Monte-Carlo cell parameters) scaled to a 45 nm-class
commodity DRAM:

* cell storage capacitance ``Cs`` ~ 22 fF,
* bit-line capacitance ``Cb`` ~ 85 fF,
* supply ``Vdd`` = 1.0 V (the NCSU FreePDK45 nominal core supply used for
  the sense-amplifier add-on circuits).

The :class:`NoiseSources` dataclass names the parasitic couplings of the
paper's Fig. 4 — word-line-to-bit-line coupling ``Cwbl``, bit-line to
substrate ``Cs`` (the figure's glossary re-uses the symbol), and bit-line
to adjacent bit-line cross-talk ``Ccross`` — which enter the variation
study as additive voltage disturbances on the sensed level.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CellParameters:
    """Electrical constants of a DRAM cell / bit-line pair.

    Attributes:
        cell_capacitance_f: storage capacitor, farads.
        bitline_capacitance_f: bit-line parasitic capacitance, farads.
        vdd: supply voltage, volts.
        precharge_fraction: bit-line precharge level as a fraction of Vdd
            (standard half-Vdd precharge).
        retention_degradation: fraction of a stored ``1``'s charge lost to
            leakage by the time it is sensed (worst case within the
            refresh window).  Applied as a derating on the stored level.
    """

    cell_capacitance_f: float = 22e-15
    bitline_capacitance_f: float = 85e-15
    vdd: float = 1.0
    precharge_fraction: float = 0.5
    retention_degradation: float = 0.02

    def __post_init__(self) -> None:
        if self.cell_capacitance_f <= 0 or self.bitline_capacitance_f <= 0:
            raise ValueError("capacitances must be positive")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if not 0 <= self.precharge_fraction <= 1:
            raise ValueError("precharge_fraction must be within [0, 1]")
        if not 0 <= self.retention_degradation < 1:
            raise ValueError("retention_degradation must be within [0, 1)")

    @property
    def precharge_voltage(self) -> float:
        return self.precharge_fraction * self.vdd

    def stored_voltage(self, bit: int) -> float:
        """Voltage on the cell capacitor for a stored logic value.

        A stored ``1`` is derated by ``retention_degradation`` to model
        leakage between the last refresh and the activation that senses
        the cell.
        """
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if bit == 0:
            return 0.0
        return self.vdd * (1.0 - self.retention_degradation)

    @property
    def transfer_ratio(self) -> float:
        """Single-cell charge-transfer ratio Cs / (Cs + Cb).

        This is the classic DRAM sensing figure of merit: the fraction of
        the cell's full swing that appears on the bit line after a normal
        one-row activation.
        """
        cs = self.cell_capacitance_f
        return cs / (cs + self.bitline_capacitance_f)


@dataclass(frozen=True)
class NoiseSources:
    """Parasitic couplings of the paper's Fig. 4, as voltage disturbances.

    Each value is the worst-case disturbance amplitude injected on the
    sensed bit-line voltage, expressed as a fraction of Vdd.  They are
    treated as independent zero-mean contributions in the Monte-Carlo
    study (:mod:`repro.dram.variation`).

    Attributes:
        wordline_bitline: WL-BL coupling (``Cwbl``) kick during activation.
        bitline_substrate: BL-substrate capacitance mismatch effect.
        bitline_crosstalk: adjacent-BL cross-talk (``Ccross``) while the
            neighbouring column swings rail-to-rail.
    """

    wordline_bitline: float = 0.01
    bitline_substrate: float = 0.005
    bitline_crosstalk: float = 0.01

    def __post_init__(self) -> None:
        for name in ("wordline_bitline", "bitline_substrate", "bitline_crosstalk"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_rms(self) -> float:
        """Root-sum-square of the independent disturbance amplitudes."""
        return (
            self.wordline_bitline**2
            + self.bitline_substrate**2
            + self.bitline_crosstalk**2
        ) ** 0.5
