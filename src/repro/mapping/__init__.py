"""Data mapping and partitioning (paper Section III).

* :mod:`~repro.mapping.kmer_layout` — the Fig. 6 correlated hash-table
  layout (k-mer / value / temp regions of one sub-array).
* :mod:`~repro.mapping.graph_partition` — interval-block partitioning
  of the de Bruijn graph into M^2 blocks across chips.
* :mod:`~repro.mapping.allocation` — the Ns = ceil(N/f) sub-array
  allocation rule.
* :mod:`~repro.mapping.adjacency` — adjacency-matrix mapping and the
  carry-save in-memory degree computation of Fig. 8.
* :mod:`~repro.mapping.parallelism` — the Pd replication model of
  Fig. 10.
"""

from repro.mapping.adjacency import (
    adjacency_rows_for_chunk,
    degree_vectors_pim,
    planes_needed,
    wallace_column_sum,
)
from repro.mapping.allocation import (
    AllocationPlan,
    chips_needed,
    plan_allocation,
    subarrays_for_vertices,
    vertices_per_subarray,
)
from repro.mapping.graph_partition import BlockId, IntervalBlockPartition
from repro.mapping.kmer_layout import (
    COUNTER_BITS,
    KmerLayout,
    paper_layout,
    scaled_layout,
)
from repro.mapping.parallelism import PAPER_PD_VALUES, ParallelismModel

__all__ = [
    "adjacency_rows_for_chunk",
    "degree_vectors_pim",
    "planes_needed",
    "wallace_column_sum",
    "AllocationPlan",
    "chips_needed",
    "plan_allocation",
    "subarrays_for_vertices",
    "vertices_per_subarray",
    "BlockId",
    "IntervalBlockPartition",
    "COUNTER_BITS",
    "KmerLayout",
    "paper_layout",
    "scaled_layout",
    "PAPER_PD_VALUES",
    "ParallelismModel",
]
