"""Correlated data partitioning / mapping for the hash table (Fig. 6).

The paper's layout stores *correlated regions* of the k-mer table in
the same sub-array so that a query is answered entirely locally:

* a **k-mer region** (980 rows in the 1024-row sub-array) — one k-mer
  per row, 2 bits per base, up to 128 bp per 256-column row;
* a **value region** (32 rows) — the frequency counters;
* a **temp region** (8 rows) — incoming queries are first written here
  and then compared in parallel against stored k-mer rows;
* the compute rows (x1..x8) behind the modified decoder.

With 32 value rows x 256 columns = 8192 bits for up to 980 counters the
counters are 8-bit fields packed 32 per row — this module owns that
arithmetic (slot -> (row, bit-offset)) and scales the same proportions
down to test-sized sub-arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import SubArrayGeometry

#: Counter width in the value region (32 rows x 256 b / 980 slots -> 8 b).
COUNTER_BITS: int = 8

#: Row budgets of the paper's 1024-row sub-array.
PAPER_KMER_ROWS: int = 980
PAPER_VALUE_ROWS: int = 32
PAPER_TEMP_ROWS: int = 8


@dataclass(frozen=True)
class KmerLayout:
    """Row map of one hash-table sub-array.

    Row indices are physical data-row numbers within the sub-array:
    ``[0, kmer_rows)`` k-mers, ``[kmer_rows, kmer_rows+value_rows)``
    counters, then the temp rows.
    """

    geometry: SubArrayGeometry
    kmer_rows: int
    value_rows: int
    temp_rows: int
    counter_bits: int = COUNTER_BITS

    def __post_init__(self) -> None:
        if min(self.kmer_rows, self.value_rows, self.temp_rows) <= 0:
            raise ValueError("all regions need at least one row")
        total = self.kmer_rows + self.value_rows + self.temp_rows
        if total > self.geometry.data_rows:
            raise ValueError(
                f"layout needs {total} data rows, sub-array has "
                f"{self.geometry.data_rows}"
            )
        if self.counter_bits <= 0 or self.geometry.cols % self.counter_bits:
            raise ValueError("counter_bits must divide the row width")
        if self.value_capacity < self.kmer_rows:
            raise ValueError(
                f"value region holds {self.value_capacity} counters but the "
                f"k-mer region has {self.kmer_rows} slots"
            )

    # ----- capacities --------------------------------------------------------

    @property
    def counters_per_row(self) -> int:
        return self.geometry.cols // self.counter_bits

    @property
    def value_capacity(self) -> int:
        return self.value_rows * self.counters_per_row

    @property
    def max_kmer_bases(self) -> int:
        """Longest k-mer one row can hold (128 bp at 256 columns)."""
        return self.geometry.cols // 2

    @property
    def counter_max(self) -> int:
        """Largest representable frequency (saturating counters)."""
        return (1 << self.counter_bits) - 1

    # ----- row addressing ---------------------------------------------------------

    def kmer_row(self, slot: int) -> int:
        if not 0 <= slot < self.kmer_rows:
            raise IndexError(f"k-mer slot {slot} out of 0..{self.kmer_rows - 1}")
        return slot

    @property
    def value_base(self) -> int:
        return self.kmer_rows

    @property
    def temp_base(self) -> int:
        return self.kmer_rows + self.value_rows

    def temp_row(self, index: int = 0) -> int:
        if not 0 <= index < self.temp_rows:
            raise IndexError(f"temp row {index} out of 0..{self.temp_rows - 1}")
        return self.temp_base + index

    def value_position(self, slot: int) -> tuple[int, int]:
        """(physical row, starting bit column) of a slot's counter."""
        if not 0 <= slot < self.kmer_rows:
            raise IndexError(f"k-mer slot {slot} out of 0..{self.kmer_rows - 1}")
        row = self.value_base + slot // self.counters_per_row
        bit = (slot % self.counters_per_row) * self.counter_bits
        return row, bit


def paper_layout(geometry: SubArrayGeometry | None = None) -> KmerLayout:
    """The exact Fig. 6 layout for the 1024x256 sub-array.

    Note an internal inconsistency in the paper: Fig. 1 shows 8 compute
    rows, but Fig. 6's row budget (980 k-mer + 32 value + 8 temp + 4
    compute = 1024) only balances with 4.  This function follows Fig. 6
    (compute_rows=4) so the stated region sizes hold verbatim; the
    scaled layout used by the functional simulator keeps Fig. 1's 8
    compute rows and shrinks the temp region instead.
    """
    geometry = geometry or SubArrayGeometry(compute_rows=4)
    return KmerLayout(
        geometry=geometry,
        kmer_rows=PAPER_KMER_ROWS,
        value_rows=PAPER_VALUE_ROWS,
        temp_rows=PAPER_TEMP_ROWS,
    )


def scaled_layout(geometry: SubArrayGeometry) -> KmerLayout:
    """Proportionally scale the Fig. 6 layout to any sub-array size.

    Keeps one temp row minimum and sizes the value region so every
    k-mer slot has a counter, maximising the k-mer region with the
    remaining rows — the same optimisation objective as the paper's
    mapping framework.
    """
    counters_per_row = geometry.cols // COUNTER_BITS
    if counters_per_row == 0:
        raise ValueError("sub-array too narrow for 8-bit counters")
    temp_rows = max(1, geometry.data_rows // 128)
    available = geometry.data_rows - temp_rows
    # kmer_rows + ceil(kmer_rows / counters_per_row) <= available
    kmer_rows = (available * counters_per_row) // (counters_per_row + 1)
    value_rows = -(-kmer_rows // counters_per_row)
    while kmer_rows + value_rows + temp_rows > geometry.data_rows:
        kmer_rows -= 1
        value_rows = -(-kmer_rows // counters_per_row)
    if kmer_rows <= 0:
        raise ValueError("sub-array too small for the hash-table layout")
    return KmerLayout(
        geometry=geometry,
        kmer_rows=kmer_rows,
        value_rows=value_rows,
        temp_rows=temp_rows,
    )
