"""Parallelism-degree (Pd) model (paper Fig. 10).

"We define a parallelism degree (Pd), i.e. the number of replicated
sub-arrays to increase the performance ... the larger Pd is, the
smaller delay and higher power consumption ... we determine the optimum
performance of PIM-Assembler, where Pd ~= 2."

Replicating a function over Pd sub-arrays divides the serial scan work
by ~Pd (with a sub-linear efficiency loss from replication/merge
traffic) while multiplying the active-array dynamic power by Pd.  The
knee emerges because the delay saving flattens while power keeps
climbing linearly — this module provides the delay/power scaling the
trade-off bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pd values the paper sweeps.
PAPER_PD_VALUES: tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class ParallelismModel:
    """Delay / power scaling with the parallelism degree.

    Attributes:
        replication_overhead: fraction of extra work per replica
            (duplicate temp writes, result merging and bank-bus
            contention between replicas).  CAL: 0.42 places the
            energy-delay optimum at Pd ~= 2 as in Fig. 10.
        power_per_replica_w: dynamic power added by each extra active
            replica set, watts.
        base_power_w: platform power at Pd = 1.
    """

    replication_overhead: float = 0.42
    power_per_replica_w: float = 26.0
    base_power_w: float = 38.4

    def __post_init__(self) -> None:
        if self.replication_overhead < 0:
            raise ValueError("replication_overhead must be non-negative")
        if self.power_per_replica_w < 0 or self.base_power_w <= 0:
            raise ValueError("power terms must be positive")

    def speedup(self, pd: int) -> float:
        """Delay reduction factor at parallelism degree ``pd``."""
        if pd <= 0:
            raise ValueError("pd must be positive")
        return pd / (1.0 + self.replication_overhead * (pd - 1))

    def delay(self, base_delay_s: float, pd: int) -> float:
        if base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        return base_delay_s / self.speedup(pd)

    def power(self, pd: int) -> float:
        if pd <= 0:
            raise ValueError("pd must be positive")
        return self.base_power_w + self.power_per_replica_w * (pd - 1)

    def energy_delay_product(self, base_delay_s: float, pd: int) -> float:
        """EDP = power x delay^2 — the figure of merit whose minimum is
        the paper's optimum Pd."""
        d = self.delay(base_delay_s, pd)
        return self.power(pd) * d * d

    def optimum_pd(
        self, base_delay_s: float, candidates: tuple[int, ...] = PAPER_PD_VALUES
    ) -> int:
        """Pd minimising the energy-delay product over the candidates."""
        if not candidates:
            raise ValueError("candidates must be non-empty")
        return min(
            candidates, key=lambda pd: self.energy_delay_product(base_delay_s, pd)
        )
