"""Interval-block graph partitioning (paper Section III, Fig. 8 stage 1).

"We adopt interval-block partitioning ... We utilise [a] hash-based
method to divide the vertices into M intervals and then divide edges
into M^2 blocks.  Then each block is allocated to a chip and mapped to
its sub-arrays."

:class:`IntervalBlockPartition` implements that: vertex -> interval by
the same multiplicative hash the hash table uses; edge (u, v) -> block
(interval(u), interval(v)); blocks are assigned to chips round-robin
along the destination-major order of the paper's figure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.mapping.hashing import kmer_partition

if TYPE_CHECKING:  # import cycle: the assembly package uses mapping
    from repro.assembly.debruijn import DeBruijnGraph, Edge


@dataclass(frozen=True)
class BlockId:
    """One edge block: (source interval, destination interval)."""

    source_interval: int
    destination_interval: int

    def __post_init__(self) -> None:
        if self.source_interval < 0 or self.destination_interval < 0:
            raise ValueError("interval indices must be non-negative")


@dataclass
class IntervalBlockPartition:
    """Vertex intervals and M^2 edge blocks of a de Bruijn graph.

    Args:
        intervals: M, the number of vertex intervals (= chips in the
            paper's allocation).
    """

    intervals: int
    _edges: dict[BlockId, list[Edge]] = field(default_factory=dict)
    _vertex_counts: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if self.intervals <= 0:
            raise ValueError("intervals must be positive")

    # ----- construction -------------------------------------------------------

    def vertex_interval(self, node: int) -> int:
        """Interval of a vertex (hash-based, uniform)."""
        return kmer_partition(node, self.intervals)

    def add_edge(self, edge: Edge) -> BlockId:
        block = BlockId(
            source_interval=self.vertex_interval(edge.source),
            destination_interval=self.vertex_interval(edge.target),
        )
        self._edges.setdefault(block, []).append(edge)
        return block

    @classmethod
    def from_graph(cls, graph: DeBruijnGraph, intervals: int) -> "IntervalBlockPartition":
        partition = cls(intervals=intervals)
        for node in graph.nodes():
            partition._vertex_counts[partition.vertex_interval(node)] += 1
        for edge in graph.edges():
            partition.add_edge(edge)
        return partition

    # ----- queries ---------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """M^2 — including empty blocks."""
        return self.intervals * self.intervals

    def block_edges(self, block: BlockId) -> list[Edge]:
        return list(self._edges.get(block, []))

    def nonempty_blocks(self) -> list[BlockId]:
        return sorted(
            self._edges,
            key=lambda b: (b.destination_interval, b.source_interval),
        )

    def interval_sizes(self) -> list[int]:
        """Vertices per interval (load-balance check)."""
        return [self._vertex_counts.get(i, 0) for i in range(self.intervals)]

    def edge_block_sizes(self) -> dict[BlockId, int]:
        return {block: len(edges) for block, edges in self._edges.items()}

    # ----- allocation (stage 2 of Fig. 8) --------------------------------------------

    def chip_assignment(self, chips: int | None = None) -> dict[BlockId, int]:
        """Assign blocks to chips.

        The paper allocates along destination intervals (each chip owns
        a destination stripe so the degree reduction of its vertices is
        local); blocks sharing a destination interval land on the same
        chip, destination intervals round-robin over chips.
        """
        if chips is None:
            chips = self.intervals
        if chips <= 0:
            raise ValueError("chips must be positive")
        return {
            block: block.destination_interval % chips
            for block in self.nonempty_blocks()
        }

    def load_balance(self, chips: int | None = None) -> list[int]:
        """Edges per chip under :meth:`chip_assignment`."""
        if chips is None:
            chips = self.intervals
        if chips <= 0:
            raise ValueError("chips must be positive")
        loads = [0] * chips
        assignment = self.chip_assignment(chips)
        for block, chip in assignment.items():
            loads[chip] += len(self._edges[block])
        return loads
