"""Sub-array allocation for graph processing (paper Section III).

"Having an N-vertex sub-graph with Ns activated sub-arrays
(size = a x b), each sub-array can process n vertices
(n <= f | n in N, f = min(a, b)).  So, the number of sub-arrays for
processing an N-vertex sub-graph can be formulated as Ns = ceil(N / f)."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.geometry import DeviceGeometry, SubArrayGeometry
from repro.errors import CapacityError


def vertices_per_subarray(geometry: SubArrayGeometry) -> int:
    """f = min(a, b): the vertex capacity of one sub-array."""
    return min(geometry.data_rows, geometry.cols)


def subarrays_for_vertices(n_vertices: int, geometry: SubArrayGeometry) -> int:
    """Ns = ceil(N / f)."""
    if n_vertices < 0:
        raise ValueError("n_vertices must be non-negative")
    if n_vertices == 0:
        return 0
    return math.ceil(n_vertices / vertices_per_subarray(geometry))


@dataclass(frozen=True)
class AllocationPlan:
    """Where an N-vertex sub-graph lands on a device."""

    n_vertices: int
    vertices_per_subarray: int
    subarrays_needed: int
    subarrays_available: int
    #: sub-arrays the resilience engine retired (excluded from available)
    subarrays_quarantined: int = 0

    @property
    def feasible(self) -> bool:
        return self.subarrays_needed <= self.subarrays_available

    @property
    def utilisation(self) -> float:
        """Fraction of the last sub-array's vertex slots actually used,
        averaged over the allocation (1.0 = perfectly packed)."""
        if self.subarrays_needed == 0:
            return 0.0
        capacity = self.subarrays_needed * self.vertices_per_subarray
        return self.n_vertices / capacity


def plan_allocation(
    n_vertices: int,
    device: DeviceGeometry,
    quarantined: int = 0,
) -> AllocationPlan:
    """Allocate an N-vertex sub-graph onto a device's sub-arrays.

    Args:
        quarantined: sub-arrays retired by the resilience engine
            (graceful degradation: the planner simply has fewer to
            hand out — e.g. ``len(pim.resilience.quarantined)``).

    Raises:
        CapacityError: when the graph exceeds the device's *usable*
            sub-arrays (callers should partition across more chips
            first — see :mod:`repro.mapping.graph_partition`).
    """
    if quarantined < 0:
        raise CapacityError("quarantined count must be non-negative")
    sub = device.bank.mat.subarray
    f = vertices_per_subarray(sub)
    needed = subarrays_for_vertices(n_vertices, sub)
    available = device.num_subarrays - quarantined
    if available < 0:
        raise CapacityError(
            f"{quarantined} quarantined sub-arrays exceed the device's "
            f"{device.num_subarrays}"
        )
    plan = AllocationPlan(
        n_vertices=n_vertices,
        vertices_per_subarray=f,
        subarrays_needed=needed,
        subarrays_available=available,
        subarrays_quarantined=quarantined,
    )
    if not plan.feasible:
        raise CapacityError(
            f"sub-graph of {n_vertices} vertices needs {needed} sub-arrays; "
            f"device has {available} usable ({quarantined} quarantined) — "
            f"partition over more chips"
        )
    return plan


def chips_needed(n_vertices: int, device: DeviceGeometry) -> int:
    """Minimum chips so every per-chip sub-graph fits its sub-arrays."""
    if n_vertices <= 0:
        return 1
    sub = device.bank.mat.subarray
    per_chip = device.num_subarrays * vertices_per_subarray(sub)
    return max(1, math.ceil(n_vertices / per_chip))


def host_footprint_bytes(
    n_subarrays: int, geometry: SubArrayGeometry
) -> int:
    """Host bytes the packed store needs for ``n_subarrays`` slots.

    The simulator mirrors sub-array bits 64 columns per uint64 word
    (:mod:`repro.core.storage`), so an allocation of ``Ns`` sub-arrays
    costs ``Ns * rows * ceil(cols / 64) * 8`` host bytes — 1/8 of the
    retired uint8-per-bit representation for word-aligned rows.
    Planners can use this to bound a job's working set before
    instantiating anything.
    """
    from repro.core.storage import words_for

    if n_subarrays < 0:
        raise ValueError("n_subarrays must be non-negative")
    return n_subarrays * geometry.rows * words_for(geometry.cols) * 8
