"""Hash-based partitioning shared by the hash table and graph mapping.

Both the correlated hash-table partitioning (Fig. 6) and the
interval-block graph partitioning (Fig. 8) spread keys uniformly with
the same multiplicative hash; keeping it in one place guarantees the
two stages agree on locality.
"""

from __future__ import annotations

import numpy as np

#: 64-bit golden-ratio multiplier (Knuth's multiplicative hashing).
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


def mix64(value: int) -> int:
    """Scramble a packed k-mer / node key into 64 well-mixed bits."""
    if value < 0:
        raise ValueError("keys must be non-negative")
    return (value * _GOLDEN) & _MASK64


def kmer_partition(packed: int, partitions: int) -> int:
    """Uniform partition index of a packed key.

    The high 32 bits of the mixed key are used, as the low bits of a
    multiplicative hash are the weakest.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    return int(mix64(packed) >> 32) % partitions


def kmer_partition_array(packed: np.ndarray, partitions: int) -> np.ndarray:
    """Vectorised :func:`kmer_partition` over a uint64 key array.

    Uses NumPy's wrap-around uint64 multiply, which matches the masked
    Python-int arithmetic of :func:`mix64` exactly.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    keys = np.ascontiguousarray(packed, dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = keys * np.uint64(_GOLDEN)
    return ((mixed >> np.uint64(32)) % np.uint64(partitions)).astype(np.int64)
