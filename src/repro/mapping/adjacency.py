"""Adjacency-matrix mapping and bulk degree computation (paper Fig. 8).

The traversal stage needs every vertex's in/out degree.  The paper maps
the (sub-)graph's adjacency matrix onto consecutive sub-array rows and
sums them with parallel in-memory addition: "PIM-Assembler takes every
three rows to perform a parallel in-memory addition ... results written
back to the reserved space ... then multi-bit addition of resultant
data ... concluded after 2 x m cycles".

That is a carry-save (Wallace) reduction in bit-plane space:

* every adjacency row is a weight-0 bit plane of column-wise partial
  sums;
* a 3:2 compression turns three weight-w planes into one weight-w sum
  plane and one weight-(w+1) carry plane (:meth:`Controller.compress_3to2`);
* when at most two planes remain per weight, a final bit-serial ripple
  add (2 cycles/bit) produces the degree vector.

:func:`wallace_column_sum` implements exactly that schedule on the
functional simulator; :func:`degree_vectors_pim` applies it to a de
Bruijn graph chunk by chunk (each chunk covers up to one row width of
vertices, the ``n <= f = min(a, b)`` allocation rule of Section III).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Sequence

import numpy as np

from typing import TYPE_CHECKING

from repro.core.isa import RowAddress
from repro.errors import AllocationError
from repro.runtime.watchdog import checkpoint

if TYPE_CHECKING:  # import cycle: assembly.pipeline uses this module
    from repro.assembly.debruijn import DeBruijnGraph
from repro.core.platform import PimAssembler


class _ScratchRows:
    """Free-list of physical data rows inside one scratch sub-array."""

    def __init__(self, pim: PimAssembler, subarray_key: tuple[int, int, int]) -> None:
        self.pim = pim
        self.key = subarray_key
        sub = pim.device.subarray_at(subarray_key)
        self._free = list(range(sub.geometry.data_rows - 1, -1, -1))

    def take(self) -> RowAddress:
        if not self._free:
            raise AllocationError(f"scratch sub-array {self.key} exhausted")
        bank, mat, sub = self.key
        return RowAddress(bank=bank, mat=mat, subarray=sub, row=self._free.pop())

    def give(self, address: RowAddress) -> None:
        self._free.append(address.row)


def wallace_column_sum(
    pim: PimAssembler,
    rows: Sequence[np.ndarray],
    subarray_key: tuple[int, int, int] = (0, 0, 0),
    engine: str = "scalar",
) -> np.ndarray:
    """Column-wise sum of many 0/1 rows via in-memory carry-save adds.

    Args:
        pim: the platform (a scratch sub-array is used for all work).
        rows: bit vectors (each at most one row wide).
        subarray_key: which sub-array to compute in.
        engine: ``"scalar"`` executes every compression through the
            controller; ``"bulk"`` computes the sum as one bit-plane
            expression and charges the identical command counts in one
            batch (falls back to scalar under live sum/TRA fault
            rates, whose per-op draw order is part of the contract).

    Returns:
        int64 vector of per-column sums (width = row width).
    """
    if engine not in ("scalar", "bulk"):
        raise ValueError("engine must be 'scalar' or 'bulk'")
    if not rows:
        raise ValueError("need at least one row")
    if engine == "bulk":
        return _wallace_column_sum_bulk(pim, rows, subarray_key)
    scratch = _ScratchRows(pim, subarray_key)
    ctrl = pim.controller
    width = pim.row_bits

    # Stage the input rows as weight-0 planes.
    buckets: dict[int, list[RowAddress]] = defaultdict(list)
    for bits in rows:
        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size > width:
            raise ValueError(f"row of {arr.size} bits exceeds width {width}")
        if arr.size < width:
            arr = np.pad(arr, (0, width - arr.size))
        addr = scratch.take()
        ctrl.write_row(addr, arr)
        buckets[0].append(addr)

    # Carry-save reduction: 3 planes of weight w -> sum(w) + carry(w+1).
    changed = True
    while changed:
        changed = False
        for weight in sorted(buckets):
            while len(buckets[weight]) >= 3:
                checkpoint()  # per-compression cancellation point
                r1 = buckets[weight].pop()
                r2 = buckets[weight].pop()
                r3 = buckets[weight].pop()
                sum_row = scratch.take()
                carry_row = scratch.take()
                ctrl.compress_3to2(r1, r2, r3, sum_row, carry_row)
                for r in (r1, r2, r3):
                    scratch.give(r)
                buckets[weight].append(sum_row)
                buckets[weight + 1].append(carry_row)
                changed = True

    # At most two planes per weight remain: form two words and ripple-add.
    max_weight = max(buckets)
    bits_needed = max_weight + 1
    zero = np.zeros(width, dtype=np.uint8)

    def plane_or_zero(weight: int, index: int) -> RowAddress:
        planes = buckets.get(weight, [])
        if index < len(planes):
            return planes[index]
        addr = scratch.take()
        ctrl.write_row(addr, zero)
        return addr

    a_planes = [plane_or_zero(w, 0) for w in range(bits_needed)]
    b_planes = [plane_or_zero(w, 1) for w in range(bits_needed)]
    sum_planes = [scratch.take() for _ in range(bits_needed)]
    carry_row = scratch.take()
    ctrl.ripple_add(a_planes, b_planes, sum_planes, carry_row)

    # Read the result back (sum planes LSB-first plus the final carry).
    total = np.zeros(width, dtype=np.int64)
    for i, plane in enumerate(sum_planes):
        total += ctrl.read_row(plane).astype(np.int64) << i
    total += ctrl.read_row(carry_row).astype(np.int64) << bits_needed
    return total


def _wallace_schedule(n_rows: int) -> tuple[int, int, int]:
    """(compressions, result bits, zero planes) of the scalar schedule.

    Replays :func:`wallace_column_sum`'s control flow over plane
    *counts* only, so the bulk path can charge the exact command
    counts the scalar reduction issues without touching the device.
    """
    counts: dict[int, int] = {0: n_rows}
    compressions = 0
    changed = True
    while changed:
        changed = False
        for weight in sorted(counts):
            while counts[weight] >= 3:
                counts[weight] -= 2  # three planes in, one sum out
                counts[weight + 1] = counts.get(weight + 1, 0) + 1
                compressions += 1
                changed = True
    bits_needed = max(counts) + 1
    zero_planes = sum(2 - counts.get(w, 0) for w in range(bits_needed))
    return compressions, bits_needed, zero_planes


def _wallace_column_sum_bulk(
    pim: PimAssembler,
    rows: Sequence[np.ndarray],
    subarray_key: tuple[int, int, int],
) -> np.ndarray:
    """Bulk bit-plane evaluation of :func:`wallace_column_sum`.

    The column sums are one NumPy reduction; the ledger is charged the
    scalar schedule's exact command and verify counts as one batch.
    The scratch sub-array's transient row contents are not replayed
    (the scalar path overwrites them freely and nothing reads them
    back); runs with live sum/TRA fault rates use the scalar path so
    the RNG stream stays per-op exact.
    """
    from repro.core.bitplane import BulkEngine

    ctrl = pim.controller
    faults = ctrl.faults
    if (
        faults is not None
        and faults.enabled
        and (faults.sum_rate > 0.0 or faults.tra_rate > 0.0)
    ):
        return wallace_column_sum(pim, rows, subarray_key, engine="scalar")

    checkpoint()  # per-reduction cancellation point (bulk path)
    width = pim.row_bits
    staged = []
    for bits in rows:
        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size > width:
            raise ValueError(f"row of {arr.size} bits exceeds width {width}")
        if arr.size < width:
            arr = np.pad(arr, (0, width - arr.size))
        staged.append(arr)
    total = np.stack(staged).astype(np.int64).sum(axis=0)

    compressions, bits_needed, zero_planes = _wallace_schedule(len(staged))
    engine = BulkEngine(pim)
    sched = engine.scheduler
    sched.charge("MEM_WR", subarray_key, len(staged) + zero_planes)
    sched.charge("LATCH_LD", subarray_key, compressions)
    # scalar equivalence: the final ripple_add zeroes its carry row
    # with one charged AAP (RowClone off the constant row)
    sched.charge("AAP1", subarray_key, 1)
    sched.fused_add(subarray_key, compressions + bits_needed)
    sched.charge("MEM_RD", subarray_key, bits_needed + 1)
    if ctrl._verifying() is not None:
        engine.charge_verify(2 * (compressions + bits_needed))
    engine.flush()
    return total


def adjacency_rows_for_chunk(
    graph: DeBruijnGraph,
    chunk_nodes: Sequence[int],
    direction: str = "in",
) -> list[np.ndarray]:
    """Build the 0/1 adjacency rows whose column sum is a degree vector.

    ``direction="in"``: one row per *source* vertex with a 1 in column
    ``j`` when an edge points to ``chunk_nodes[j]``; the column sum is
    the chunk's in-degree vector.  ``direction="out"``: one row per
    *target* with 1s at its in-neighbours among the chunk — the column
    sum is the out-degree vector.
    """
    if direction not in ("in", "out"):
        raise ValueError("direction must be 'in' or 'out'")
    column = {node: i for i, node in enumerate(chunk_nodes)}
    rows: dict[int, np.ndarray] = {}
    width = len(chunk_nodes)
    for edge in graph.edges():
        if direction == "in":
            key_node, chunk_node = edge.source, edge.target
        else:
            key_node, chunk_node = edge.target, edge.source
        if chunk_node not in column:
            continue
        row = rows.get(key_node)
        if row is None:
            row = np.zeros(width, dtype=np.uint8)
            rows[key_node] = row
        row[column[chunk_node]] = 1
    return list(rows.values())


def degree_vectors_pim(
    pim: PimAssembler,
    graph: DeBruijnGraph,
    subarray_key: tuple[int, int, int] = (0, 0, 0),
    engine: str = "scalar",
) -> tuple[dict[int, int], dict[int, int]]:
    """In/out degrees of every vertex via in-memory column sums.

    Chunks the vertex set by the row width (the ``n <= f`` rule) and
    accumulates each chunk's degree vectors with
    :func:`wallace_column_sum` (``engine="bulk"`` batches each
    chunk's whole reduction).

    Warning:
        the scratch sub-array's data rows are freely overwritten — run
        this *after* any hash-table contents in that sub-array have
        been read back (the pipeline's traverse phase does).

    Returns:
        ``(in_degree, out_degree)`` dictionaries over packed node keys.
    """
    nodes = sorted(graph.nodes())
    width = pim.row_bits
    in_deg: dict[int, int] = {}
    out_deg: dict[int, int] = {}
    for lo in range(0, len(nodes), width):
        chunk = nodes[lo : lo + width]
        for direction, out in (("in", in_deg), ("out", out_deg)):
            checkpoint()  # per-chunk cancellation point
            rows = adjacency_rows_for_chunk(graph, chunk, direction)
            if rows:
                sums = wallace_column_sum(
                    pim, rows, subarray_key, engine=engine
                )
            else:
                sums = np.zeros(width, dtype=np.int64)
            for i, node in enumerate(chunk):
                out[node] = int(sums[i])
    return in_deg, out_deg


def planes_needed(row_count: int) -> int:
    """Bit planes needed to hold a column sum of ``row_count`` rows."""
    if row_count <= 0:
        raise ValueError("row_count must be positive")
    return max(1, math.ceil(math.log2(row_count + 1)))
