"""The DNA alphabet and its 2-bit encoding.

The paper's Fig. 7 fixes the binary code used inside the memory rows::

    Base  T  G  A  C
    Code 00 01 10 11

(each row of a sub-array stores up to 128 bases x 2 bits = 256 bit
lines).  This module provides scalar and vectorised conversions between
characters, 2-bit codes and packed bit vectors, plus complementation.
"""

from __future__ import annotations

import numpy as np

#: Bases ordered by their 2-bit code (paper Fig. 7): code(T)=0, code(G)=1,
#: code(A)=2, code(C)=3.
BASES: str = "TGAC"

#: Number of bits per base.
BITS_PER_BASE: int = 2

_CHAR_TO_CODE = {c: i for i, c in enumerate(BASES)}
_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C"}

#: code -> complementary code (A<->T is 2<->0, C<->G is 3<->1).
COMPLEMENT_CODE = np.array(
    [_CHAR_TO_CODE[_COMPLEMENT[BASES[i]]] for i in range(4)], dtype=np.uint8
)


def is_valid_sequence(text: str) -> bool:
    """True iff every character is one of A/C/G/T (upper case)."""
    return all(c in _CHAR_TO_CODE for c in text)


def encode_base(base: str) -> int:
    """2-bit code of one base character."""
    try:
        return _CHAR_TO_CODE[base]
    except KeyError:
        raise ValueError(f"invalid base {base!r}; expected one of {BASES}") from None


def decode_base(code: int) -> str:
    """Base character of one 2-bit code."""
    if not 0 <= code < 4:
        raise ValueError(f"invalid base code {code}; expected 0..3")
    return BASES[code]


def complement_base(base: str) -> str:
    try:
        return _COMPLEMENT[base]
    except KeyError:
        raise ValueError(f"invalid base {base!r}") from None


def encode(text: str) -> np.ndarray:
    """Sequence string -> array of 2-bit codes (uint8)."""
    if not text:
        return np.zeros(0, dtype=np.uint8)
    raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    codes = np.full(raw.shape, 255, dtype=np.uint8)
    for char, code in _CHAR_TO_CODE.items():
        codes[raw == ord(char)] = code
    if (codes == 255).any():
        bad = text[int(np.argmax(codes == 255))]
        raise ValueError(f"invalid base {bad!r} in sequence")
    return codes


def decode(codes: np.ndarray) -> str:
    """Array of 2-bit codes -> sequence string."""
    arr = np.asarray(codes, dtype=np.uint8)
    if arr.size == 0:
        return ""
    if (arr >= 4).any():
        raise ValueError("base codes must be in 0..3")
    lut = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)
    return lut[arr].tobytes().decode("ascii")


def codes_to_bits(codes: np.ndarray, msb_first: bool = True) -> np.ndarray:
    """2-bit codes -> flat 0/1 bit vector (2 bits per base).

    ``msb_first`` matches the row layout of Fig. 7 (the high bit of each
    base code occupies the earlier bit line).
    """
    arr = np.asarray(codes, dtype=np.uint8)
    if (arr >= 4).any():
        raise ValueError("base codes must be in 0..3")
    hi = (arr >> 1) & 1
    lo = arr & 1
    pair = (hi, lo) if msb_first else (lo, hi)
    return np.stack(pair, axis=-1).reshape(-1).astype(np.uint8)


def bits_to_codes(bits: np.ndarray, msb_first: bool = True) -> np.ndarray:
    """Flat 0/1 bit vector -> 2-bit codes (inverse of codes_to_bits)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 2 != 0:
        raise ValueError("bit vector length must be even (2 bits per base)")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bit vector must contain only 0/1")
    pairs = arr.reshape(-1, 2)
    if msb_first:
        return (pairs[:, 0] << 1 | pairs[:, 1]).astype(np.uint8)
    return (pairs[:, 1] << 1 | pairs[:, 0]).astype(np.uint8)


def encode_to_bits(text: str, msb_first: bool = True) -> np.ndarray:
    """Sequence string -> flat bit vector, the row-storage format."""
    return codes_to_bits(encode(text), msb_first=msb_first)


def decode_from_bits(bits: np.ndarray, msb_first: bool = True) -> str:
    """Flat bit vector -> sequence string."""
    return decode(bits_to_codes(bits, msb_first=msb_first))


def reverse_complement(text: str) -> str:
    """Reverse complement of a sequence string."""
    return "".join(complement_base(c) for c in reversed(text))


def reverse_complement_codes(codes: np.ndarray) -> np.ndarray:
    """Reverse complement in code space (vectorised)."""
    arr = np.asarray(codes, dtype=np.uint8)
    return COMPLEMENT_CODE[arr[::-1]]
