"""k-mer spectrum analysis: histograms, genome-size estimation,
error-threshold detection.

The frequency histogram of a read set's k-mers has a characteristic
shape: a spike at frequency 1-2 (sequencing errors: each error creates
up to k novel k-mers) and a peak near the read coverage (genomic
k-mers).  From it one can estimate, without a reference:

* the **error threshold** — the valley between the two modes, which is
  the right ``min_count`` / ``solid_threshold`` for filtering and
  correction;
* the **coverage peak** — the genomic mode;
* the **genome size** — total genomic k-mers divided by the coverage
  peak (the standard k-mer-based estimator).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.genome.kmer import packed_kmers_array
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class SpectrumAnalysis:
    """Derived properties of one k-mer spectrum."""

    k: int
    histogram: dict[int, int]
    error_threshold: int
    coverage_peak: int
    genome_size_estimate: int

    @property
    def distinct_kmers(self) -> int:
        return sum(self.histogram.values())

    @property
    def total_kmers(self) -> int:
        return sum(f * n for f, n in self.histogram.items())

    def solid_fraction(self) -> float:
        """Fraction of distinct k-mers at/above the error threshold."""
        if not self.distinct_kmers:
            return 0.0
        solid = sum(
            n for f, n in self.histogram.items() if f >= self.error_threshold
        )
        return solid / self.distinct_kmers


def kmer_histogram(
    reads: "Iterable[Read] | Iterable[DnaSequence]", k: int
) -> dict[int, int]:
    """frequency -> number of distinct k-mers with that frequency."""
    if k <= 0:
        raise ValueError("k must be positive")
    counts: Counter = Counter()
    for item in reads:
        sequence = item.sequence if isinstance(item, Read) else item
        for packed in packed_kmers_array(sequence, k).tolist():
            counts[packed] += 1
    histogram: Counter = Counter()
    for frequency in counts.values():
        histogram[frequency] += 1
    return dict(sorted(histogram.items()))


def find_error_threshold(histogram: dict[int, int]) -> int:
    """The valley between the error spike and the coverage peak.

    Walk frequencies upward from 1; the threshold is the first local
    minimum (the frequency where the count stops falling).  Falls back
    to 2 for degenerate (error-free) histograms.
    """
    if not histogram:
        return 2
    frequencies = sorted(histogram)
    previous = histogram[frequencies[0]]
    for frequency in frequencies[1:]:
        current = histogram[frequency]
        if current > previous:
            return frequency
        previous = current
    return 2


def find_coverage_peak(histogram: dict[int, int], threshold: int) -> int:
    """The modal frequency at/above the error threshold."""
    candidates = {
        f: n for f, n in histogram.items() if f >= max(2, threshold)
    }
    if not candidates:
        return max(histogram, default=1)
    return max(candidates, key=lambda f: (candidates[f], f))


def analyse_spectrum(
    reads: "Iterable[Read] | Iterable[DnaSequence]", k: int
) -> SpectrumAnalysis:
    """Full spectrum analysis of a read set."""
    histogram = kmer_histogram(reads, k)
    threshold = find_error_threshold(histogram)
    peak = find_coverage_peak(histogram, threshold)
    genomic_kmers = sum(
        f * n for f, n in histogram.items() if f >= threshold
    )
    size = genomic_kmers // max(1, peak)
    return SpectrumAnalysis(
        k=k,
        histogram=histogram,
        error_threshold=threshold,
        coverage_peak=peak,
        genome_size_estimate=size,
    )


def format_histogram(histogram: dict[int, int], width: int = 50) -> str:
    """ASCII rendering of a spectrum (for examples and reports)."""
    if not histogram:
        return "(empty spectrum)"
    top = max(histogram.values())
    lines = []
    for frequency in sorted(histogram):
        count = histogram[frequency]
        bar = "#" * max(1, int(width * count / top))
        lines.append(f"{frequency:>5}x {count:>8} {bar}")
    return "\n".join(lines)
