"""Short-read simulation (the paper's read-sampling methodology).

The paper "create[s] the short reads (45,711,162) with the length of
101, by randomly sampling the chromosome".  :class:`ReadSimulator`
reproduces that: uniform random start positions, fixed read length,
optional reverse-strand sampling and a substitution error model for
robustness studies (the paper's reads are error-free samples, which is
the default here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.genome.alphabet import COMPLEMENT_CODE
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class Read:
    """One simulated short read."""

    name: str
    sequence: DnaSequence
    start: int
    reverse: bool = False

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass(frozen=True)
class ReadSimulator:
    """Uniform random read sampler over a reference sequence.

    Attributes:
        read_length: bases per read (the paper uses 101).
        seed: RNG seed.
        error_rate: per-base substitution probability (default 0 —
            error-free sampling, as in the paper's setup).
        sample_reverse: if True, half the reads come from the reverse
            complement strand (the paper's simple sampler is
            forward-only, the default).
    """

    read_length: int = 101
    seed: int = 101
    error_rate: float = 0.0
    sample_reverse: bool = False

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError("read_length must be positive")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")

    # ----- count planning ---------------------------------------------------

    def reads_for_coverage(self, genome_length: int, coverage: float) -> int:
        """Read count achieving a mean per-base coverage."""
        if genome_length <= 0:
            raise ValueError("genome_length must be positive")
        if coverage <= 0:
            raise ValueError("coverage must be positive")
        return max(1, int(round(coverage * genome_length / self.read_length)))

    # ----- sampling ----------------------------------------------------------

    def sample(self, reference: DnaSequence, count: int) -> list[Read]:
        """Sample ``count`` reads (see :meth:`iter_sample`)."""
        return list(self.iter_sample(reference, count))

    def iter_sample(self, reference: DnaSequence, count: int) -> Iterator[Read]:
        """Lazily sample reads from the reference.

        Raises:
            ValueError: if the reference is shorter than one read.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if len(reference) < self.read_length:
            raise ValueError(
                f"reference ({len(reference)} bp) shorter than a read "
                f"({self.read_length} bp)"
            )
        rng = np.random.default_rng(self.seed)
        codes = reference.codes
        max_start = len(reference) - self.read_length
        starts = rng.integers(0, max_start + 1, size=count)
        reverse_flags = (
            rng.random(count) < 0.5
            if self.sample_reverse
            else np.zeros(count, dtype=bool)
        )
        for i, (start, reverse) in enumerate(zip(starts, reverse_flags)):
            fragment = codes[int(start) : int(start) + self.read_length].copy()
            if reverse:
                fragment = COMPLEMENT_CODE[fragment[::-1]]
            if self.error_rate > 0.0:
                fragment = self._apply_errors(rng, fragment)
            yield Read(
                name=f"read{i}",
                sequence=DnaSequence(fragment),
                start=int(start),
                reverse=bool(reverse),
            )

    def _apply_errors(
        self, rng: np.random.Generator, codes: np.ndarray
    ) -> np.ndarray:
        """Substitute bases at ``error_rate`` with a different base."""
        mask = rng.random(codes.size) < self.error_rate
        if not mask.any():
            return codes
        out = codes.copy()
        shifts = rng.integers(1, 4, size=int(mask.sum())).astype(np.uint8)
        out[mask] = (out[mask] + shifts) % 4
        return out


def coverage_histogram(reads: list[Read], genome_length: int) -> np.ndarray:
    """Per-base coverage counts (for sanity checks and examples)."""
    if genome_length <= 0:
        raise ValueError("genome_length must be positive")
    cover = np.zeros(genome_length, dtype=np.int64)
    for read in reads:
        # Reverse-strand reads cover the same reference interval.
        cover[read.start : read.start + len(read)] += 1
    return cover
