"""Paired-end read simulation.

The paper's sampler draws single-end reads; real libraries are
paired-end — two reads from the ends of one insert, the right mate on
the reverse strand.  Mate pairs are what makes scaffolding (assembly
stage 3, the paper's future work) possible, so this module is the data
substrate for the :mod:`repro.assembly.mate_scaffold` extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.genome.alphabet import COMPLEMENT_CODE
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class ReadPair:
    """One paired-end fragment: forward left mate, reverse right mate.

    ``insert_size`` is the outer distance (left start to right end on
    the reference).
    """

    name: str
    left: Read
    right: Read
    insert_size: int

    def __post_init__(self) -> None:
        if self.insert_size < len(self.left) or self.insert_size < len(self.right):
            raise ValueError("insert must be at least one read long")

    @property
    def gap(self) -> int:
        """Unsequenced bases between the two mates (can be negative
        when the mates overlap)."""
        return self.insert_size - len(self.left) - len(self.right)


@dataclass(frozen=True)
class PairedReadSimulator:
    """Uniform paired-end sampler.

    Attributes:
        read_length: bases per mate.
        insert_mean: mean outer insert size.
        insert_sd: standard deviation of the insert size (Gaussian,
            clamped so the insert always fits both mates).
        seed: RNG seed.
        error_rate: per-base substitution probability on both mates.
    """

    read_length: int = 101
    insert_mean: int = 400
    insert_sd: float = 40.0
    seed: int = 4242
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError("read_length must be positive")
        if self.insert_mean < self.read_length:
            raise ValueError("insert_mean must be at least read_length")
        if self.insert_sd < 0:
            raise ValueError("insert_sd must be non-negative")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")

    def pairs_for_coverage(self, genome_length: int, coverage: float) -> int:
        """Pair count achieving a mean per-base *read* coverage."""
        if genome_length <= 0 or coverage <= 0:
            raise ValueError("genome_length and coverage must be positive")
        bases_per_pair = 2 * self.read_length
        return max(1, int(round(coverage * genome_length / bases_per_pair)))

    def sample(self, reference: DnaSequence, count: int) -> list[ReadPair]:
        return list(self.iter_sample(reference, count))

    def iter_sample(
        self, reference: DnaSequence, count: int
    ) -> Iterator[ReadPair]:
        """Lazily sample ``count`` read pairs.

        Raises:
            ValueError: if the reference cannot fit the mean insert.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if len(reference) < self.insert_mean:
            raise ValueError(
                f"reference ({len(reference)} bp) shorter than the mean "
                f"insert ({self.insert_mean} bp)"
            )
        rng = np.random.default_rng(self.seed)
        codes = reference.codes
        n = len(reference)
        for i in range(count):
            insert = int(round(rng.normal(self.insert_mean, self.insert_sd)))
            insert = max(self.read_length, min(insert, n))
            start = int(rng.integers(0, n - insert + 1))

            left_codes = codes[start : start + self.read_length].copy()
            right_lo = start + insert - self.read_length
            right_window = codes[right_lo : right_lo + self.read_length]
            right_codes = COMPLEMENT_CODE[right_window[::-1]].copy()

            if self.error_rate > 0.0:
                left_codes = self._apply_errors(rng, left_codes)
                right_codes = self._apply_errors(rng, right_codes)

            yield ReadPair(
                name=f"pair{i}",
                left=Read(
                    name=f"pair{i}/1",
                    sequence=DnaSequence(left_codes),
                    start=start,
                ),
                right=Read(
                    name=f"pair{i}/2",
                    sequence=DnaSequence(right_codes),
                    start=right_lo,
                    reverse=True,
                ),
                insert_size=insert,
            )

    def _apply_errors(
        self, rng: np.random.Generator, codes: np.ndarray
    ) -> np.ndarray:
        mask = rng.random(codes.size) < self.error_rate
        if not mask.any():
            return codes
        out = codes.copy()
        shifts = rng.integers(1, 4, size=int(mask.sum())).astype(np.uint8)
        out[mask] = (out[mask] + shifts) % 4
        return out


def all_reads(pairs: list[ReadPair]) -> list[Read]:
    """Flatten pairs into the single-end read list assemblers consume."""
    reads: list[Read] = []
    for pair in pairs:
        reads.append(pair.left)
        reads.append(pair.right)
    return reads
