"""Synthetic reference genomes (the chromosome-14 surrogate).

The paper samples 45,711,162 reads of length 101 from human
chromosome 14 (NCBI).  Offline we substitute a *seeded synthetic
chromosome* with the statistics that matter to the assembly pipeline:

* configurable length (chr14's assemblable portion is ~88 Mbp),
* human-like GC content (~41 % for chr14),
* a controllable **repeat structure** — tandem repeats and dispersed
  (transposon-like) repeats — because repeats are what make de Bruijn
  graphs branch and are therefore the property that drives graph shape
  and traversal behaviour.

Functional runs use small scales (kbp-Mbp) where exact reconstruction
can be checked; the paper-scale performance model only consumes the
*parameters* (length, read count/length, k), not the bases themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome.alphabet import encode
from repro.genome.sequence import DnaSequence

#: Assemblable (non-N) length of human chromosome 14, base pairs.
CHR14_LENGTH: int = 88_000_000

#: GC fraction of human chromosome 14.
CHR14_GC: float = 0.41

#: Read set of the paper's Section IV setup.
CHR14_READ_COUNT: int = 45_711_162
CHR14_READ_LENGTH: int = 101


@dataclass(frozen=True)
class RepeatSpec:
    """Repeat structure of a synthetic chromosome.

    Attributes:
        dispersed_fraction: fraction of the genome covered by copies of
            dispersed repeat elements (SINE/LINE-like).
        dispersed_element_length: length of each dispersed element.
        dispersed_family_count: number of distinct element families.
        tandem_fraction: fraction covered by tandem repeats.
        tandem_unit_length: repeat-unit length of tandem arrays.
    """

    dispersed_fraction: float = 0.10
    dispersed_element_length: int = 300
    dispersed_family_count: int = 4
    tandem_fraction: float = 0.02
    tandem_unit_length: int = 12

    def __post_init__(self) -> None:
        if not 0.0 <= self.dispersed_fraction < 1.0:
            raise ValueError("dispersed_fraction must be in [0, 1)")
        if not 0.0 <= self.tandem_fraction < 1.0:
            raise ValueError("tandem_fraction must be in [0, 1)")
        if self.dispersed_fraction + self.tandem_fraction >= 1.0:
            raise ValueError("repeat fractions must sum below 1")
        if self.dispersed_element_length <= 0 or self.tandem_unit_length <= 0:
            raise ValueError("repeat lengths must be positive")
        if self.dispersed_family_count <= 0:
            raise ValueError("dispersed_family_count must be positive")


def _random_codes(rng: np.random.Generator, n: int, gc_content: float) -> np.ndarray:
    """Draw 2-bit codes with a given GC fraction (codes: T,G,A,C)."""
    if n < 0:
        raise ValueError("length must be non-negative")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    # code order is T, G, A, C
    probs = np.array([at, gc, at, gc])
    return rng.choice(4, size=n, p=probs).astype(np.uint8)


def synthetic_chromosome(
    length: int,
    seed: int = 14,
    gc_content: float = CHR14_GC,
    repeats: RepeatSpec | None = None,
) -> DnaSequence:
    """Generate a seeded synthetic chromosome.

    The backbone is i.i.d. bases at the requested GC content; dispersed
    repeat elements and tandem arrays are then stamped over it at random
    positions, so the k-mer spectrum shows the repeat-induced
    multiplicity real chromosomes have.

    Args:
        length: total length in bases.
        seed: RNG seed (same seed -> identical chromosome).
        gc_content: fraction of G/C bases in the random backbone.
        repeats: repeat structure; ``None`` uses the defaults.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0.0 < gc_content < 1.0:
        raise ValueError("gc_content must be in (0, 1)")
    repeats = repeats or RepeatSpec()
    rng = np.random.default_rng(seed)
    codes = _random_codes(rng, length, gc_content)

    # Dispersed repeat families.
    element_len = min(repeats.dispersed_element_length, length)
    if repeats.dispersed_fraction > 0 and element_len > 0:
        families = [
            _random_codes(rng, element_len, gc_content)
            for _ in range(repeats.dispersed_family_count)
        ]
        target = int(length * repeats.dispersed_fraction)
        copies = max(0, target // element_len)
        for _ in range(copies):
            family = families[int(rng.integers(len(families)))]
            start = int(rng.integers(0, max(1, length - element_len)))
            codes[start : start + element_len] = family[: length - start]

    # Tandem arrays.
    unit_len = min(repeats.tandem_unit_length, length)
    if repeats.tandem_fraction > 0 and unit_len > 0:
        target = int(length * repeats.tandem_fraction)
        array_len = unit_len * 20
        arrays = max(0, target // array_len)
        for _ in range(arrays):
            unit = _random_codes(rng, unit_len, gc_content)
            start = int(rng.integers(0, max(1, length - array_len)))
            stop = min(length, start + array_len)
            reps = -(-(stop - start) // unit_len)
            codes[start:stop] = np.tile(unit, reps)[: stop - start]

    return DnaSequence(codes)


def chr14_surrogate(scale: float = 1.0, seed: int = 14) -> DnaSequence:
    """The chromosome-14 stand-in, optionally scaled down.

    ``scale=1.0`` gives the full 88 Mbp surrogate (only needed by the
    paper-scale analytic model, which never materialises it);
    functional runs use e.g. ``scale=1e-4`` (8.8 kbp).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    length = max(1000, int(CHR14_LENGTH * scale))
    return synthetic_chromosome(length, seed=seed)


def from_string(text: str) -> DnaSequence:
    """Convenience validator for literal test sequences."""
    encode(text)  # raises on invalid bases
    return DnaSequence(text)
