"""k-mer extraction, integer packing and software counting.

Three representations coexist, each with its role:

* :class:`~repro.genome.sequence.DnaSequence` slices — readable,
  used by tests and the de Bruijn graph construction;
* **packed integers** (2 bits per base, base code in the low bits of
  higher positions first) — the software hash-table keys;
* **row bit vectors** (via ``DnaSequence.to_bits``) — what actually
  lands in a sub-array row for PIM comparison.

The software counter here is the *golden model* the PIM hash-table
construction is validated against.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

import numpy as np

from repro.genome.alphabet import BITS_PER_BASE
from repro.genome.sequence import DnaSequence

#: The paper evaluates these k values (Section IV).
PAPER_K_VALUES: tuple[int, ...] = (16, 22, 26, 32)

#: Maximum k packable into a 64-bit integer.
MAX_PACKED_K: int = 32


def pack_kmer(kmer: DnaSequence) -> int:
    """Pack a k-mer (k <= 32) into a 64-bit integer key."""
    k = len(kmer)
    if k == 0:
        raise ValueError("cannot pack an empty k-mer")
    if k > MAX_PACKED_K:
        raise ValueError(f"k={k} exceeds the 64-bit packing limit of {MAX_PACKED_K}")
    value = 0
    for code in kmer.codes:
        value = (value << BITS_PER_BASE) | int(code)
    return value


def unpack_kmer(value: int, k: int) -> DnaSequence:
    """Inverse of :func:`pack_kmer`."""
    if k <= 0 or k > MAX_PACKED_K:
        raise ValueError(f"k must be in 1..{MAX_PACKED_K}")
    if value < 0 or value >= (1 << (BITS_PER_BASE * k)):
        raise ValueError("packed value out of range for this k")
    codes = np.empty(k, dtype=np.uint8)
    for i in range(k - 1, -1, -1):
        codes[i] = value & 0b11
        value >>= BITS_PER_BASE
    return DnaSequence(codes)


def iter_kmers(sequence: DnaSequence, k: int) -> Iterator[DnaSequence]:
    """Overlapping k-mers of one sequence, left to right."""
    yield from sequence.kmers(k)


def iter_packed_kmers(sequence: DnaSequence, k: int) -> Iterator[int]:
    """Packed-integer k-mers with an O(1) rolling update per position."""
    if k <= 0:
        raise ValueError("k must be positive")
    if k > MAX_PACKED_K:
        raise ValueError(f"k={k} exceeds the packing limit {MAX_PACKED_K}")
    n = len(sequence)
    if n < k:
        return
    codes = sequence.codes
    mask = (1 << (BITS_PER_BASE * k)) - 1
    value = 0
    for i in range(k):
        value = (value << BITS_PER_BASE) | int(codes[i])
    yield value
    for i in range(k, n):
        value = ((value << BITS_PER_BASE) | int(codes[i])) & mask
        yield value


def packed_kmers_array(sequence: DnaSequence, k: int) -> np.ndarray:
    """All packed k-mers of a sequence as a uint64 array (vectorised)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if k > MAX_PACKED_K:
        raise ValueError(f"k={k} exceeds the packing limit {MAX_PACKED_K}")
    n = len(sequence)
    if n < k:
        return np.zeros(0, dtype=np.uint64)
    codes = sequence.codes.astype(np.uint64)
    count = n - k + 1
    values = np.zeros(count, dtype=np.uint64)
    for offset in range(k):
        values = (values << np.uint64(BITS_PER_BASE)) | codes[offset : offset + count]
    return values


def packed_to_row_bits(packed: np.ndarray, k: int, row_bits: int) -> np.ndarray:
    """Vectorised :func:`kmer_to_row_bits` over packed k-mer integers.

    Returns a ``(len(packed), row_bits)`` uint8 matrix — row ``i`` is
    exactly ``kmer_to_row_bits(unpack_kmer(packed[i], k), row_bits)``.
    The bulk execution engine uses this to materialise whole insert
    batches without any per-k-mer Python work.
    """
    if k <= 0 or k > MAX_PACKED_K:
        raise ValueError(f"k must be in 1..{MAX_PACKED_K}")
    if 2 * k > row_bits:
        raise ValueError(f"k-mer needs {2 * k} bit lines, row only has {row_bits}")
    values = np.ascontiguousarray(packed, dtype=np.uint64)
    # bit line 2i is the high bit of base i (msb_first row layout) and
    # base i sits at packed bits [2(k-1-i), 2(k-1-i)+1]
    positions = np.arange(k)
    shifts = np.empty(2 * k, dtype=np.uint64)
    shifts[0::2] = 2 * (k - 1 - positions) + 1
    shifts[1::2] = 2 * (k - 1 - positions)
    out = np.zeros((values.size, row_bits), dtype=np.uint8)
    out[:, : 2 * k] = (values[:, None] >> shifts[None, :]) & np.uint64(1)
    return out


def count_kmers(
    sequences: "Iterable[DnaSequence] | DnaSequence", k: int
) -> Counter:
    """Software k-mer counter: the golden model for the PIM hash table.

    Returns:
        ``Counter`` mapping packed k-mer integers to frequencies —
        exactly the (key, value) pairs the paper's Hashmap procedure
        produces.
    """
    if isinstance(sequences, DnaSequence):
        sequences = [sequences]
    counts: Counter = Counter()
    for sequence in sequences:
        arr = packed_kmers_array(sequence, k)
        if arr.size:
            uniques, freqs = np.unique(arr, return_counts=True)
            for u, f in zip(uniques.tolist(), freqs.tolist()):
                counts[u] += f
    return counts


def canonical_kmer(kmer: DnaSequence) -> DnaSequence:
    """The lexicographically smaller of a k-mer and its reverse
    complement (used by the strand-aware extension, not by the paper's
    forward-only pipeline)."""
    rc = kmer.reverse_complement()
    return kmer if pack_kmer(kmer) <= pack_kmer(rc) else rc


def kmer_to_row_bits(kmer: DnaSequence, row_bits: int) -> np.ndarray:
    """Lay a k-mer out as a padded sub-array row (2 bits/base + zeros)."""
    bits = kmer.to_bits()
    if bits.size > row_bits:
        raise ValueError(
            f"k-mer needs {bits.size} bit lines, row only has {row_bits}"
        )
    if bits.size < row_bits:
        bits = np.pad(bits, (0, row_bits - bits.size))
    return bits
