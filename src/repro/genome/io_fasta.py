"""Minimal FASTA / FASTQ reading and writing.

Only the features the pipeline needs: multi-record FASTA with wrapped
lines, and four-line FASTQ records with dummy qualities for simulated
reads.  Sequences containing characters outside A/C/G/T (e.g. the ``N``
runs of real references) can be split on invalid characters via
:func:`read_fasta_contigs`, mirroring how assemblers treat ``N`` gaps.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.genome.alphabet import is_valid_sequence
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``>name description`` plus a sequence."""

    name: str
    sequence: str
    description: str = ""

    def to_dna(self) -> DnaSequence:
        return DnaSequence(self.sequence)


def _open(path: "str | Path | TextIO", mode: str) -> TextIO:
    if isinstance(path, (str, Path)):
        return open(path, mode, encoding="ascii")
    return path


def parse_fasta(stream: TextIO) -> Iterator[FastaRecord]:
    """Yield records from an open FASTA stream."""
    name: str | None = None
    description = ""
    chunks: list[str] = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks), description)
            header = line[1:].split(None, 1)
            if not header:
                raise ValueError("FASTA header without a name")
            name = header[0]
            description = header[1] if len(header) > 1 else ""
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA sequence data before any header")
            chunks.append(line.upper())
    if name is not None:
        yield FastaRecord(name, "".join(chunks), description)


def read_fasta(path: "str | Path | TextIO") -> list[FastaRecord]:
    """Read all records of a FASTA file (or open stream)."""
    stream = _open(path, "r")
    try:
        return list(parse_fasta(stream))
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


def read_fasta_contigs(path: "str | Path | TextIO") -> list[DnaSequence]:
    """Read FASTA and split every record on non-ACGT characters.

    Real references contain ``N`` gap runs; assembly treats each
    ACGT-only stretch as an independent contiguous region.
    """
    contigs: list[DnaSequence] = []
    for record in read_fasta(path):
        current: list[str] = []
        for char in record.sequence:
            if char in "ACGT":
                current.append(char)
            elif current:
                contigs.append(DnaSequence("".join(current)))
                current = []
        if current:
            contigs.append(DnaSequence("".join(current)))
    return contigs


def write_fasta(
    path: "str | Path | TextIO",
    records: Iterable[FastaRecord],
    width: int = 70,
) -> None:
    """Write records as wrapped FASTA."""
    if width <= 0:
        raise ValueError("width must be positive")
    stream = _open(path, "w")
    try:
        for record in records:
            header = f">{record.name}"
            if record.description:
                header += f" {record.description}"
            stream.write(header + "\n")
            seq = record.sequence
            for i in range(0, len(seq), width):
                stream.write(seq[i : i + width] + "\n")
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record (qualities default to maximum for simulation)."""

    name: str
    sequence: str
    quality: str = ""

    def __post_init__(self) -> None:
        if self.quality and len(self.quality) != len(self.sequence):
            raise ValueError("quality string length must match the sequence")

    def effective_quality(self) -> str:
        return self.quality or "I" * len(self.sequence)


def parse_fastq(stream: TextIO) -> Iterator[FastqRecord]:
    """Yield records from an open FASTQ stream."""
    while True:
        header = stream.readline()
        if not header:
            return
        header = header.strip()
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"malformed FASTQ header: {header!r}")
        sequence = stream.readline().strip().upper()
        plus = stream.readline().strip()
        quality = stream.readline().strip()
        if not plus.startswith("+"):
            raise ValueError("malformed FASTQ record (missing '+')")
        if len(quality) != len(sequence):
            raise ValueError("FASTQ quality length mismatch")
        yield FastqRecord(header[1:].split()[0], sequence, quality)


def read_fastq(path: "str | Path | TextIO") -> list[FastqRecord]:
    stream = _open(path, "r")
    try:
        return list(parse_fastq(stream))
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


def write_fastq(path: "str | Path | TextIO", records: Iterable[FastqRecord]) -> None:
    stream = _open(path, "w")
    try:
        for record in records:
            stream.write(f"@{record.name}\n{record.sequence}\n+\n")
            stream.write(record.effective_quality() + "\n")
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


def validate_records(records: Iterable[FastaRecord]) -> None:
    """Raise if any record contains non-ACGT characters."""
    for record in records:
        if not is_valid_sequence(record.sequence):
            raise ValueError(f"record {record.name!r} contains non-ACGT bases")
