"""Minimal FASTA / FASTQ reading and writing.

Only the features the pipeline needs: multi-record FASTA with wrapped
lines, and four-line FASTQ records with dummy qualities for simulated
reads.  Sequences containing characters outside A/C/G/T (e.g. the ``N``
runs of real references) can be split on invalid characters via
:func:`read_fasta_contigs`, mirroring how assemblers treat ``N`` gaps.

Real-world files arrive dented: CRLF line endings, lowercase bases, a
final FASTQ record cut off mid-write.  The parsers normalise the first
two unconditionally; structural damage either raises ``ValueError``
(default ``strict=True``) or — with ``strict=False`` — quarantines the
malformed record, counts it in a :class:`ParseReport`, and keeps
going, so one bad record doesn't discard a whole lane of reads.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.genome.alphabet import is_valid_sequence
from repro.genome.sequence import DnaSequence


@dataclass
class ParseReport:
    """Tally of records quarantined by a lenient (``strict=False``) parse."""

    quarantined: int = 0
    reasons: list[str] = field(default_factory=list)

    def note(self, reason: str) -> None:
        self.quarantined += 1
        self.reasons.append(reason)


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``>name description`` plus a sequence."""

    name: str
    sequence: str
    description: str = ""

    def to_dna(self) -> DnaSequence:
        return DnaSequence(self.sequence)


def _open(path: "str | Path | TextIO", mode: str) -> TextIO:
    if isinstance(path, (str, Path)):
        return open(path, mode, encoding="ascii")
    return path


def parse_fasta(
    stream: TextIO,
    strict: bool = True,
    report: ParseReport | None = None,
) -> Iterator[FastaRecord]:
    """Yield records from an open FASTA stream.

    CRLF endings and lowercase bases are normalised.  With
    ``strict=False``, structurally malformed records (nameless header,
    sequence data before any header, non-ACGT bases) are skipped and
    tallied in ``report`` instead of raising.
    """
    report = report if report is not None else ParseReport()
    name: str | None = None
    description = ""
    chunks: list[str] = []
    skipping = False  # inside a quarantined record's sequence lines

    def emit() -> FastaRecord | None:
        record = FastaRecord(name, "".join(chunks), description)
        if not strict and not is_valid_sequence(record.sequence):
            report.note(f"record {record.name!r}: non-ACGT bases")
            return None
        return record

    for raw_line in stream:
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                record = emit()
                if record is not None:
                    yield record
                name = None
            skipping = False
            header = line[1:].split(None, 1)
            if not header:
                if strict:
                    raise ValueError("FASTA header without a name")
                report.note("header without a name")
                skipping = True
                continue
            name = header[0]
            description = header[1] if len(header) > 1 else ""
            chunks = []
        else:
            if name is None:
                if skipping:
                    continue  # body of an already-quarantined record
                if strict:
                    raise ValueError("FASTA sequence data before any header")
                report.note("sequence data before any header")
                skipping = True
                continue
            chunks.append(line.upper())
    if name is not None:
        record = emit()
        if record is not None:
            yield record


def read_fasta(
    path: "str | Path | TextIO",
    strict: bool = True,
    report: ParseReport | None = None,
) -> list[FastaRecord]:
    """Read all records of a FASTA file (or open stream)."""
    stream = _open(path, "r")
    try:
        return list(parse_fasta(stream, strict=strict, report=report))
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


def read_fasta_contigs(path: "str | Path | TextIO") -> list[DnaSequence]:
    """Read FASTA and split every record on non-ACGT characters.

    Real references contain ``N`` gap runs; assembly treats each
    ACGT-only stretch as an independent contiguous region.
    """
    contigs: list[DnaSequence] = []
    for record in read_fasta(path):
        current: list[str] = []
        for char in record.sequence:
            if char in "ACGT":
                current.append(char)
            elif current:
                contigs.append(DnaSequence("".join(current)))
                current = []
        if current:
            contigs.append(DnaSequence("".join(current)))
    return contigs


def write_fasta(
    path: "str | Path | TextIO",
    records: Iterable[FastaRecord],
    width: int = 70,
) -> None:
    """Write records as wrapped FASTA."""
    if width <= 0:
        raise ValueError("width must be positive")
    stream = _open(path, "w")
    try:
        for record in records:
            header = f">{record.name}"
            if record.description:
                header += f" {record.description}"
            stream.write(header + "\n")
            seq = record.sequence
            for i in range(0, len(seq), width):
                stream.write(seq[i : i + width] + "\n")
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record (qualities default to maximum for simulation)."""

    name: str
    sequence: str
    quality: str = ""

    def __post_init__(self) -> None:
        if self.quality and len(self.quality) != len(self.sequence):
            raise ValueError("quality string length must match the sequence")

    def effective_quality(self) -> str:
        return self.quality or "I" * len(self.sequence)


def parse_fastq(
    stream: TextIO,
    strict: bool = True,
    report: ParseReport | None = None,
) -> Iterator[FastqRecord]:
    """Yield records from an open FASTQ stream.

    CRLF endings and lowercase bases are normalised.  A final record
    truncated mid-write (header present, any of the three body lines
    missing) raises a dedicated ``ValueError``; with ``strict=False``
    it — like any other malformed record — is quarantined into
    ``report`` and parsing continues.
    """
    report = report if report is not None else ParseReport()
    while True:
        header = stream.readline()
        if not header:
            return
        header = header.strip()
        if not header:
            continue
        if not header.startswith("@"):
            if strict:
                raise ValueError(f"malformed FASTQ header: {header!r}")
            report.note(f"not a FASTQ header: {header[:40]!r}")
            continue
        name_fields = header[1:].split()
        name = name_fields[0] if name_fields else ""
        seq_line = stream.readline()
        plus_line = stream.readline()
        qual_line = stream.readline()
        if not seq_line or not plus_line or not qual_line:
            message = f"truncated final FASTQ record {name!r}"
            if strict:
                raise ValueError(message)
            report.note(message)
            return
        sequence = seq_line.strip().upper()
        plus = plus_line.strip()
        quality = qual_line.strip()
        if not name:
            if strict:
                raise ValueError("FASTQ header without a name")
            report.note("header without a name")
            continue
        if not plus.startswith("+"):
            if strict:
                raise ValueError("malformed FASTQ record (missing '+')")
            report.note(f"record {name!r}: missing '+' separator")
            continue
        if len(quality) != len(sequence):
            if strict:
                raise ValueError("FASTQ quality length mismatch")
            report.note(f"record {name!r}: quality length mismatch")
            continue
        if not strict and not is_valid_sequence(sequence):
            report.note(f"record {name!r}: non-ACGT bases")
            continue
        yield FastqRecord(name, sequence, quality)


def read_fastq(
    path: "str | Path | TextIO",
    strict: bool = True,
    report: ParseReport | None = None,
) -> list[FastqRecord]:
    stream = _open(path, "r")
    try:
        return list(parse_fastq(stream, strict=strict, report=report))
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


def write_fastq(path: "str | Path | TextIO", records: Iterable[FastqRecord]) -> None:
    stream = _open(path, "w")
    try:
        for record in records:
            stream.write(f"@{record.name}\n{record.sequence}\n+\n")
            stream.write(record.effective_quality() + "\n")
    finally:
        if not isinstance(path, io.TextIOBase):
            stream.close()


def validate_records(records: Iterable[FastaRecord]) -> None:
    """Raise if any record contains non-ACGT characters."""
    for record in records:
        if not is_valid_sequence(record.sequence):
            raise ValueError(f"record {record.name!r} contains non-ACGT bases")
