"""Immutable DNA sequence objects backed by 2-bit code arrays."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.genome import alphabet


class DnaSequence:
    """An immutable DNA sequence stored as 2-bit codes.

    Construction validates the alphabet once; all derived views (slices,
    k-mers, bit vectors) are cheap NumPy operations.

    >>> s = DnaSequence("ACGT")
    >>> s.reverse_complement()
    DnaSequence('ACGT')
    >>> len(s[1:3])
    2
    """

    __slots__ = ("_codes",)

    def __init__(self, sequence: "str | np.ndarray | DnaSequence") -> None:
        if isinstance(sequence, DnaSequence):
            self._codes = sequence._codes
        elif isinstance(sequence, str):
            self._codes = alphabet.encode(sequence)
        else:
            arr = np.asarray(sequence, dtype=np.uint8)
            if arr.ndim != 1:
                raise ValueError("code array must be 1-D")
            if arr.size and (arr >= 4).any():
                raise ValueError("base codes must be in 0..3")
            self._codes = arr.copy()
        self._codes.setflags(write=False)

    # ----- constructors -----------------------------------------------------

    @classmethod
    def from_codes(cls, codes: np.ndarray) -> "DnaSequence":
        return cls(codes)

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "DnaSequence":
        """Inverse of :meth:`to_bits` (the sub-array row format)."""
        return cls(alphabet.bits_to_codes(bits))

    # ----- views ----------------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Read-only 2-bit code array."""
        return self._codes

    def to_bits(self) -> np.ndarray:
        """Flat 0/1 vector, 2 bits per base — the row storage format."""
        return alphabet.codes_to_bits(self._codes)

    def __str__(self) -> str:
        return alphabet.decode(self._codes)

    def __repr__(self) -> str:
        text = str(self)
        shown = text if len(text) <= 40 else text[:37] + "..."
        return f"DnaSequence('{shown}')"

    # ----- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return int(self._codes.size)

    def __getitem__(self, index: "int | slice") -> "str | DnaSequence":
        if isinstance(index, slice):
            return DnaSequence(self._codes[index])
        return alphabet.decode_base(int(self._codes[index]))

    def __iter__(self) -> Iterator[str]:
        for code in self._codes:
            yield alphabet.decode_base(int(code))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            return str(self) == other
        if isinstance(other, DnaSequence):
            return (
                self._codes.size == other._codes.size
                and bool((self._codes == other._codes).all())
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._codes.tobytes())

    def __add__(self, other: "DnaSequence | str") -> "DnaSequence":
        other_seq = other if isinstance(other, DnaSequence) else DnaSequence(other)
        return DnaSequence(np.concatenate([self._codes, other_seq._codes]))

    # ----- biology ---------------------------------------------------------------------

    def reverse_complement(self) -> "DnaSequence":
        return DnaSequence(alphabet.reverse_complement_codes(self._codes))

    def gc_content(self) -> float:
        """Fraction of G/C bases (0 for the empty sequence)."""
        if not len(self):
            return 0.0
        g = alphabet.encode_base("G")
        c = alphabet.encode_base("C")
        return float(np.isin(self._codes, (g, c)).mean())

    def kmers(self, k: int) -> Iterator["DnaSequence"]:
        """All overlapping k-mers, left to right."""
        if k <= 0:
            raise ValueError("k must be positive")
        for i in range(len(self) - k + 1):
            yield DnaSequence(self._codes[i : i + k])

    def kmer_count(self, k: int) -> int:
        """Number of overlapping k-mers (0 if the sequence is shorter)."""
        if k <= 0:
            raise ValueError("k must be positive")
        return max(0, len(self) - k + 1)
