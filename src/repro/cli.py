"""Command-line interface for PIM-Assembler.

The subcommands cover the workflows a downstream user needs:

* ``pim-assembler assemble`` — assemble FASTA/FASTQ reads into contigs
  on the PIM functional simulator (or the software golden model);
  ``--trace-out``/``--metrics-out`` additionally record the run's span
  timeline (Perfetto-loadable) and metrics snapshot;
* ``pim-assembler verify-trace`` — dataflow/cost-model verification of
  AAP trace documents recorded with ``assemble --aap-trace-out``
  (exit 1 on findings, 2 on an unreadable document; ``--json`` for
  machine-readable findings);
* ``pim-assembler optimize-trace`` — verified peephole optimisation of
  a recorded trace document: dead-write elimination, copy propagation,
  redundant-precharge removal and cross-sub-array gang merging, every
  rewrite proven observationally equivalent by the symbolic checker
  before the optimised document is written;
* ``pim-assembler inspect`` — post-hoc accounting of a journaled job
  directory (works on finished, crashed and timed-out jobs);
* ``pim-assembler serve`` — drive a batch of jobs from a JSON manifest
  through the multi-tenant assembly service (admission control, fair
  scheduling, crash-resume, graceful degradation); exit 4 when
  submissions were shed by admission control;
* ``pim-assembler simulate`` — generate a synthetic reference and a
  read set (single- or paired-end) for experiments;
* ``pim-assembler experiments`` — regenerate the paper's tables and
  figures, printing them and/or exporting CSVs.

Installed as a console script (see ``pyproject.toml``); also runnable
as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="pim-assembler",
        description="PIM-Assembler: processing-in-DRAM genome assembly "
        "(DAC 2020 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    assemble = sub.add_parser("assemble", help="assemble reads into contigs")
    assemble.add_argument("reads", help="FASTA or FASTQ file of reads")
    assemble.add_argument("-o", "--output", required=True, help="contig FASTA")
    assemble.add_argument("-k", type=int, default=21, help="k-mer length")
    assemble.add_argument(
        "--min-count", type=int, default=1, help="k-mer frequency threshold"
    )
    assemble.add_argument(
        "--min-contig", type=int, default=0, help="drop shorter contigs"
    )
    assemble.add_argument(
        "--engine",
        choices=("pim", "software", "bidirected"),
        default="pim",
        help="assembly engine (default: the PIM functional simulator)",
    )
    assemble.add_argument(
        "--exec-engine",
        choices=("scalar", "bulk"),
        default="scalar",
        help="PIM simulator execution engine: 'scalar' issues commands "
        "one at a time (golden model), 'bulk' batches them as "
        "bit-plane gangs (same results, much faster simulation)",
    )
    assemble.add_argument(
        "--ecc",
        choices=("off", "secded"),
        help="model retention bit rot in the k-mer store: 'secded' "
        "protects it with SECDED(72,64) + scrubbing, 'off' leaves the "
        "rot uncorrected (--engine pim only)",
    )
    assemble.add_argument(
        "--retention-interval-s",
        type=float,
        help="simulated refresh window (tREFW) in seconds for the "
        "retention model (default 0.064; implies --ecc secded unless "
        "--ecc off is given)",
    )
    assemble.add_argument(
        "--correct",
        action="store_true",
        help="run spectral error correction before assembly",
    )
    assemble.add_argument(
        "--lenient",
        action="store_true",
        help="quarantine malformed input records instead of aborting "
        "(the count is reported in the summary)",
    )
    assemble.add_argument(
        "--job-dir",
        help="journal the run as a crash-tolerant job in this directory "
        "(kill -9 safe; continue with --resume; --engine pim only)",
    )
    assemble.add_argument(
        "--resume",
        action="store_true",
        help="resume the job journaled in --job-dir from its last "
        "completed stage boundary",
    )
    assemble.add_argument(
        "--stage-timeout",
        type=float,
        help="per-stage deadline budget in seconds (job stays resumable "
        "after a timeout; requires --job-dir)",
    )
    assemble.add_argument(
        "--job-timeout",
        type=float,
        help="whole-job deadline budget in seconds (requires --job-dir)",
    )
    assemble.add_argument(
        "--trace-out",
        help="write the run's span timeline as Chrome/Perfetto "
        "trace-event JSON (load in ui.perfetto.dev; --engine pim only)",
    )
    assemble.add_argument(
        "--metrics-out",
        help="write the run's metrics snapshot (counters, histograms, "
        "sub-array heatmap) as JSON (--engine pim only)",
    )
    assemble.add_argument(
        "--aap-trace-out",
        help="record the run's AAP command stream as a verifiable trace "
        "document for `verify-trace` (--engine pim, no --job-dir)",
    )
    assemble.add_argument(
        "--aap-opt",
        action="store_true",
        help="optimise the recorded AAP stream (verified peephole "
        "passes + gang merge), replay it on a fresh device and assert "
        "the final row state bit-identical (--engine pim, "
        "--exec-engine scalar, no --job-dir/--ecc)",
    )
    assemble.add_argument(
        "--telemetry-out",
        help="write the run's metrics + power gauges as a Prometheus "
        "text-format exposition (plus a .json snapshot next to it; "
        "--engine pim only)",
    )

    verify_trace = sub.add_parser(
        "verify-trace",
        help="verify recorded AAP trace documents (dataflow, row "
        "designation, cost-model consistency); exit 1 on findings",
    )
    verify_trace.add_argument(
        "traces",
        nargs="+",
        help="trace document(s) written by `assemble --aap-trace-out`",
    )
    verify_trace.add_argument(
        "--max-findings",
        type=int,
        default=50,
        help="cap on findings printed per document (all are counted)",
    )
    verify_trace.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON report on stdout instead "
        "of the human-readable text (findings, counts, exit mapping)",
    )

    optimize_trace = sub.add_parser(
        "optimize-trace",
        help="optimise a recorded AAP trace document with translation-"
        "validated peephole passes; exit 1 when the input has findings "
        "or the equivalence checker rejects the rewrite",
    )
    optimize_trace.add_argument(
        "trace",
        help="trace document written by `assemble --aap-trace-out`",
    )
    optimize_trace.add_argument(
        "-o",
        "--output",
        help="where to write the optimised document "
        "(default: <trace>.opt.json)",
    )
    optimize_trace.add_argument(
        "--no-gang-merge",
        action="store_true",
        help="skip the cross-sub-array gang scheduling pass (keep the "
        "original command interleaving)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a batch of assembly jobs through the multi-tenant "
        "service (per-tenant quotas, fair scheduling, crash-resume, "
        "graceful degradation); exit 4 if admission shed submissions",
    )
    serve.add_argument(
        "manifest",
        help="JSON batch manifest: {workers, tenants: {name: quota}, "
        "jobs: [{tenant, name, reads, k, ...}]} — see docs/ARCHITECTURE.md",
    )
    serve.add_argument(
        "--job-root",
        help="directory for the per-job journals "
        "(default: <manifest>.jobs/ next to the manifest)",
    )
    serve.add_argument(
        "--trace-out",
        help="write the service's span timeline (service lane included) "
        "as Chrome/Perfetto trace-event JSON",
    )
    serve.add_argument(
        "--metrics-out",
        help="write the service's metrics snapshot (queue depths, "
        "per-tenant latency histograms, shed/trip counters) as JSON",
    )
    serve.add_argument(
        "--ecc",
        choices=("off", "secded"),
        help="default data-at-rest protection for every job in the "
        "batch (a job's manifest entry may override with its own "
        "'ecc' key)",
    )
    serve.add_argument(
        "--retention-interval-s",
        type=float,
        help="default simulated refresh window (tREFW) in seconds for "
        "the batch (per-job 'retention_interval_s' overrides)",
    )
    serve.add_argument(
        "--telemetry-out",
        help="write (and refresh every scheduler round) a Prometheus "
        "text-format exposition of the service metrics, SLO burn "
        "rates and power gauges",
    )

    inspect_cmd = sub.add_parser(
        "inspect",
        help="per-stage accounting of a journaled job directory, or a "
        "per-tenant rollup of a whole service root "
        "(works on crashed and timed-out jobs)",
    )
    inspect_cmd.add_argument(
        "job_dir",
        help="job directory (from --job-dir) or service root "
        "(from serve --job-root)",
    )
    inspect_cmd.add_argument(
        "--top-k",
        type=int,
        default=8,
        help="how many of the hottest command mnemonics to list",
    )

    simulate = sub.add_parser("simulate", help="generate reference + reads")
    simulate.add_argument("-o", "--output-dir", required=True)
    simulate.add_argument("--length", type=int, default=10_000)
    simulate.add_argument("--coverage", type=float, default=30.0)
    simulate.add_argument("--read-length", type=int, default=101)
    simulate.add_argument("--error-rate", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=14)
    simulate.add_argument(
        "--paired", action="store_true", help="paired-end with 400bp inserts"
    )

    scaffold = sub.add_parser(
        "scaffold", help="mate-pair scaffold assembled contigs"
    )
    scaffold.add_argument("contigs", help="contig FASTA (from `assemble`)")
    scaffold.add_argument(
        "pairs", help="paired FASTQ with /1 and /2 mate naming"
    )
    scaffold.add_argument("-o", "--output", required=True, help="scaffold FASTA")
    scaffold.add_argument(
        "--insert-mean", type=int, default=400, help="library insert size"
    )
    scaffold.add_argument(
        "--min-links", type=int, default=3, help="pairs required per join"
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--csv-dir", help="also export CSVs into this directory"
    )
    experiments.add_argument(
        "--report", help="write a full markdown report (with claim checks)"
    )
    experiments.add_argument(
        "--only",
        choices=("fig3b", "table1", "fig9", "fig10", "fig11", "area"),
        help="run a single experiment",
    )
    return parser


def _load_reads(path: str, strict: bool = True):
    """Load FASTA/FASTQ reads in one pass over one open stream.

    The format is sniffed from the first non-blank byte (``@`` → FASTQ,
    ``>`` → FASTA) and the same stream is then parsed once — the file
    is never slurped into memory and never read twice.  All failure
    modes (missing file, empty file, wrong format, malformed records,
    non-ACGT bases) raise :class:`~repro.errors.InputError`, which
    ``main()`` maps to a one-line message and a clean nonzero exit.

    Returns:
        ``(reads, report)`` — the reads plus the lenient-mode
        :class:`~repro.genome.io_fasta.ParseReport` (quarantine tally;
        always zero when ``strict=True``).
    """
    from repro.errors import InputError
    from repro.genome.io_fasta import ParseReport, parse_fasta, parse_fastq
    from repro.genome.reads import Read
    from repro.genome.sequence import DnaSequence

    try:
        stream = open(path, "r", encoding="ascii")
    except FileNotFoundError:
        raise InputError(f"reads file not found: {path}")
    except OSError as exc:
        raise InputError(f"cannot open {path}: {exc}")

    report = ParseReport()
    reads = []
    with stream:
        try:
            first = ""
            while True:
                line = stream.readline()
                if not line:
                    break
                stripped = line.strip()
                if stripped:
                    first = stripped[0]
                    break
            if not first:
                raise InputError(f"no reads found in {path}: file is empty")
            stream.seek(0)
            if first == "@":
                records = parse_fastq(stream, strict=strict, report=report)
            elif first == ">":
                records = parse_fasta(stream, strict=strict, report=report)
            else:
                raise InputError(
                    f"{path} is neither FASTA nor FASTQ "
                    f"(first byte {first!r}, expected '>' or '@')"
                )
            for i, record in enumerate(records):
                reads.append(
                    Read(record.name, DnaSequence(record.sequence), start=i)
                )
        except UnicodeDecodeError as exc:
            raise InputError(f"{path} is not ASCII text: {exc}")
        except ValueError as exc:
            raise InputError(f"malformed reads in {path}: {exc}")
    if not reads:
        raise InputError(f"no reads found in {path}")
    return reads, report


def _cmd_assemble(args: argparse.Namespace) -> int:
    from repro.assembly import assemble, assemble_with_pim
    from repro.assembly.bidirected import assemble_bidirected
    from repro.errors import InputError
    from repro.genome.io_fasta import FastaRecord, write_fasta

    if args.k < 2:
        raise InputError(f"--k must be >= 2 (got {args.k})")
    if args.min_count < 1:
        raise InputError(f"--min-count must be >= 1 (got {args.min_count})")
    if args.resume and not args.job_dir:
        raise InputError("--resume requires --job-dir")
    for name, value in (
        ("--stage-timeout", args.stage_timeout),
        ("--job-timeout", args.job_timeout),
        ("--retention-interval-s", args.retention_interval_s),
    ):
        if value is not None and value <= 0:
            raise InputError(
                f"{name} must be a positive number of seconds (got {value})"
            )
    if (args.ecc or args.retention_interval_s) and args.engine != "pim":
        raise InputError("--ecc/--retention-interval-s require --engine pim")
    if (args.stage_timeout or args.job_timeout) and not args.job_dir:
        raise InputError("--stage-timeout/--job-timeout require --job-dir")
    if args.job_dir and args.engine != "pim":
        raise InputError("--job-dir requires --engine pim")
    if (
        args.trace_out or args.metrics_out or args.telemetry_out
    ) and args.engine != "pim":
        raise InputError(
            "--trace-out/--metrics-out/--telemetry-out require --engine pim"
        )
    if args.aap_trace_out and args.engine != "pim":
        raise InputError("--aap-trace-out requires --engine pim")
    if args.aap_trace_out and args.job_dir:
        raise InputError(
            "--aap-trace-out records one in-process run and cannot "
            "follow a job across resumes; drop --job-dir"
        )
    if args.aap_opt:
        if args.engine != "pim":
            raise InputError("--aap-opt requires --engine pim")
        if args.exec_engine != "scalar":
            raise InputError(
                "--aap-opt requires --exec-engine scalar (the bulk "
                "engine records a partial stream, not a program)"
            )
        if args.job_dir:
            raise InputError(
                "--aap-opt records one in-process run and cannot "
                "follow a job across resumes; drop --job-dir"
            )
        if args.ecc or args.retention_interval_s:
            raise InputError(
                "--aap-opt cannot optimise integrity-instrumented "
                "streams (REF/ECC commands carry no peephole semantics)"
            )

    reads, parse_report = _load_reads(args.reads, strict=not args.lenient)
    if parse_report.quarantined:
        print(
            f"input: quarantined {parse_report.quarantined} malformed "
            f"record(s) ({'; '.join(parse_report.reasons[:3])}"
            f"{', ...' if len(parse_report.reasons) > 3 else ''})"
        )
    if args.correct:
        from repro.assembly.correction import correct_reads

        result = correct_reads(reads, k=max(9, args.k - 6))
        print(
            f"correction: {result.corrected_reads} reads / "
            f"{result.corrected_bases} bases fixed"
        )
        reads = result.reads

    if args.engine == "pim":
        from contextlib import ExitStack

        session = None
        if args.trace_out or args.metrics_out or args.telemetry_out:
            from repro.observability.session import ObservabilitySession

            session = ObservabilitySession()
        with ExitStack() as stack:
            if session is not None:
                stack.enter_context(session.activate())
            if args.job_dir:
                from repro.runtime.jobs import JobConfig, JobRunner

                runner = JobRunner(
                    args.job_dir,
                    JobConfig(
                        k=args.k,
                        min_count=args.min_count,
                        min_contig_length=args.min_contig,
                        engine=args.exec_engine,
                        ecc=args.ecc,
                        retention_interval_s=args.retention_interval_s,
                        stage_timeout_s=args.stage_timeout,
                        job_timeout_s=args.job_timeout,
                    ),
                )
                job = runner.run(reads, resume=args.resume)
                outcome = job.result
                pim = runner._pim
                print(f"job: {job.report}")
            else:
                from repro.assembly.pipeline import _sized_device

                pim = _sized_device(reads, args.k)
                if args.ecc or args.retention_interval_s:
                    from repro.core.integrity import IntegrityConfig

                    kwargs = {"ecc": args.ecc or "secded"}
                    if args.retention_interval_s is not None:
                        kwargs["retention_interval_s"] = (
                            args.retention_interval_s
                        )
                    pim.attach_integrity(IntegrityConfig(**kwargs))
                recorder = None
                if args.aap_trace_out or args.aap_opt:
                    from repro.analysis.tracefile import TraceRecorder

                    recorder = TraceRecorder(pim, engine=args.exec_engine)
                    stack.enter_context(recorder)
                outcome = assemble_with_pim(
                    reads,
                    k=args.k,
                    pim=pim,
                    min_count=args.min_count,
                    min_contig_length=args.min_contig,
                    engine=args.exec_engine,
                )
                if recorder is not None:
                    doc = recorder.document(
                        reads=args.reads, k=args.k, command="assemble"
                    )
                    if args.aap_trace_out:
                        from repro.analysis.tracefile import save_document

                        path = save_document(args.aap_trace_out, doc)
                        print(
                            f"aap trace: wrote {len(doc.trace)} commands / "
                            f"{len(doc.charge_log)} charges -> {path}"
                        )
                    if args.aap_opt:
                        _replay_aap_opt(doc, reads, args.k, pim)
        if session is not None:
            for path in session.export(
                trace_path=args.trace_out,
                metrics_path=args.metrics_out,
                pim=pim,
                telemetry_path=args.telemetry_out,
            ):
                print(f"observability: wrote {path}")
        contigs = outcome.contigs
        print(
            f"simulated PIM time: {outcome.total_time_ns / 1e6:.2f} ms "
            f"({outcome.hashmap.time_ns / outcome.total_time_ns:.0%} hashmap)"
        )
        if outcome.integrity is not None:
            itg = outcome.integrity
            print(
                f"integrity: {itg.windows} refresh windows / "
                f"{itg.flips_injected} upsets / "
                f"{itg.words_corrected} corrected / "
                f"{itg.words_uncorrectable} uncorrectable"
            )
    elif args.engine == "software":
        contigs = assemble(
            reads,
            k=args.k,
            min_count=args.min_count,
            min_contig_length=args.min_contig,
        ).contigs
    else:
        contigs = assemble_bidirected(
            reads,
            k=args.k,
            min_count=args.min_count,
            min_contig_length=args.min_contig,
        )

    write_fasta(
        args.output,
        [FastaRecord(c.name, str(c.sequence)) for c in contigs],
    )
    total = sum(len(c) for c in contigs)
    print(f"{len(contigs)} contigs / {total} bp -> {args.output}")
    return 0


def _cmd_verify_trace(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.findings import EXIT_FINDINGS, EXIT_OK
    from repro.analysis.tracefile import load_document
    from repro.analysis.verifier import verify_document
    from repro.errors import InputError

    if args.max_findings < 1:
        raise InputError(
            f"--max-findings must be >= 1 (got {args.max_findings})"
        )
    total = 0
    documents = []
    for path in args.traces:
        doc = load_document(path)
        report = verify_document(doc, source=path)
        total += len(report)
        if args.json:
            documents.append(
                {
                    "path": path,
                    "engine": doc.engine,
                    "commands": len(doc.trace),
                    "charges": len(doc.charge_log),
                    **report.to_json(),
                }
            )
            continue
        shown = report.findings[: args.max_findings]
        for finding in shown:
            print(str(finding), file=sys.stderr)
        if len(report) > len(shown):
            print(
                f"... {len(report) - len(shown)} more finding(s) in {path}",
                file=sys.stderr,
            )
        status = "clean" if report.ok else f"{len(report)} finding(s)"
        print(
            f"{path}: {doc.engine} trace, {len(doc.trace)} commands, "
            f"{len(doc.charge_log)} charges — {status}"
        )
    if args.json:
        print(
            json.dumps(
                {
                    "documents": documents,
                    "total_findings": total,
                    "ok": total == 0,
                },
                indent=1,
            )
        )
    return EXIT_OK if total == 0 else EXIT_FINDINGS


def _replay_aap_opt(doc, reads, k: int, pim) -> None:
    """Optimise the recorded stream, replay it, assert state identity.

    Raises:
        ReproError: the equivalence checker rejected the rewrite, or
            the replayed final row state diverged from the original run
            (both indicate an optimiser bug — the run's own results are
            unaffected).
    """
    from repro.analysis.optimizer import optimize_document
    from repro.analysis.verifier import _doc_timing
    from repro.assembly.pipeline import _sized_device
    from repro.core.scheduler import charge_stream, replay_optimized
    from repro.errors import ReproError

    result = optimize_document(doc, source="<assemble>")
    for finding in result.report:
        print(str(finding), file=sys.stderr)
    if not result.ok:
        raise ReproError(
            "aap-opt: the equivalence checker rejected the optimised "
            "stream (see findings above)"
        )
    savings = result.savings
    fresh = _sized_device(reads, k)
    replay_report = replay_optimized(result.document, fresh.controller)
    keys = list(pim.device.subarray_keys())
    diverged = [
        key
        for key in keys
        if not (
            pim.device.subarray_at(key).snapshot()
            == fresh.device.subarray_at(key).snapshot()
        ).all()
    ]
    if diverged:
        raise ReproError(
            f"aap-opt: optimised replay diverged from the original run "
            f"on {len(diverged)} of {len(keys)} sub-array(s)"
        )
    timing = _doc_timing(doc)
    before = charge_stream(doc.trace, timing=timing)
    after = charge_stream(result.document.trace, timing=timing)
    cmd = savings["commands"]
    print(
        f"aap-opt: {cmd['before']} -> {cmd['after']} commands "
        f"(-{cmd['reduction']:.1%}), "
        f"energy -{savings['energy_nj']['reduction']:.1%}, "
        f"{replay_report.gang_slots} gang slots covering "
        f"{replay_report.ganged_commands} commands"
    )
    print(
        f"aap-opt: replay bit-identical on {len(keys)} sub-array(s); "
        f"coalesced makespan {before.makespan_ns / 1e3:.1f} -> "
        f"{after.makespan_ns / 1e3:.1f} us"
    )


def _cmd_optimize_trace(args: argparse.Namespace) -> int:
    from repro.analysis.findings import EXIT_FINDINGS, EXIT_OK
    from repro.analysis.optimizer import optimize_document
    from repro.analysis.tracefile import load_document, save_document
    from repro.analysis.verifier import _doc_timing, verify_document
    from repro.core.scheduler import charge_stream

    doc = load_document(args.trace)
    result = optimize_document(
        doc, source=args.trace, gang_merge=not args.no_gang_merge
    )
    for finding in result.report:
        print(str(finding), file=sys.stderr)
    if not result.ok:
        print(
            f"{args.trace}: rewrite REJECTED — nothing written "
            "(the original document is untouched)"
        )
        return EXIT_FINDINGS

    out = args.output or f"{args.trace}.opt.json"
    recheck = verify_document(result.document, source=out)
    if not recheck.ok:
        for finding in recheck.findings:
            print(str(finding), file=sys.stderr)
        print(
            f"{args.trace}: optimised stream fails re-verification — "
            "nothing written"
        )
        return EXIT_FINDINGS
    path = save_document(out, result.document)

    if result.identity:
        print(
            f"{args.trace}: returned unchanged "
            f"({len(doc.trace)} commands) -> {path}"
        )
        return EXIT_OK if result.report.ok else EXIT_FINDINGS

    savings = result.savings
    cmd = savings["commands"]
    energy = savings["energy_nj"]
    gangs = savings["gangs"]
    timing = _doc_timing(doc)
    before = charge_stream(doc.trace, timing=timing)
    after = charge_stream(result.document.trace, timing=timing)
    print(
        f"{args.trace}: {cmd['before']} -> {cmd['after']} commands "
        f"(-{cmd['reduction']:.1%}), "
        f"energy {energy['before']:.0f} -> {energy['after']:.0f} nJ "
        f"(-{energy['reduction']:.1%}), "
        f"{gangs['slots']} gang slots covering {gangs['commands']} "
        "commands"
    )
    print(
        f"{args.trace}: equivalence proven, re-verification clean; "
        f"coalesced makespan {before.makespan_ns / 1e3:.1f} -> "
        f"{after.makespan_ns / 1e3:.1f} us -> {path}"
    )
    return EXIT_OK if result.report.ok else EXIT_FINDINGS


def _parse_serve_manifest(path: str) -> dict:
    """Load and structurally validate a ``serve`` batch manifest."""
    import json

    from repro.errors import InputError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise InputError(f"manifest not found: {path}")
    except OSError as exc:
        raise InputError(f"cannot open {path}: {exc}")
    except (UnicodeDecodeError, ValueError) as exc:
        raise InputError(f"manifest {path} is not valid JSON: {exc}")
    if not isinstance(manifest, dict):
        raise InputError(f"manifest {path} must be a JSON object")
    jobs = manifest.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise InputError(
            f"manifest {path} needs a non-empty 'jobs' list"
        )
    for i, job in enumerate(jobs):
        if not isinstance(job, dict):
            raise InputError(f"manifest job #{i} must be a JSON object")
        for key in ("tenant", "reads"):
            if not isinstance(job.get(key), str) or not job.get(key):
                raise InputError(
                    f"manifest job #{i} needs a non-empty string {key!r}"
                )
    tenants = manifest.get("tenants", {})
    if not isinstance(tenants, dict):
        raise InputError(
            f"manifest {path}: 'tenants' must map tenant -> quota object"
        )
    slos = manifest.get("slos", {})
    if not isinstance(slos, dict):
        raise InputError(
            f"manifest {path}: 'slos' must map tenant -> objective object"
        )
    alerts = manifest.get("alerts", [])
    if not isinstance(alerts, list):
        raise InputError(
            f"manifest {path}: 'alerts' must be a list of rule "
            "expressions or objects"
        )
    return manifest


def _cmd_serve(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.errors import AdmissionError, InputError
    from repro.genome.io_fasta import FastaRecord, write_fasta
    from repro.runtime.jobs import JobConfig
    from repro.service import AssemblyService, ServiceConfig, TenantQuota

    if args.retention_interval_s is not None and args.retention_interval_s <= 0:
        raise InputError(
            "--retention-interval-s must be a positive number of seconds "
            f"(got {args.retention_interval_s})"
        )
    manifest_path = Path(args.manifest)
    manifest = _parse_serve_manifest(args.manifest)
    base = manifest_path.resolve().parent

    def resolved(value: str) -> Path:
        p = Path(value)
        return p if p.is_absolute() else base / p

    try:
        quotas = {
            tenant: TenantQuota(**entry)
            for tenant, entry in manifest.get("tenants", {}).items()
        }
        config = ServiceConfig(
            workers=int(manifest.get("workers", 2)),
            max_total_queued=int(manifest.get("max_total_queued", 64)),
            max_dispatches=int(manifest.get("max_dispatches", 3)),
            degrade_engine_depth=manifest.get("degrade_engine_depth"),
            degrade_batch_depth=manifest.get("degrade_batch_depth"),
            seed=int(manifest.get("seed", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise InputError(f"manifest {args.manifest}: {exc}")

    from repro.observability.slo import AlertRule, SloObjective

    slos = [
        SloObjective.from_manifest(tenant, spec)
        for tenant, spec in manifest.get("slos", {}).items()
    ]
    alert_rules = [
        AlertRule.from_manifest(spec) for spec in manifest.get("alerts", [])
    ]

    job_root = (
        Path(args.job_root)
        if args.job_root
        else manifest_path.with_name(manifest_path.name + ".jobs")
    )
    session = None
    if args.trace_out or args.metrics_out or args.telemetry_out:
        from repro.observability.session import ObservabilitySession

        session = ObservabilitySession()

    service = AssemblyService(
        job_root,
        config,
        quotas,
        slos=slos,
        alert_rules=alert_rules,
        telemetry_path=args.telemetry_out,
    )
    entries: dict[str, dict] = {}
    submit_errors = 0

    with ExitStack() as stack:
        if session is not None:
            stack.enter_context(session.activate())
        for i, job in enumerate(manifest["jobs"]):
            tenant = job["tenant"]
            name = str(job.get("name") or f"job-{i:03d}")
            reads_path = resolved(job["reads"])
            try:
                ecc = job.get("ecc", args.ecc)
                retention = job.get(
                    "retention_interval_s", args.retention_interval_s
                )
                job_config = JobConfig(
                    k=int(job.get("k", 21)),
                    min_count=int(job.get("min_count", 1)),
                    min_contig_length=int(job.get("min_contig", 0)),
                    engine=str(job.get("engine", "scalar")),
                    resilience=job.get("resilience"),
                    ecc=None if ecc is None else str(ecc),
                    retention_interval_s=(
                        None if retention is None else float(retention)
                    ),
                )
                try:
                    input_bytes = reads_path.stat().st_size
                except OSError:
                    raise InputError(f"reads file not found: {reads_path}")
                service.submit(
                    tenant,
                    name,
                    lambda p=reads_path: _load_reads(str(p))[0],
                    job_config,
                    deadline_s=job.get("deadline_s"),
                    stage_timeout_s=job.get("stage_timeout_s"),
                    input_bytes=input_bytes,
                )
                entries[f"{tenant}/{name}"] = job
            except AdmissionError as exc:
                print(f"shed: {tenant}/{name}: [{exc.reason}] {exc}")
            except (TypeError, ValueError) as exc:
                submit_errors += 1
                print(f"error: {tenant}/{name}: {exc}", file=sys.stderr)
            except InputError as exc:
                submit_errors += 1
                print(f"error: {tenant}/{name}: {exc}", file=sys.stderr)
        report = service.drain()

    for ticket in report.tickets:
        line = ticket.describe()
        job = entries.get(f"{ticket.tenant}/{ticket.name}", {})
        output = job.get("output")
        if ticket.outcome is not None and output:
            out_path = resolved(str(output))
            contigs = ticket.outcome.result.contigs
            write_fasta(
                out_path,
                [FastaRecord(c.name, str(c.sequence)) for c in contigs],
            )
            line += f" -> {out_path}"
        print(line)
    print(report)
    for alert in service.alert_events:
        print(
            f"alert [{alert.severity}]: {alert.name} "
            f"({alert.expression}; value={alert.value:g})"
        )
    if session is not None:
        for path in session.export(
            trace_path=args.trace_out,
            metrics_path=args.metrics_out,
            telemetry_path=args.telemetry_out,
        ):
            print(f"observability: wrote {path}")
    if report.failed or submit_errors:
        return EXIT_RUNTIME_ERROR
    if report.shed:
        return EXIT_ADMISSION
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.errors import InputError
    from repro.observability.inspect import render_inspection

    if args.top_k < 1:
        raise InputError(f"--top-k must be >= 1 (got {args.top_k})")
    print(render_inspection(args.job_dir, top_k=args.top_k))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.genome.io_fasta import FastaRecord, FastqRecord, write_fasta, write_fastq
    from repro.genome.reference import synthetic_chromosome

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    reference = synthetic_chromosome(args.length, seed=args.seed)
    write_fasta(out / "reference.fa", [FastaRecord("chr_synth", str(reference))])

    if args.paired:
        from repro.genome.paired import PairedReadSimulator, all_reads

        sim = PairedReadSimulator(
            read_length=args.read_length,
            seed=args.seed + 1,
            error_rate=args.error_rate,
        )
        pairs = sim.sample(
            reference, sim.pairs_for_coverage(args.length, args.coverage)
        )
        reads = all_reads(pairs)
        count_msg = f"{len(pairs)} pairs"
    else:
        from repro.genome.reads import ReadSimulator

        sim = ReadSimulator(
            read_length=args.read_length,
            seed=args.seed + 1,
            error_rate=args.error_rate,
        )
        reads = sim.sample(
            reference, sim.reads_for_coverage(args.length, args.coverage)
        )
        count_msg = f"{len(reads)} reads"

    write_fastq(
        out / "reads.fq",
        [FastqRecord(r.name, str(r.sequence)) for r in reads],
    )
    print(
        f"reference.fa ({args.length} bp) + reads.fq ({count_msg}) -> {out}/"
    )
    return 0


def _load_pairs(path: str, insert_mean: int):
    """Reconstruct ReadPair objects from /1-/2 mate naming."""
    from repro.errors import InputError
    from repro.genome.io_fasta import read_fastq
    from repro.genome.paired import ReadPair
    from repro.genome.reads import Read
    from repro.genome.sequence import DnaSequence

    try:
        records = read_fastq(path)
    except FileNotFoundError:
        raise InputError(f"pairs file not found: {path}")
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        raise InputError(f"cannot parse pairs from {path}: {exc}")

    mates: dict[str, dict[str, Read]] = {}
    for i, record in enumerate(records):
        name, _, mate = record.name.rpartition("/")
        if mate not in ("1", "2") or not name:
            continue
        mates.setdefault(name, {})[mate] = Read(
            record.name,
            DnaSequence(record.sequence),
            start=i,
            reverse=(mate == "2"),
        )
    pairs = []
    for name, sides in mates.items():
        if "1" in sides and "2" in sides:
            pairs.append(
                ReadPair(
                    name=name,
                    left=sides["1"],
                    right=sides["2"],
                    insert_size=insert_mean,
                )
            )
    if not pairs:
        raise InputError(f"no /1-/2 mate pairs found in {path}")
    return pairs


def _cmd_scaffold(args: argparse.Namespace) -> int:
    from repro.assembly.contigs import Contig
    from repro.assembly.mate_scaffold import scaffold_assembly
    from repro.genome.io_fasta import FastaRecord, read_fasta, write_fasta
    from repro.genome.sequence import DnaSequence

    contigs = [
        Contig(r.name, DnaSequence(r.sequence), edge_count=1)
        for r in read_fasta(args.contigs)
    ]
    pairs = _load_pairs(args.pairs, args.insert_mean)
    scaffolds = scaffold_assembly(
        contigs, pairs, insert_mean=args.insert_mean, min_links=args.min_links
    )
    write_fasta(
        args.output,
        [FastaRecord(s.name, s.sequence_with_gaps) for s in scaffolds],
    )
    joined = sum(1 for s in scaffolds if len(s.members) > 1)
    print(
        f"{len(contigs)} contigs -> {len(scaffolds)} scaffolds "
        f"({joined} joins) -> {args.output}"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.eval import (
        chr14_workload,
        run_all,
        run_area_study,
        run_memory_wall_study,
        run_reliability_table,
        run_throughput_sweep,
        run_tradeoff_sweep,
    )
    from repro.eval.reliability import format_table
    from repro.eval.tables import (
        format_execution,
        format_memory_wall,
        format_speedups,
        format_throughput,
        format_tradeoff,
    )
    from repro.platforms import assembly_platforms

    def want(name: str) -> bool:
        return args.only is None or args.only == name

    if want("fig3b"):
        print("== Fig. 3b: raw throughput ==")
        print(format_throughput(run_throughput_sweep()))
    if want("table1"):
        print("\n== Table I: process variation ==")
        print(format_table(run_reliability_table()))
    if want("area"):
        print("\n== Area overhead ==")
        print("\n".join(run_area_study().breakdown_lines()))
    if want("fig9"):
        print("\n== Fig. 9: chr14 execution time & power ==")
        platforms = assembly_platforms()
        for k in (16, 22, 26, 32):
            results = run_all(platforms, chr14_workload(k))
            print(format_execution(results))
            print("      " + format_speedups(results))
    if want("fig10"):
        print("\n== Fig. 10: power/delay vs Pd ==")
        print(format_tradeoff(run_tradeoff_sweep()))
    if want("fig11"):
        print("\n== Fig. 11: MBR / RUR ==")
        print(format_memory_wall(run_memory_wall_study()))

    if args.csv_dir:
        from repro.eval.export import export_all

        written = export_all(args.csv_dir)
        print(f"\nwrote {len(written)} CSV files to {args.csv_dir}/")
    if args.report:
        from repro.eval.reporting import write_report

        path = write_report(args.report)
        print(f"wrote report to {path}")
    return 0


#: exit codes of the typed error families (0 = success)
EXIT_INPUT_ERROR = 2
EXIT_RUNTIME_ERROR = 3
#: admission control shed the work (matches findings.EXIT_ADMISSION)
EXIT_ADMISSION = 4


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Typed library errors become one-line ``error: ...`` messages on
    stderr with a stable nonzero exit code — never a traceback:
    :class:`~repro.errors.InputError` exits ``2`` (unusable input),
    :class:`~repro.errors.AdmissionError` exits ``4`` (the service shed
    the work under load — retry later), and every other
    :class:`~repro.errors.ReproError` exits ``3`` (e.g. a
    :class:`~repro.errors.StageTimeoutError`, after which the job
    journal remains resumable).
    """
    from repro.errors import AdmissionError, InputError, ReproError

    args = _build_parser().parse_args(argv)
    handlers = {
        "assemble": _cmd_assemble,
        "verify-trace": _cmd_verify_trace,
        "optimize-trace": _cmd_optimize_trace,
        "serve": _cmd_serve,
        "inspect": _cmd_inspect,
        "simulate": _cmd_simulate,
        "scaffold": _cmd_scaffold,
        "experiments": _cmd_experiments,
    }
    try:
        return handlers[args.command](args)
    except InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    except AdmissionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ADMISSION
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUNTIME_ERROR


if __name__ == "__main__":
    sys.exit(main())
