"""Command-line interface for PIM-Assembler.

Three subcommands cover the workflows a downstream user needs:

* ``pim-assembler assemble`` — assemble FASTA/FASTQ reads into contigs
  on the PIM functional simulator (or the software golden model);
* ``pim-assembler simulate`` — generate a synthetic reference and a
  read set (single- or paired-end) for experiments;
* ``pim-assembler experiments`` — regenerate the paper's tables and
  figures, printing them and/or exporting CSVs.

Installed as a console script (see ``pyproject.toml``); also runnable
as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pim-assembler",
        description="PIM-Assembler: processing-in-DRAM genome assembly "
        "(DAC 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    assemble = sub.add_parser("assemble", help="assemble reads into contigs")
    assemble.add_argument("reads", help="FASTA or FASTQ file of reads")
    assemble.add_argument("-o", "--output", required=True, help="contig FASTA")
    assemble.add_argument("-k", type=int, default=21, help="k-mer length")
    assemble.add_argument(
        "--min-count", type=int, default=1, help="k-mer frequency threshold"
    )
    assemble.add_argument(
        "--min-contig", type=int, default=0, help="drop shorter contigs"
    )
    assemble.add_argument(
        "--engine",
        choices=("pim", "software", "bidirected"),
        default="pim",
        help="assembly engine (default: the PIM functional simulator)",
    )
    assemble.add_argument(
        "--exec-engine",
        choices=("scalar", "bulk"),
        default="scalar",
        help="PIM simulator execution engine: 'scalar' issues commands "
        "one at a time (golden model), 'bulk' batches them as "
        "bit-plane gangs (same results, much faster simulation)",
    )
    assemble.add_argument(
        "--correct",
        action="store_true",
        help="run spectral error correction before assembly",
    )

    simulate = sub.add_parser("simulate", help="generate reference + reads")
    simulate.add_argument("-o", "--output-dir", required=True)
    simulate.add_argument("--length", type=int, default=10_000)
    simulate.add_argument("--coverage", type=float, default=30.0)
    simulate.add_argument("--read-length", type=int, default=101)
    simulate.add_argument("--error-rate", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=14)
    simulate.add_argument(
        "--paired", action="store_true", help="paired-end with 400bp inserts"
    )

    scaffold = sub.add_parser(
        "scaffold", help="mate-pair scaffold assembled contigs"
    )
    scaffold.add_argument("contigs", help="contig FASTA (from `assemble`)")
    scaffold.add_argument(
        "pairs", help="paired FASTQ with /1 and /2 mate naming"
    )
    scaffold.add_argument("-o", "--output", required=True, help="scaffold FASTA")
    scaffold.add_argument(
        "--insert-mean", type=int, default=400, help="library insert size"
    )
    scaffold.add_argument(
        "--min-links", type=int, default=3, help="pairs required per join"
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--csv-dir", help="also export CSVs into this directory"
    )
    experiments.add_argument(
        "--report", help="write a full markdown report (with claim checks)"
    )
    experiments.add_argument(
        "--only",
        choices=("fig3b", "table1", "fig9", "fig10", "fig11", "area"),
        help="run a single experiment",
    )
    return parser


def _load_reads(path: str):
    from repro.genome.io_fasta import read_fasta, read_fastq
    from repro.genome.reads import Read
    from repro.genome.sequence import DnaSequence

    text = Path(path).read_text(encoding="ascii", errors="strict")
    reads = []
    if text.lstrip().startswith("@"):
        for i, record in enumerate(read_fastq(path)):
            reads.append(
                Read(record.name, DnaSequence(record.sequence), start=i)
            )
    else:
        for i, record in enumerate(read_fasta(path)):
            reads.append(
                Read(record.name, DnaSequence(record.sequence), start=i)
            )
    if not reads:
        raise SystemExit(f"no reads found in {path}")
    return reads


def _cmd_assemble(args: argparse.Namespace) -> int:
    from repro.assembly import assemble, assemble_with_pim
    from repro.assembly.bidirected import assemble_bidirected
    from repro.genome.io_fasta import FastaRecord, write_fasta

    reads = _load_reads(args.reads)
    if args.correct:
        from repro.assembly.correction import correct_reads

        result = correct_reads(reads, k=max(9, args.k - 6))
        print(
            f"correction: {result.corrected_reads} reads / "
            f"{result.corrected_bases} bases fixed"
        )
        reads = result.reads

    if args.engine == "pim":
        outcome = assemble_with_pim(
            reads,
            k=args.k,
            min_count=args.min_count,
            min_contig_length=args.min_contig,
            engine=args.exec_engine,
        )
        contigs = outcome.contigs
        print(
            f"simulated PIM time: {outcome.total_time_ns / 1e6:.2f} ms "
            f"({outcome.hashmap.time_ns / outcome.total_time_ns:.0%} hashmap)"
        )
    elif args.engine == "software":
        contigs = assemble(
            reads,
            k=args.k,
            min_count=args.min_count,
            min_contig_length=args.min_contig,
        ).contigs
    else:
        contigs = assemble_bidirected(
            reads,
            k=args.k,
            min_count=args.min_count,
            min_contig_length=args.min_contig,
        )

    write_fasta(
        args.output,
        [FastaRecord(c.name, str(c.sequence)) for c in contigs],
    )
    total = sum(len(c) for c in contigs)
    print(f"{len(contigs)} contigs / {total} bp -> {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.genome.io_fasta import FastaRecord, FastqRecord, write_fasta, write_fastq
    from repro.genome.reference import synthetic_chromosome

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    reference = synthetic_chromosome(args.length, seed=args.seed)
    write_fasta(out / "reference.fa", [FastaRecord("chr_synth", str(reference))])

    if args.paired:
        from repro.genome.paired import PairedReadSimulator, all_reads

        sim = PairedReadSimulator(
            read_length=args.read_length,
            seed=args.seed + 1,
            error_rate=args.error_rate,
        )
        pairs = sim.sample(
            reference, sim.pairs_for_coverage(args.length, args.coverage)
        )
        reads = all_reads(pairs)
        count_msg = f"{len(pairs)} pairs"
    else:
        from repro.genome.reads import ReadSimulator

        sim = ReadSimulator(
            read_length=args.read_length,
            seed=args.seed + 1,
            error_rate=args.error_rate,
        )
        reads = sim.sample(
            reference, sim.reads_for_coverage(args.length, args.coverage)
        )
        count_msg = f"{len(reads)} reads"

    write_fastq(
        out / "reads.fq",
        [FastqRecord(r.name, str(r.sequence)) for r in reads],
    )
    print(
        f"reference.fa ({args.length} bp) + reads.fq ({count_msg}) -> {out}/"
    )
    return 0


def _load_pairs(path: str, insert_mean: int):
    """Reconstruct ReadPair objects from /1-/2 mate naming."""
    from repro.genome.io_fasta import read_fastq
    from repro.genome.paired import ReadPair
    from repro.genome.reads import Read
    from repro.genome.sequence import DnaSequence

    mates: dict[str, dict[str, Read]] = {}
    for i, record in enumerate(read_fastq(path)):
        name, _, mate = record.name.rpartition("/")
        if mate not in ("1", "2") or not name:
            continue
        mates.setdefault(name, {})[mate] = Read(
            record.name,
            DnaSequence(record.sequence),
            start=i,
            reverse=(mate == "2"),
        )
    pairs = []
    for name, sides in mates.items():
        if "1" in sides and "2" in sides:
            pairs.append(
                ReadPair(
                    name=name,
                    left=sides["1"],
                    right=sides["2"],
                    insert_size=insert_mean,
                )
            )
    if not pairs:
        raise SystemExit(f"no /1-/2 mate pairs found in {path}")
    return pairs


def _cmd_scaffold(args: argparse.Namespace) -> int:
    from repro.assembly.contigs import Contig
    from repro.assembly.mate_scaffold import scaffold_assembly
    from repro.genome.io_fasta import FastaRecord, read_fasta, write_fasta
    from repro.genome.sequence import DnaSequence

    contigs = [
        Contig(r.name, DnaSequence(r.sequence), edge_count=1)
        for r in read_fasta(args.contigs)
    ]
    pairs = _load_pairs(args.pairs, args.insert_mean)
    scaffolds = scaffold_assembly(
        contigs, pairs, insert_mean=args.insert_mean, min_links=args.min_links
    )
    write_fasta(
        args.output,
        [FastaRecord(s.name, s.sequence_with_gaps) for s in scaffolds],
    )
    joined = sum(1 for s in scaffolds if len(s.members) > 1)
    print(
        f"{len(contigs)} contigs -> {len(scaffolds)} scaffolds "
        f"({joined} joins) -> {args.output}"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.eval import (
        chr14_workload,
        run_all,
        run_area_study,
        run_memory_wall_study,
        run_reliability_table,
        run_throughput_sweep,
        run_tradeoff_sweep,
    )
    from repro.eval.reliability import format_table
    from repro.eval.tables import (
        format_execution,
        format_memory_wall,
        format_speedups,
        format_throughput,
        format_tradeoff,
    )
    from repro.platforms import assembly_platforms

    def want(name: str) -> bool:
        return args.only is None or args.only == name

    if want("fig3b"):
        print("== Fig. 3b: raw throughput ==")
        print(format_throughput(run_throughput_sweep()))
    if want("table1"):
        print("\n== Table I: process variation ==")
        print(format_table(run_reliability_table()))
    if want("area"):
        print("\n== Area overhead ==")
        print("\n".join(run_area_study().breakdown_lines()))
    if want("fig9"):
        print("\n== Fig. 9: chr14 execution time & power ==")
        platforms = assembly_platforms()
        for k in (16, 22, 26, 32):
            results = run_all(platforms, chr14_workload(k))
            print(format_execution(results))
            print("      " + format_speedups(results))
    if want("fig10"):
        print("\n== Fig. 10: power/delay vs Pd ==")
        print(format_tradeoff(run_tradeoff_sweep()))
    if want("fig11"):
        print("\n== Fig. 11: MBR / RUR ==")
        print(format_memory_wall(run_memory_wall_study()))

    if args.csv_dir:
        from repro.eval.export import export_all

        written = export_all(args.csv_dir)
        print(f"\nwrote {len(written)} CSV files to {args.csv_dir}/")
    if args.report:
        from repro.eval.reporting import write_report

        path = write_report(args.report)
        print(f"wrote report to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "assemble": _cmd_assemble,
        "simulate": _cmd_simulate,
        "scaffold": _cmd_scaffold,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
