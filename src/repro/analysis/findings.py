"""The shared findings model of the static-analysis layer.

Every checker in this package — the AAP trace verifier, the AST lint
pass, the mypy gate — and the observability trace validator report
through one vocabulary: a :class:`Finding` names the violated rule, a
severity, a human-readable message and where in the artefact (file,
line, trace position) the problem sits.  A :class:`FindingReport`
aggregates them and maps onto the process exit-code taxonomy the CLI
already uses:

=====================  ====  ==========================================
outcome                exit  meaning
=====================  ====  ==========================================
clean                  0     no findings
findings               1     at least one finding (linter convention)
bad input              2     ``InputError`` family (unreadable trace,
                             missing file) — matches ``repro.cli``
runtime failure        3     any other ``ReproError`` — matches
                             ``repro.cli``
=====================  ====  ==========================================

This module is stdlib-only by design: :mod:`repro.observability`
imports it, and observability must stay importable without numpy-heavy
core modules loaded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "EXIT_ADMISSION",
    "EXIT_FINDINGS",
    "EXIT_INPUT",
    "EXIT_OK",
    "EXIT_RUNTIME",
    "Finding",
    "FindingReport",
    "Severity",
]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_INPUT = 2
EXIT_RUNTIME = 3
#: the service shed the work (`repro.errors.AdmissionError`) — the
#: submission was well-formed but the deployment refused to take it
EXIT_ADMISSION = 4


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are
    reported but do not affect the exit code (none of the current
    rules emit them — the slot exists so a future soft rule does not
    need a model change).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: stable rule identifier (``V003``, ``L001``, ``C002``,
            ``T001``, ``X001`` ...) — what tests and allowlists key on.
        message: human-readable description of the violation.
        source: the artefact the finding is about (a file path, a trace
            document name, ``"<charge-log>"``).
        location: position inside the source — a line number for lint
            findings, a command index for trace findings; ``None`` when
            the finding is about the artefact as a whole.
        severity: see :class:`Severity`.
    """

    rule: str
    message: str
    source: str = ""
    location: int | None = None
    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        where = self.source or "<input>"
        if self.location is not None:
            where = f"{where}:{self.location}"
        return f"{where}: {self.severity}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        """JSON-serialisable form (CI and external tooling consume it)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "source": self.source,
            "location": self.location,
        }


@dataclass
class FindingReport:
    """An ordered collection of findings plus its exit-code mapping."""

    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        rule: str,
        message: str,
        source: str = "",
        location: int | None = None,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        finding = Finding(
            rule=rule,
            message=message,
            source=source,
            location=location,
            severity=severity,
        )
        self.findings.append(finding)
        return finding

    def extend(self, other: "FindingReport") -> None:
        self.findings.extend(other.findings)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def rules(self) -> set[str]:
        """The distinct rule identifiers present (test convenience)."""
        return {f.rule for f in self.findings}

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_FINDINGS

    def render(self) -> str:
        """One finding per line, stable order, ready for stderr."""
        return "\n".join(str(f) for f in self.findings)

    def to_json(self) -> dict:
        """Machine-readable form: findings plus the summary the exit
        code is derived from, so consumers never re-implement the
        severity → exit mapping."""
        return {
            "findings": [f.to_json() for f in self.findings],
            "errors": len(self.errors()),
            "warnings": len(self.findings) - len(self.errors()),
            "ok": self.ok,
            "exit_code": self.exit_code,
        }

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
