"""Repo invariant lint: a custom AST pass over ``src/repro``.

The simulator's claims only hold if a handful of repo-wide invariants
do.  Determinism (paper-grade reproducibility of every table/figure)
dies the moment a core module consults the wall clock or an unseeded
RNG; the PIM cost model dies the moment a hot path sneaks a host-side
``read_row`` round-trip past the ledger; error handling dies the
moment a raise bypasses the :mod:`repro.errors` taxonomy.  This pass
enforces them with nothing but :mod:`ast` from the stdlib.

Rules
=====

=====  ===================================================================
L001   wall-clock call (``time.time``/``perf_counter``/``monotonic``/
       ``datetime.now``/...) inside ``core/`` or ``assembly/`` — timing
       there must come from the cost model, never the host clock
L002   unseeded RNG inside ``core/`` or ``assembly/``:
       ``default_rng()`` without a seed, the legacy ``np.random.*``
       global API, or the stdlib ``random`` module functions
L003   host-shortcut ``<subarray>.read_row(...)`` round-trip in a hot
       path outside the allowlist — device state must be read through
       the controller so the MEM_RD is charged and traced
L004   a ``raise`` of a raw ``Exception``/``BaseException``/
       ``RuntimeError``/``MemoryError`` outside ``errors.py`` — use the
       :class:`~repro.errors.ReproError` taxonomy
L005   a class defines ``state_dict`` but neither ``from_state`` nor
       ``load_state`` — checkpoints it writes could never be restored
L006   a mutable default argument (``[]``/``{}``/``set()``/... in a
       ``def`` signature) — shared across calls, a classic aliasing
       bug; or module-level ``np.random`` usage anywhere under
       ``src/repro`` — import-time touches of the global RNG defeat
       per-run seeding even outside the deterministic directories
=====  ===================================================================

Precise builtin guards (``ValueError``/``TypeError``/``KeyError``/
``IndexError``/``OverflowError``/``NotImplementedError``/
``StopIteration``) stay legal: the taxonomy classes deliberately
inherit them, and argument validation on tiny helpers does not warrant
a typed class each.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import FindingReport

__all__ = ["lint_file", "lint_tree", "HOT_PATH_MODULES", "READ_ROW_ALLOWLIST"]

#: directories whose modules must be wall-clock- and unseeded-RNG-free
_DETERMINISTIC_DIRS = ("core", "assembly")

#: wall-clock call chains (dotted suffixes) forbidden in deterministic dirs
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
}

#: legacy numpy global-RNG functions (always implicitly unseeded)
_LEGACY_NP_RANDOM = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "seed",
}

#: stdlib ``random`` module functions (module-level ⇒ shared global state)
_STDLIB_RANDOM = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "seed",
}

#: modules on the PIM hot path, where a raw ``read_row`` bypasses the
#: ledger — and, since the columnar store, silently unpacks words too
HOT_PATH_MODULES = (
    "assembly/hashmap.py",
    "assembly/pipeline.py",
    "mapping/adjacency.py",
    "core/bitplane.py",
    "core/storage.py",
)

#: (module, enclosing function) pairs allowed a raw round-trip.
#: ``_write_counter`` keeps its host shadow read: the RMW merge needs the
#: unmodelled neighbouring counter bits of the same physical row, and the
#: paired ``controller.write_row`` charges the round-trip's traffic.
READ_ROW_ALLOWLIST = frozenset(
    {
        ("assembly/hashmap.py", "_write_counter"),
    }
)

#: zero-argument constructor calls that make a default argument mutable
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}

#: raising these builtins raw is forbidden outside ``errors.py``
_FORBIDDEN_RAISES = {
    "Exception",
    "BaseException",
    "RuntimeError",
    "MemoryError",
    "OSError",
    "SystemError",
}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Pass(ast.NodeVisitor):
    def __init__(self, relpath: str, report: FindingReport) -> None:
        self.relpath = relpath
        self.report = report
        self.deterministic = relpath.startswith(
            tuple(f"{d}/" for d in _DETERMINISTIC_DIRS)
        )
        self.hot_path = relpath in HOT_PATH_MODULES
        self.is_errors_module = relpath == "errors.py"
        self._func_stack: list[str] = []

    def _flag(self, rule: str, message: str, node: ast.AST) -> None:
        self.report.add(
            rule,
            message,
            source=f"src/repro/{self.relpath}",
            location=getattr(node, "lineno", None),
        )

    # ----- function / class context ----------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for default in (*node.args.defaults, *node.args.kw_defaults):
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            ):
                mutable = True
            if mutable:
                self._flag(
                    "L006",
                    f"mutable default argument in {node.name}() — the "
                    "object is shared across calls; default to None and "
                    "construct inside the body",
                    default,
                )
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "state_dict" in methods and not (
            {"from_state", "load_state"} & methods
        ):
            self._flag(
                "L005",
                f"class {node.name} defines state_dict but neither "
                "from_state nor load_state — its checkpoints cannot be "
                "restored",
                node,
            )
        self.generic_visit(node)

    # ----- calls: wall clock, RNG, read_row round-trips --------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if self.deterministic and chain is not None:
            tail2 = ".".join(chain.split(".")[-2:])
            if tail2 in _WALL_CLOCK:
                self._flag(
                    "L001",
                    f"wall-clock call {chain}() in a deterministic module "
                    "— derive timing from the cost model",
                    node,
                )
            parts = chain.split(".")
            if chain.endswith("default_rng") and not (node.args or node.keywords):
                self._flag(
                    "L002",
                    "default_rng() without a seed in a deterministic "
                    "module",
                    node,
                )
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[-1] in _LEGACY_NP_RANDOM
                and parts[0] in ("np", "numpy")
            ):
                self._flag(
                    "L002",
                    f"legacy global-state RNG {chain}() in a "
                    "deterministic module — use a seeded Generator",
                    node,
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM
            ):
                self._flag(
                    "L002",
                    f"stdlib global-state RNG {chain}() in a "
                    "deterministic module — use a seeded Generator",
                    node,
                )
        if (
            self.hot_path
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "read_row"
        ):
            receiver = _dotted(node.func.value) or "<expr>"
            is_controller = receiver.split(".")[-1] in ("controller", "ctrl")
            func = self._func_stack[-1] if self._func_stack else "<module>"
            if not is_controller and (
                (self.relpath, func) not in READ_ROW_ALLOWLIST
            ):
                self._flag(
                    "L003",
                    f"host-shortcut {receiver}.read_row() in hot path "
                    f"function {func} bypasses the MEM_RD charge — go "
                    "through the controller or extend the allowlist",
                    node,
                )
        self.generic_visit(node)

    # ----- attributes: module-level global-RNG touches ---------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._func_stack:
            chain = _dotted(node)
            if chain is not None:
                parts = chain.split(".")
                if (
                    len(parts) >= 2
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                ):
                    self._flag(
                        "L006",
                        f"module-level {chain} usage — touching the "
                        "global numpy RNG at import time defeats per-run "
                        "seeding; use a seeded Generator inside a "
                        "function",
                        node,
                    )
                    return  # don't double-flag nested sub-attributes
        self.generic_visit(node)

    # ----- raises ----------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        if self.is_errors_module or node.exc is None:
            self.generic_visit(node)
            return
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = _dotted(exc.func)
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            name = _dotted(exc)
        if name in _FORBIDDEN_RAISES:
            self._flag(
                "L004",
                f"raise of raw {name} — use the ReproError taxonomy "
                "(repro.errors)",
                node,
            )
        self.generic_visit(node)


def lint_file(path: Path, root: Path, report: FindingReport) -> None:
    relpath = path.relative_to(root).as_posix()
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        report.add(
            "L000",
            f"cannot parse: {exc.msg}",
            source=f"src/repro/{relpath}",
            location=exc.lineno,
        )
        return
    _Pass(relpath, report).visit(tree)


def lint_tree(root: "Path | str | None" = None) -> FindingReport:
    """Lint every module under ``src/repro`` (default: this package)."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    report = FindingReport()
    for path in sorted(root.rglob("*.py")):
        lint_file(path, root, report)
    return report
