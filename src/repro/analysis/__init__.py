"""Static analysis of the PIM-Assembler reproduction.

Three checkers share one findings model
(:mod:`repro.analysis.findings`) and one exit-code taxonomy:

* :mod:`repro.analysis.verifier` — dataflow verification of recorded
  AAP command streams (``repro verify-trace`` and the opt-in
  :class:`~repro.analysis.verifier.InlineChecker`),
* :mod:`repro.analysis.lint` — repo invariants enforced over the AST
  (determinism, hot-path ledger honesty, the error taxonomy),
* :mod:`repro.analysis.typecheck` — gated strict mypy over the
  annotated core contracts,
* :mod:`repro.analysis.optimizer` /  :mod:`repro.analysis.equiv` —
  translation-validated peephole optimisation of recorded streams
  (``repro optimize-trace``): every rewrite is independently proven
  observationally equivalent by a symbolic row-state interpreter.

``python -m repro.analysis`` runs all three plus a self-check that
records and verifies a small seeded pipeline under both execution
engines.
"""

from repro.analysis.findings import (
    EXIT_FINDINGS,
    EXIT_INPUT,
    EXIT_OK,
    EXIT_RUNTIME,
    Finding,
    FindingReport,
    Severity,
)
from repro.analysis.equiv import check_equivalence, interpret_trace
from repro.analysis.lint import lint_tree
from repro.analysis.optimizer import (
    OptimizationResult,
    TraceOptimizer,
    optimize_document,
)
from repro.analysis.tracefile import (
    TraceDocument,
    TraceRecorder,
    load_document,
    save_document,
)
from repro.analysis.typecheck import typecheck
from repro.analysis.verifier import (
    InlineChecker,
    StreamVerifier,
    verify_document,
)

__all__ = [
    "EXIT_FINDINGS",
    "EXIT_INPUT",
    "EXIT_OK",
    "EXIT_RUNTIME",
    "Finding",
    "FindingReport",
    "InlineChecker",
    "OptimizationResult",
    "Severity",
    "StreamVerifier",
    "TraceDocument",
    "TraceOptimizer",
    "TraceRecorder",
    "check_equivalence",
    "interpret_trace",
    "lint_tree",
    "load_document",
    "optimize_document",
    "save_document",
    "typecheck",
    "verify_document",
]
