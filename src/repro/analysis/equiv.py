"""Symbolic observational-equivalence checking of AAP command streams.

The trace optimiser (:mod:`repro.analysis.optimizer`) rewrites recorded
command streams; this module is the independent judge that makes those
rewrites trustworthy by construction.  It never looks at *how* a stream
was rewritten — it abstractly interprets the original and the optimised
stream over a symbolic row-state lattice and demands that every
observable agrees:

* **observations** — the per-sub-array sequence of host reads
  (``MEM_RD``) and DPU operations, with the symbolic value of the row
  each one observes, must match exactly;
* **final row contents** — every row of every sub-array must hold the
  same symbolic value after both streams;
* **latch outputs** — each sub-array's carry latch must end in the same
  symbolic state;
* **charge accounting** — the optimised stream's command count, serial
  time and energy may only ever be *reduced*.

The lattice element is a hash-consed provenance term: ``("init", sub,
row)`` for pre-existing content, ``("const", v)`` for a ``ROW_INIT``
fill, ``("data", bits)`` for a host write, and ``("xnor", ...)`` /
``("maj", ...)`` / ``("xor3", ...)`` application terms with canonically
sorted operands (the SA ops are commutative).  Terms are interned in
one shared table so equality is integer identity, and structurally
equal values produced through different copy chains collapse to the
same id — which is exactly what lets copy propagation discharge its
obligation.

Cross-sub-array command order is deliberately *not* an observable:
sub-arrays are architecturally independent (the whole point of gang
issue), each sub-array's own program order is preserved, and the
per-MAT global row buffer is a transient staging resource whose final
content no modelled operation reads.

Rule catalogue (reported through the shared findings model):

=====  ===================================================================
E001   final row contents differ on some row of some sub-array
E002   observation sequence mismatch (kind, row, or observed value)
E003   final carry-latch state differs on some sub-array
E004   charge totals increased (command count, serial time or energy)
E005   malformed gang annotation (mixed mnemonics, shared sub-array,
       overlap, out of bounds, or a window mark inside the gang)
E006   document envelope mismatch (engine, geometry, layout, timing,
       completeness or cold-start flags differ)
E007   unmodelled mnemonic — the interpreter cannot prove anything
       about streams carrying integrity commands (``REF``/``ECC_*``)
=====  ===================================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.findings import FindingReport
from repro.analysis.tracefile import TraceDocument
from repro.core.timing import TimingParameters, command_cost_table
from repro.core.trace import CommandTrace, TraceEntry

__all__ = [
    "GANGABLE_MNEMONICS",
    "MODELLED_MNEMONICS",
    "Interner",
    "SubSummary",
    "SymbolicInterpreter",
    "UnmodelledMnemonicError",
    "check_equivalence",
    "interpret_trace",
    "stream_cost",
]

#: mnemonics the symbolic interpreter gives exact semantics to — the
#: full AAP program vocabulary; the integrity stream (``REF``/``ECC_*``)
#: mutates rows in ways the lattice does not model.
MODELLED_MNEMONICS = frozenset(
    {
        "AAP1",
        "AAP2",
        "AAP3",
        "SUM",
        "LATCH_LD",
        "LATCH_CLR",
        "ROW_INIT",
        "MEM_WR",
        "MEM_RD",
        "DPU",
    }
)

#: mnemonics the controller can issue as one gang slot across
#: sub-arrays (``Controller.gang_copy`` / ``Controller.gang_compute2``)
GANGABLE_MNEMONICS = ("AAP1", "AAP2")

SubKey = tuple[int, int, int]
Observation = tuple[str, int | None, int | None]


class UnmodelledMnemonicError(ValueError):
    """A stream contains a mnemonic outside the modelled vocabulary."""

    def __init__(self, mnemonic: str, index: int) -> None:
        super().__init__(
            f"command #{index}: mnemonic {mnemonic!r} is outside the "
            "symbolic interpreter's vocabulary"
        )
        self.mnemonic = mnemonic
        self.index = index


class Interner:
    """Hash-consing table: structurally equal terms share one id.

    Compound terms reference child *ids*, so deep provenance trees stay
    flat tuples and value equality is a single integer comparison.
    """

    def __init__(self) -> None:
        self._ids: dict[tuple[Any, ...], int] = {}

    def intern(self, term: tuple[Any, ...]) -> int:
        found = self._ids.get(term)
        if found is None:
            found = len(self._ids)
            self._ids[term] = found
        return found

    def __len__(self) -> int:
        return len(self._ids)


@dataclass
class SubSummary:
    """Everything observable about one sub-array after a stream."""

    rows: dict[int, int] = field(default_factory=dict)
    latch: int = -1
    observations: list[Observation] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)


class SymbolicInterpreter:
    """Abstract interpreter over the provenance lattice.

    One interpreter instance may run many streams against a *shared*
    :class:`Interner`; value ids are then comparable across runs —
    which is how :func:`check_equivalence` uses it.
    """

    def __init__(self, interner: Interner | None = None) -> None:
        self.interner = interner if interner is not None else Interner()

    def run(self, trace: CommandTrace) -> dict[SubKey, SubSummary]:
        """Interpret a stream; returns per-sub-array summaries.

        Raises:
            UnmodelledMnemonicError: on a mnemonic outside
                :data:`MODELLED_MNEMONICS`.
        """
        intern = self.interner.intern
        subs: dict[SubKey, SubSummary] = {}
        for entry in trace:
            sub = subs.get(entry.subarray)
            if sub is None:
                sub = subs[entry.subarray] = SubSummary(
                    latch=intern(("latch0", entry.subarray))
                )
            self._step(entry, sub, intern)
        return subs

    def _step(
        self, entry: TraceEntry, sub: SubSummary, intern: Any
    ) -> None:
        mnemonic = entry.mnemonic
        rows = entry.rows
        key = entry.subarray
        sub.counts[mnemonic] += 1

        def val(row: int) -> int:
            found = sub.rows.get(row)
            if found is None:
                found = sub.rows[row] = intern(("init", key, row))
            return found

        if mnemonic == "AAP1":
            sub.rows[rows[1]] = val(rows[0])
        elif mnemonic == "AAP2":
            operands = sorted((val(rows[0]), val(rows[1])))
            sub.rows[rows[2]] = intern(("xnor", *operands))
        elif mnemonic == "AAP3":
            operands = sorted((val(rows[0]), val(rows[1]), val(rows[2])))
            majority = intern(("maj", *operands))
            sub.rows[rows[3]] = majority
            sub.latch = majority
        elif mnemonic == "SUM":
            operands = sorted((val(rows[0]), val(rows[1]), sub.latch))
            sub.rows[rows[2]] = intern(("xor3", *operands))
        elif mnemonic == "LATCH_LD":
            sub.latch = val(rows[0])
        elif mnemonic == "LATCH_CLR":
            sub.latch = intern(("const", 0))
        elif mnemonic == "ROW_INIT":
            fill = int(entry.payload[0]) if entry.payload else 0
            sub.rows[rows[0]] = intern(("const", fill))
        elif mnemonic == "MEM_WR":
            sub.rows[rows[0]] = intern(("data", entry.payload))
        elif mnemonic == "MEM_RD":
            sub.observations.append(("MEM_RD", rows[0], val(rows[0])))
        elif mnemonic == "DPU":
            if rows:
                sub.observations.append(("DPU", rows[0], val(rows[0])))
            else:
                sub.observations.append(("DPU", None, None))
        else:
            raise UnmodelledMnemonicError(mnemonic, entry.index)


def interpret_trace(
    trace: CommandTrace, interner: Interner | None = None
) -> dict[SubKey, SubSummary]:
    """One-call symbolic interpretation of a stream."""
    return SymbolicInterpreter(interner).run(trace)


def stream_cost(
    trace: CommandTrace,
    timing: TimingParameters,
    energy: Any,
) -> tuple[int, float, float]:
    """``(commands, serial time ns, energy nJ)`` of one stream.

    Priced through the shared cost table, so both sides of an
    equivalence check (and the optimiser's savings report) use the
    exact arithmetic the ledger uses.
    """
    costs = command_cost_table(timing, energy)
    commands = 0
    time_ns = 0.0
    energy_nj = 0.0
    for entry in trace:
        commands += 1
        entry_time, entry_energy = costs[entry.mnemonic]
        time_ns += entry_time
        energy_nj += entry_energy
    return commands, time_ns, energy_nj


# --------------------------------------------------------------------------
# the equivalence judgement
# --------------------------------------------------------------------------

_ENVELOPE_FIELDS = ("engine", "complete", "cold_start")


def _check_envelope(
    original: TraceDocument,
    optimized: TraceDocument,
    report: FindingReport,
    source: str,
) -> None:
    for name in _ENVELOPE_FIELDS:
        if getattr(original, name) != getattr(optimized, name):
            report.add(
                "E006",
                f"document {name} changed: "
                f"{getattr(original, name)!r} -> "
                f"{getattr(optimized, name)!r}",
                source=source,
            )
    for name in ("geometry", "layout", "timing"):
        if getattr(original, name) != getattr(optimized, name):
            report.add(
                "E006",
                f"document {name} section changed — an optimiser must "
                "never touch the platform context",
                source=source,
            )


def _check_gangs(
    optimized: TraceDocument, report: FindingReport, source: str
) -> None:
    gangs = optimized.meta.get("gangs")
    if gangs is None:
        return
    if not isinstance(gangs, list):
        report.add("E005", "meta['gangs'] must be a list", source=source)
        return
    entries = optimized.trace.entries()
    mark_positions = {pos for pos, _ in optimized.trace.marks}
    previous_end = 0
    normalised: list[tuple[int, int]] = []
    for gang in gangs:
        try:
            start, length = int(gang[0]), int(gang[1])
        except (TypeError, ValueError, IndexError):
            report.add(
                "E005",
                f"malformed gang annotation {gang!r} (expected "
                "[start, length])",
                source=source,
            )
            return
        normalised.append((start, length))
    for start, length in sorted(normalised):
        if length < 2 or start < 0 or start + length > len(entries):
            report.add(
                "E005",
                f"gang [{start}, {length}] is out of bounds or smaller "
                "than two members",
                source=source,
                location=start,
            )
            continue
        if start < previous_end:
            report.add(
                "E005",
                f"gang [{start}, {length}] overlaps the previous gang",
                source=source,
                location=start,
            )
        previous_end = max(previous_end, start + length)
        members = entries[start : start + length]
        mnemonics = {m.mnemonic for m in members}
        if len(mnemonics) != 1 or not mnemonics <= set(GANGABLE_MNEMONICS):
            report.add(
                "E005",
                f"gang [{start}, {length}] mixes mnemonics or contains "
                f"a non-gangable one ({sorted(mnemonics)})",
                source=source,
                location=start,
            )
        keys = {m.subarray for m in members}
        if len(keys) != length:
            report.add(
                "E005",
                f"gang [{start}, {length}] reuses a sub-array — gang "
                "members must occupy distinct sub-arrays",
                source=source,
                location=start,
            )
        if any(start < pos < start + length for pos in mark_positions):
            report.add(
                "E005",
                f"gang [{start}, {length}] straddles a window mark",
                source=source,
                location=start,
            )


def _doc_timing(doc: TraceDocument) -> TimingParameters:
    from repro.core.timing import DEFAULT_TIMING

    if not doc.timing:
        return DEFAULT_TIMING
    return TimingParameters(**{k: float(v) for k, v in doc.timing.items()})


_MAX_FINDINGS_PER_RULE = 8


def check_equivalence(
    original: TraceDocument,
    optimized: TraceDocument,
    source: str = "<trace>",
) -> FindingReport:
    """Prove (or refute) observational equivalence of two documents.

    The judgement is independent of the optimiser: both streams are
    re-interpreted from scratch over one shared interner and compared
    on observations, final row state, latch state and charge totals.
    An empty report *is* the proof certificate — every obligation was
    discharged.
    """
    from repro.core.energy import DEFAULT_ENERGY

    report = FindingReport()
    _check_envelope(original, optimized, report, source)
    _check_gangs(optimized, report, source)

    interner = Interner()
    interpreter = SymbolicInterpreter(interner)
    try:
        before = interpreter.run(original.trace)
        after = interpreter.run(optimized.trace)
    except UnmodelledMnemonicError as exc:
        report.add("E007", str(exc), source=source, location=exc.index)
        return report

    for key in sorted(set(before) | set(after)):
        untouched = SubSummary(latch=interner.intern(("latch0", key)))
        lhs = before.get(key, untouched)
        rhs = after.get(key, untouched)
        _compare_sub(key, lhs, rhs, interner, report, source)

    timing = _doc_timing(original)
    old_cost = stream_cost(original.trace, timing, DEFAULT_ENERGY)
    new_cost = stream_cost(optimized.trace, timing, DEFAULT_ENERGY)
    for label, old, new, tol in (
        ("command count", old_cost[0], new_cost[0], 0),
        ("serial time", old_cost[1], new_cost[1], 1e-6),
        ("energy", old_cost[2], new_cost[2], 1e-6),
    ):
        if new > old + tol:
            report.add(
                "E004",
                f"optimised stream increases {label}: {old:g} -> {new:g}",
                source=source,
            )
    return report


def _compare_sub(
    key: SubKey,
    lhs: SubSummary,
    rhs: SubSummary,
    interner: Interner,
    report: FindingReport,
    source: str,
) -> None:
    if lhs.observations != rhs.observations:
        divergence = 0
        limit = min(len(lhs.observations), len(rhs.observations))
        while (
            divergence < limit
            and lhs.observations[divergence] == rhs.observations[divergence]
        ):
            divergence += 1
        report.add(
            "E002",
            f"sub-array {key}: observation sequences diverge at "
            f"position {divergence} "
            f"({len(lhs.observations)} vs {len(rhs.observations)} "
            "observations)",
            source=source,
            location=divergence,
        )
    mismatched = 0
    for row in sorted(set(lhs.rows) | set(rhs.rows)):
        # a row one side never touched still holds its initial value;
        # interning the init term through the shared table yields the
        # same id the other side would have produced by reading it
        left = lhs.rows.get(row)
        if left is None:
            left = interner.intern(("init", key, row))
        right = rhs.rows.get(row)
        if right is None:
            right = interner.intern(("init", key, row))
        if left != right:
            mismatched += 1
            if mismatched <= _MAX_FINDINGS_PER_RULE:
                report.add(
                    "E001",
                    f"sub-array {key}: final contents of row {row} "
                    "differ between original and optimised stream",
                    source=source,
                    location=row,
                )
    if mismatched > _MAX_FINDINGS_PER_RULE:
        report.add(
            "E001",
            f"sub-array {key}: {mismatched - _MAX_FINDINGS_PER_RULE} "
            "further row mismatches suppressed",
            source=source,
        )
    if lhs.latch != rhs.latch:
        report.add(
            "E003",
            f"sub-array {key}: final carry-latch state differs",
            source=source,
        )
