"""Translation-validated peephole optimisation of AAP command streams.

Recorded AAP programs carry systematic redundancy: the compare-scan
stages copies operands onto compute staging rows before every XNOR
activation (copy chains through ``AAP1``), overwritten rows keep their
earlier dead writes, and precharge-style ``ROW_INIT``/``LATCH_CLR``
commands repeat with nothing in between.  This module rewrites such
streams with four classic peephole passes:

``copy_propagation_pass``
    forwards activation source operands through ``AAP1`` copy chains
    (version-checked, so a clobbered source or destination invalidates
    the chain) — legal because the designated-row rules (V006/V007)
    constrain *destinations* only;
``dead_write_pass``
    backward liveness over rows *and* the carry latch; removes writes
    whose value is overwritten before any read (the final state of
    every row and latch is live by definition);
``redundant_init_pass``
    removes a ``ROW_INIT`` re-asserting a fill value the row is
    already known to hold, and a ``LATCH_CLR`` when the latch is
    already cleared — the repeated-precharge peephole;
``gang_merge_pass``
    reorders commands *across* sub-arrays (never within one) inside
    mark-delimited segments so runs of identical two-row activations on
    distinct sub-arrays become gang-issuable slots, recorded in
    ``meta["gangs"]`` for the batched replay path.

None of this is trusted: every optimisation emits machine-checkable
justifications into ``meta["aap_opt"]``, and the rewritten document is
independently re-judged by :func:`repro.analysis.equiv.check_equivalence`
(symbolic row-state lattice) before it is accepted.  A rewrite the
judge cannot prove equivalent is *rejected*, not shipped.

Rule catalogue (optimiser-side; E0xx rules live in ``equiv``):

=====  ===================================================================
O001   partial (bulk-engine) document — the stream is not a complete
       program, optimisation degrades to identity (warning)
O002   input stream has verifier findings — refusing to optimise a
       program that is already broken
O003   stream carries unmodelled mnemonics (``REF``/``ECC_*``) —
       optimisation degrades to identity (warning)
=====  ===================================================================
"""

from __future__ import annotations

import dataclasses
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.analysis.equiv import (
    GANGABLE_MNEMONICS,
    MODELLED_MNEMONICS,
    check_equivalence,
    stream_cost,
)
from repro.analysis.findings import FindingReport, Severity
from repro.analysis.tracefile import TraceDocument
from repro.analysis.verifier import _doc_timing, _iter_with_marks, verify_document
from repro.core.timing import command_cost_table
from repro.core.trace import CommandTrace, TraceEntry

__all__ = [
    "DEFAULT_PASSES",
    "OptimizationResult",
    "PassStats",
    "TraceOptimizer",
    "copy_propagation_pass",
    "dead_write_pass",
    "gang_merge_pass",
    "optimize_document",
    "redundant_init_pass",
]

#: a token is ("mark", label) or ("entry", TraceEntry) — passes work on
#: the merged stream so window marks keep their positions through
#: removals
Token = tuple[str, Any]

#: cap on justification records embedded in the output document's meta
#: (counts are always exact; the records are a sample for audit)
_MAX_META_JUSTIFICATIONS = 50


@dataclass(frozen=True)
class PassStats:
    """What one pass execution did, with per-rewrite justifications."""

    name: str
    removed: int = 0
    rewritten: int = 0
    justifications: tuple[dict, ...] = ()


@dataclass
class OptimizationResult:
    """Outcome of one :meth:`TraceOptimizer.optimize` run.

    ``ok`` means the result document is safe to use: either a proven-
    equivalent rewrite or an explicit identity (O001/O003).  When the
    equivalence judge rejects a rewrite, ``ok`` is False, ``document``
    is the untouched original and the refuted stream is preserved in
    ``rejected`` for debugging.
    """

    ok: bool
    document: TraceDocument
    report: FindingReport
    identity: bool = False
    passes: list[PassStats] = field(default_factory=list)
    iterations: int = 0
    savings: dict[str, Any] = field(default_factory=dict)
    rejected: TraceDocument | None = None


# --------------------------------------------------------------------------
# command effect model
# --------------------------------------------------------------------------

_SOURCE_POSITIONS = {
    "AAP1": (0,),
    "AAP2": (0, 1),
    "AAP3": (0, 1, 2),
    "SUM": (0, 1),
    "LATCH_LD": (0,),
}


def _effects(
    entry: TraceEntry,
) -> tuple[tuple[int, ...], tuple[int, ...], bool, bool, bool]:
    """``(reads, writes, reads_latch, writes_latch, observation)``."""
    m = entry.mnemonic
    rows = entry.rows
    if m == "AAP1":
        return (rows[0],), (rows[1],), False, False, False
    if m == "AAP2":
        return rows[:2], (rows[2],), False, False, False
    if m == "AAP3":
        return rows[:3], (rows[3],), False, True, False
    if m == "SUM":
        return rows[:2], (rows[2],), True, False, False
    if m == "LATCH_LD":
        return (rows[0],), (), False, True, False
    if m == "LATCH_CLR":
        return (), (), False, True, False
    if m == "ROW_INIT":
        return (), (rows[0],), False, False, False
    if m == "MEM_WR":
        return (), (rows[0],), False, False, False
    if m == "MEM_RD":
        return (rows[0],), (), False, False, True
    if m == "DPU":
        return rows[:1], (), False, False, True
    raise ValueError(f"unmodelled mnemonic {m!r}")


def _operands_valid(mnemonic: str, rows: Sequence[int]) -> bool:
    """The ISA/verifier operand constraints a rewrite must preserve."""
    if mnemonic == "AAP1":
        return rows[0] != rows[1]
    if mnemonic in ("AAP2", "SUM"):
        return rows[0] != rows[1] and rows[2] not in (rows[0], rows[1])
    if mnemonic == "AAP3":
        return len({rows[0], rows[1], rows[2]}) == 3
    return True


def _entry_key(entry: TraceEntry) -> tuple:
    return (entry.mnemonic, entry.subarray, entry.rows, entry.payload)


# --------------------------------------------------------------------------
# rewrite passes (token stream -> token stream, order-preserving)
# --------------------------------------------------------------------------


def dead_write_pass(tokens: list[Token]) -> tuple[list[Token], PassStats]:
    """Backward liveness: drop writes overwritten before any read.

    Tracks, per sub-array, the set of rows whose *current* value is
    provably dead (overwritten later with no intervening read) plus a
    dead flag for the carry latch.  Both start empty/live at stream end
    — the equivalence obligations make every final row and latch an
    observable, so a trailing write is never removable.
    """
    dead_rows: dict[tuple, set[int]] = {}
    dead_latch: dict[tuple, bool] = {}
    kept_reversed: list[Token] = []
    justifications: list[dict] = []
    removed = 0
    for token in reversed(tokens):
        if token[0] != "entry":
            kept_reversed.append(token)
            continue
        entry: TraceEntry = token[1]
        reads, writes, rlatch, wlatch, obs = _effects(entry)
        sub = entry.subarray
        dead = dead_rows.setdefault(sub, set())
        if not obs and (writes or wlatch):
            removable = all(w in dead for w in writes) and (
                not wlatch or dead_latch.get(sub, False)
            )
            if removable and (writes or wlatch):
                removed += 1
                justifications.append(
                    {
                        "action": "remove",
                        "op": entry.mnemonic,
                        "sub": list(sub),
                        "rows": list(entry.rows),
                        "reason": "every written row/latch value is "
                        "overwritten before any read",
                    }
                )
                continue
        for w in writes:
            dead.add(w)
        if wlatch:
            dead_latch[sub] = True
        for r in reads:
            dead.discard(r)
        if rlatch:
            dead_latch[sub] = False
        kept_reversed.append(token)
    kept_reversed.reverse()
    return kept_reversed, PassStats(
        name="dead_write",
        removed=removed,
        justifications=tuple(justifications),
    )


def copy_propagation_pass(
    tokens: list[Token],
) -> tuple[list[Token], PassStats]:
    """Forward activation sources through ``AAP1`` copy chains.

    For every ``AAP1 src -> des`` the pass remembers ``des`` as an
    alias of ``src`` at their current row versions; a later activation
    reading ``des`` is rewritten to read ``src`` directly while both
    versions still hold.  Observations (``MEM_RD``/``DPU``) are never
    rewritten — the observed row is part of the observation.  Each
    operand rewrite is validated against the ISA constraints (distinct
    sources, destination not an activated source) and skipped when the
    substitution would violate them.
    """
    version: dict[tuple, Counter] = {}
    copies: dict[tuple, dict[int, tuple[int, int, int]]] = {}
    out: list[Token] = []
    justifications: list[dict] = []
    rewritten = 0

    for token in tokens:
        if token[0] != "entry":
            out.append(token)
            continue
        entry: TraceEntry = token[1]
        sub = entry.subarray
        ver = version.setdefault(sub, Counter())
        alias = copies.setdefault(sub, {})

        def resolve(row: int) -> int:
            seen = {row}
            while row in alias:
                src, src_ver, des_ver = alias[row]
                if ver[row] != des_ver or ver[src] != src_ver or src in seen:
                    break
                row = src
                seen.add(row)
            return row

        positions = _SOURCE_POSITIONS.get(entry.mnemonic, ())
        new_rows = list(entry.rows)
        for pos in positions:
            candidate = resolve(new_rows[pos])
            if candidate == new_rows[pos]:
                continue
            tentative = list(new_rows)
            tentative[pos] = candidate
            if not _operands_valid(entry.mnemonic, tentative):
                continue
            justifications.append(
                {
                    "action": "rewrite",
                    "op": entry.mnemonic,
                    "sub": list(sub),
                    "operand": pos,
                    "from": new_rows[pos],
                    "to": candidate,
                    "reason": "row holds an AAP1 copy of the substituted "
                    "row (both versions unchanged since the copy)",
                }
            )
            new_rows = tentative
            rewritten += 1
        if new_rows != list(entry.rows):
            entry = dataclasses.replace(entry, rows=tuple(new_rows))

        _, writes, _, _, _ = _effects(entry)
        for w in writes:
            ver[w] += 1
            alias.pop(w, None)
        if entry.mnemonic == "AAP1":
            src, des = entry.rows
            alias[des] = (src, ver[src], ver[des])
        out.append(("entry", entry))

    return out, PassStats(
        name="copy_propagation",
        rewritten=rewritten,
        justifications=tuple(justifications),
    )


def redundant_init_pass(
    tokens: list[Token],
) -> tuple[list[Token], PassStats]:
    """Drop precharges that re-assert already-established state.

    A ``ROW_INIT`` filling a row with the constant it is already known
    to hold (from an earlier surviving ``ROW_INIT``) is a repeated
    precharge; so is a ``LATCH_CLR`` on an already-cleared latch.  Any
    other write to the row (or latch load/TRA) invalidates the
    known-state fact.
    """
    known_const: dict[tuple, dict[int, int]] = {}
    latch_clear: dict[tuple, bool] = {}
    out: list[Token] = []
    justifications: list[dict] = []
    removed = 0
    for token in tokens:
        if token[0] != "entry":
            out.append(token)
            continue
        entry: TraceEntry = token[1]
        sub = entry.subarray
        consts = known_const.setdefault(sub, {})
        if entry.mnemonic == "ROW_INIT":
            fill = int(entry.payload[0]) if entry.payload else 0
            if consts.get(entry.rows[0]) == fill:
                removed += 1
                justifications.append(
                    {
                        "action": "remove",
                        "op": "ROW_INIT",
                        "sub": list(sub),
                        "rows": list(entry.rows),
                        "reason": f"row already holds constant {fill} from "
                        "an earlier surviving ROW_INIT",
                    }
                )
                continue
            consts[entry.rows[0]] = fill
            out.append(token)
            continue
        if entry.mnemonic == "LATCH_CLR":
            if latch_clear.get(sub, False):
                removed += 1
                justifications.append(
                    {
                        "action": "remove",
                        "op": "LATCH_CLR",
                        "sub": list(sub),
                        "rows": [],
                        "reason": "latch already cleared by an earlier "
                        "surviving LATCH_CLR",
                    }
                )
                continue
            latch_clear[sub] = True
            out.append(token)
            continue
        _, writes, _, wlatch, _ = _effects(entry)
        for w in writes:
            consts.pop(w, None)
        if wlatch:
            latch_clear[sub] = False
        out.append(token)
    return out, PassStats(
        name="redundant_init",
        removed=removed,
        justifications=tuple(justifications),
    )


DEFAULT_PASSES: tuple[Callable[[list[Token]], tuple[list[Token], PassStats]], ...] = (
    copy_propagation_pass,
    dead_write_pass,
    redundant_init_pass,
)


# --------------------------------------------------------------------------
# gang merge (scheduling pass — runs once, after the rewrite fixpoint)
# --------------------------------------------------------------------------


def gang_merge_pass(
    tokens: list[Token],
) -> tuple[list[Token], list[tuple[int, int]], PassStats]:
    """Deterministic cross-sub-array list scheduling into gang slots.

    Within each mark-delimited segment the pass keeps one FIFO queue
    per sub-array (per-sub program order is inviolable — that is the
    soundness argument: sub-arrays share no state, so any interleaving
    that preserves every per-sub order is equivalent) and repeatedly
    either emits a *gang* — the front commands of ≥ 2 queues sharing a
    gangable mnemonic (``AAP1``/``AAP2``), recorded as
    ``(start, length)`` — or drains one command from the longest
    queue.  The schedule is a pure function of the per-sub sequences,
    which makes the pass idempotent and insensitive to the incoming
    cross-sub interleaving.
    """
    out: list[Token] = []
    gangs: list[tuple[int, int]] = []
    entries_emitted = 0
    ganged = 0

    def flush_segment(segment: list[TraceEntry]) -> None:
        nonlocal entries_emitted, ganged
        queues: dict[tuple, deque] = {}
        for entry in segment:
            queues.setdefault(entry.subarray, deque()).append(entry)
        while queues:
            fronts: dict[str, list[tuple]] = {}
            for sub in queues:
                mnemonic = queues[sub][0].mnemonic
                if mnemonic in GANGABLE_MNEMONICS:
                    fronts.setdefault(mnemonic, []).append(sub)
            best = None
            if fronts:
                best = min(
                    fronts, key=lambda m: (-len(fronts[m]), m)
                )
            if best is not None and len(fronts[best]) >= 2:
                members = sorted(fronts[best])
                gangs.append((entries_emitted, len(members)))
                ganged += len(members)
                for sub in members:
                    out.append(("entry", queues[sub].popleft()))
                    entries_emitted += 1
                    if not queues[sub]:
                        del queues[sub]
            else:
                sub = min(queues, key=lambda s: (-len(queues[s]), s))
                out.append(("entry", queues[sub].popleft()))
                entries_emitted += 1
                if not queues[sub]:
                    del queues[sub]

    segment: list[TraceEntry] = []
    for token in tokens:
        if token[0] == "mark":
            flush_segment(segment)
            segment = []
            out.append(token)
        else:
            segment.append(token[1])
    flush_segment(segment)

    return (
        out,
        gangs,
        PassStats(
            name="gang_merge",
            rewritten=ganged,
            justifications=(
                {
                    "action": "gang",
                    "slots": len(gangs),
                    "commands": ganged,
                    "reason": "front commands of distinct sub-array queues "
                    "share a gangable mnemonic; per-sub order preserved",
                },
            )
            if gangs
            else (),
        ),
    )


# --------------------------------------------------------------------------
# document rebuild
# --------------------------------------------------------------------------


def _rebuild_trace(tokens: Iterable[Token]) -> CommandTrace:
    trace = CommandTrace()
    for kind, item in tokens:
        if kind == "mark":
            trace.mark(item)
        else:
            entry: TraceEntry = item
            trace.record(
                entry.mnemonic,
                entry.subarray,
                entry.rows,
                np.asarray(entry.payload, dtype=np.uint8)
                if entry.payload is not None
                else None,
            )
    return trace


def _recompute_ledger(
    doc: TraceDocument, trace: CommandTrace
) -> dict[str, Any] | None:
    """Ledger totals consistent with the rewritten stream.

    Mirrors the accounting the verifier enforces (V008/V009): the
    ``ROW_INIT`` trace entries fold into the ``AAP1`` charge (hardware
    issues them as RowClone off the constant row) and ``LATCH_CLR`` is
    a free precharge side effect that is never charged.  Energy is
    priced through the shared cost table with the default energy model
    (documents do not embed energy parameters).
    """
    if doc.ledger is None:
        return None
    from repro.core.energy import DEFAULT_ENERGY

    costs = command_cost_table(_doc_timing(doc), DEFAULT_ENERGY)
    counts: Counter = Counter()
    for entry in trace:
        counts[entry.mnemonic] += 1
    counts["AAP1"] += counts.pop("ROW_INIT", 0)
    counts.pop("LATCH_CLR", None)
    time_ns = 0.0
    energy_nj = 0.0
    for mnemonic, count in counts.items():
        t, e = costs[mnemonic]
        time_ns += count * t
        energy_nj += count * e
    return {
        "time_ns": time_ns,
        "energy_nj": energy_nj,
        "commands": {m: int(c) for m, c in sorted(counts.items()) if c},
    }


def _truncated(justifications: Sequence[dict]) -> list[dict]:
    return list(justifications[:_MAX_META_JUSTIFICATIONS])


# --------------------------------------------------------------------------
# the optimiser
# --------------------------------------------------------------------------


class TraceOptimizer:
    """Verified peephole pipeline over one trace document.

    Args:
        passes: rewrite passes to iterate to fixpoint (defaults to
            :data:`DEFAULT_PASSES`); injectable so tests can force an
            individual pass to misfire and watch the judge reject it.
        verify_input: refuse (O002) inputs that already carry verifier
            findings — an optimiser must not launder a broken program.
        equivalence: run the symbolic equivalence judge over the
            rewrite; on refutation the original document is returned
            (``ok=False``) with the refuted stream in ``rejected``.
        gang_merge: run the cross-sub-array gang scheduling pass after
            the rewrite fixpoint.
        max_iterations: fixpoint iteration cap (each iteration runs
            every rewrite pass once).
    """

    def __init__(
        self,
        passes: Sequence[
            Callable[[list[Token]], tuple[list[Token], PassStats]]
        ]
        | None = None,
        verify_input: bool = True,
        equivalence: bool = True,
        gang_merge: bool = True,
        max_iterations: int = 8,
    ) -> None:
        self.passes = tuple(passes) if passes is not None else DEFAULT_PASSES
        self.verify_input = verify_input
        self.equivalence = equivalence
        self.gang_merge = gang_merge
        self.max_iterations = max_iterations

    def optimize(
        self, doc: TraceDocument, source: str = "<trace>"
    ) -> OptimizationResult:
        report = FindingReport()

        if not doc.complete:
            report.add(
                "O001",
                f"{doc.engine} document carries a partial command stream "
                "(complete=false) — not a program; returning it unchanged",
                source=source,
                severity=Severity.WARNING,
            )
            return self._identity(doc, report)

        unmodelled = sorted(
            {e.mnemonic for e in doc.trace} - MODELLED_MNEMONICS
        )
        if unmodelled:
            report.add(
                "O003",
                f"stream carries unmodelled mnemonic(s) {unmodelled} — "
                "the equivalence judge has no semantics for them; "
                "returning the document unchanged",
                source=source,
                severity=Severity.WARNING,
            )
            return self._identity(doc, report)

        if self.verify_input:
            input_report = verify_document(doc, source=source)
            if not input_report.ok:
                report.add(
                    "O002",
                    f"input stream has {len(input_report.errors())} "
                    "verifier finding(s); refusing to optimise a broken "
                    "program",
                    source=source,
                )
                report.extend(input_report)
                return OptimizationResult(
                    ok=False, document=doc, report=report, identity=True
                )

        tokens: list[Token] = list(_iter_with_marks(doc))
        pass_stats: list[PassStats] = []
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            changed = False
            for rewrite in self.passes:
                tokens, stats = rewrite(tokens)
                pass_stats.append(stats)
                if stats.removed or stats.rewritten:
                    changed = True
            if not changed:
                break

        gangs: list[tuple[int, int]] = []
        if self.gang_merge:
            tokens, gangs, gang_stats = gang_merge_pass(tokens)
            pass_stats.append(gang_stats)

        optimized = self._build_document(doc, tokens, gangs, pass_stats)

        if self.equivalence:
            verdict = check_equivalence(doc, optimized, source=source)
            report.extend(verdict)
            if not verdict.ok:
                return OptimizationResult(
                    ok=False,
                    document=doc,
                    report=report,
                    identity=True,
                    passes=pass_stats,
                    iterations=iterations,
                    rejected=optimized,
                )

        savings = self._savings(doc, optimized, gangs)
        return OptimizationResult(
            ok=True,
            document=optimized,
            report=report,
            identity=False,
            passes=pass_stats,
            iterations=iterations,
            savings=savings,
        )

    # ----- helpers ---------------------------------------------------------

    def _identity(
        self, doc: TraceDocument, report: FindingReport
    ) -> OptimizationResult:
        return OptimizationResult(
            ok=True,
            document=doc,
            report=report,
            identity=True,
            savings=self._savings(doc, doc, []),
        )

    def _build_document(
        self,
        doc: TraceDocument,
        tokens: list[Token],
        gangs: list[tuple[int, int]],
        pass_stats: Sequence[PassStats],
    ) -> TraceDocument:
        trace = _rebuild_trace(tokens)
        meta = {
            k: v for k, v in doc.meta.items() if k not in ("aap_opt", "gangs")
        }
        total_just = sum(len(s.justifications) for s in pass_stats)
        meta["aap_opt"] = {
            "passes": [
                {
                    "name": s.name,
                    "removed": s.removed,
                    "rewritten": s.rewritten,
                }
                for s in pass_stats
            ],
            "justifications": _truncated(
                [j for s in pass_stats for j in s.justifications]
            ),
            "justifications_total": total_just,
            "justifications_truncated": total_just
            > _MAX_META_JUSTIFICATIONS,
        }
        if gangs:
            meta["gangs"] = [[start, length] for start, length in gangs]
        return TraceDocument(
            engine=doc.engine,
            trace=trace,
            charge_log=doc.charge_log,
            geometry=dict(doc.geometry),
            layout=dict(doc.layout) if doc.layout is not None else None,
            timing=dict(doc.timing) if doc.timing is not None else None,
            ledger=_recompute_ledger(doc, trace),
            complete=doc.complete,
            cold_start=doc.cold_start,
            meta=meta,
        )

    def _savings(
        self,
        original: TraceDocument,
        optimized: TraceDocument,
        gangs: list[tuple[int, int]],
    ) -> dict[str, Any]:
        from repro.core.energy import DEFAULT_ENERGY

        timing = _doc_timing(original)
        before = stream_cost(original.trace, timing, DEFAULT_ENERGY)
        after = stream_cost(optimized.trace, timing, DEFAULT_ENERGY)

        def ratio(old: float, new: float) -> float:
            return (old - new) / old if old else 0.0

        return {
            "commands": {
                "before": before[0],
                "after": after[0],
                "reduction": ratio(before[0], after[0]),
            },
            "time_ns": {
                "before": before[1],
                "after": after[1],
                "reduction": ratio(before[1], after[1]),
            },
            "energy_nj": {
                "before": before[2],
                "after": after[2],
                "reduction": ratio(before[2], after[2]),
            },
            "gangs": {
                "slots": len(gangs),
                "commands": sum(length for _, length in gangs),
            },
        }


def optimize_document(
    doc: TraceDocument, source: str = "<trace>", **kwargs: Any
) -> OptimizationResult:
    """One-call optimisation with the default verified pipeline."""
    return TraceOptimizer(**kwargs).optimize(doc, source=source)
