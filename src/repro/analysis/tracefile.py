"""The on-disk AAP trace document and its recorder.

A *trace document* is the self-contained artefact ``repro
verify-trace`` consumes: the recorded command stream (with window
marks), the batched scheduler's charge log, the run's per-mnemonic
ledger totals, and enough platform context — sub-array geometry, the
hash-table row layout, the timing constants — for the verifier to
re-derive every row-designation and cost rule without the platform
that produced it.

Format (JSON, ``"format": "repro-aap-trace/1"``)::

    {
      "format":  "repro-aap-trace/1",
      "engine":  "scalar" | "bulk",
      "complete": true,          # the command stream covers the full run
      "cold_start": false,       # data rows assumed initialised at t=0
      "geometry": {"rows", "cols", "compute_rows", "data_rows"},
      "layout":  {"kmer_rows", "value_rows", "temp_rows"} | null,
      "timing":  {"t_ras", "t_rp", "t_rcd", "t_bl", "t_dpu_clk"},
      "commands": [{"i", "op", "sub", "rows", "payload"?}, ...],
      "marks":   [[position, label], ...],
      "charges": [{"op", "sub", "count", "time_ns"}, ...],
      "flushes": [{"at", "serial_ns", "makespan_ns", "commands"}, ...],
      "ledger":  {"time_ns", "energy_nj", "commands": {mnemonic: count}},
      "meta":    {...}
    }

``complete`` is True for scalar runs (every command traced one by
one); the bulk engine mutates bit planes directly and charges through
the batched scheduler, so its documents carry a partial trace and the
verifier leans on the charge log instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.trace import ChargeLog, CommandTrace
from repro.errors import TraceFormatError

__all__ = [
    "FORMAT",
    "TraceDocument",
    "TraceRecorder",
    "load_document",
    "save_document",
]

FORMAT = "repro-aap-trace/1"

#: timing fields the verifier needs to rebuild latency tables
_TIMING_FIELDS = ("t_ras", "t_rp", "t_rcd", "t_bl", "t_dpu_clk")


@dataclass
class TraceDocument:
    """A parsed trace document (see the module docstring for the schema)."""

    engine: str
    trace: CommandTrace
    charge_log: ChargeLog
    geometry: dict[str, int]
    layout: dict[str, int] | None = None
    timing: dict[str, float] | None = None
    ledger: dict[str, Any] | None = None
    complete: bool = True
    cold_start: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict:
        trace_doc = self.trace.to_json()
        doc: dict[str, Any] = {
            "format": FORMAT,
            "engine": self.engine,
            "complete": self.complete,
            "cold_start": self.cold_start,
            "geometry": dict(self.geometry),
            "layout": dict(self.layout) if self.layout is not None else None,
            "timing": dict(self.timing) if self.timing is not None else None,
            "commands": trace_doc["commands"],
            "marks": trace_doc["marks"],
            "ledger": self.ledger,
            "meta": dict(self.meta),
        }
        doc.update(self.charge_log.to_json())
        return doc

    @classmethod
    def from_json(cls, doc: Any, source: str = "<trace>") -> "TraceDocument":
        """Parse a document; every malformation is a typed input error.

        Raises:
            TraceFormatError: the document is not a trace document
                (wrong/missing format tag, malformed sections).
        """
        if not isinstance(doc, dict):
            raise TraceFormatError(f"{source}: trace document must be an object")
        fmt = doc.get("format")
        if fmt != FORMAT:
            raise TraceFormatError(
                f"{source}: unsupported trace format {fmt!r} "
                f"(expected {FORMAT!r})"
            )
        engine = doc.get("engine")
        if engine not in ("scalar", "bulk"):
            raise TraceFormatError(
                f"{source}: engine must be 'scalar' or 'bulk', got {engine!r}"
            )
        geometry = doc.get("geometry")
        if not isinstance(geometry, dict) or not all(
            isinstance(geometry.get(k), int)
            for k in ("rows", "cols", "compute_rows", "data_rows")
        ):
            raise TraceFormatError(
                f"{source}: geometry needs integer rows/cols/"
                "compute_rows/data_rows"
            )
        layout = doc.get("layout")
        if layout is not None:
            if not isinstance(layout, dict) or not all(
                isinstance(layout.get(k), int)
                for k in ("kmer_rows", "value_rows", "temp_rows")
            ):
                raise TraceFormatError(
                    f"{source}: layout needs integer kmer_rows/"
                    "value_rows/temp_rows"
                )
        timing = doc.get("timing")
        if timing is not None and not isinstance(timing, dict):
            raise TraceFormatError(f"{source}: timing must be an object")
        ledger = doc.get("ledger")
        if ledger is not None and not isinstance(ledger, dict):
            raise TraceFormatError(f"{source}: ledger must be an object")
        try:
            trace = CommandTrace.from_json(doc)
            charge_log = ChargeLog.from_json(doc)
        except ValueError as exc:
            raise TraceFormatError(f"{source}: {exc}") from None
        meta = doc.get("meta")
        return cls(
            engine=engine,
            trace=trace,
            charge_log=charge_log,
            geometry={k: int(v) for k, v in geometry.items()},
            layout=layout,
            timing=timing,
            ledger=ledger,
            complete=bool(doc.get("complete", engine == "scalar")),
            cold_start=bool(doc.get("cold_start", False)),
            meta=meta if isinstance(meta, dict) else {},
        )


def save_document(path: "str | Path", doc: TraceDocument) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc.to_json(), indent=1), encoding="utf-8")
    return path


def load_document(path: "str | Path") -> TraceDocument:
    """Load and parse a trace document file.

    Raises:
        TraceFormatError: unreadable file or malformed document.
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise TraceFormatError(f"cannot read {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path} is not JSON: {exc}") from None
    return TraceDocument.from_json(raw, source=str(path))


class TraceRecorder:
    """Attach trace + charge-log capture to a platform for one run.

    Usage::

        recorder = TraceRecorder(pim, engine="scalar")
        with recorder:
            assemble_with_pim(reads, k=k, pim=pim, engine="scalar")
        doc = recorder.document()

    The recorder snapshots the geometry, the scaled hash-table layout
    and the timing constants at attach time and folds the run's ledger
    totals into the document at :meth:`document` time.
    """

    def __init__(self, pim: Any, engine: str) -> None:
        if engine not in ("scalar", "bulk"):
            raise ValueError("engine must be 'scalar' or 'bulk'")
        self.pim = pim
        self.engine = engine
        self.trace = CommandTrace()
        self.charge_log = ChargeLog()

    def __enter__(self) -> "TraceRecorder":
        self.pim.controller.attach_trace(self.trace)
        self.pim.controller.attach_charge_log(self.charge_log)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.pim.controller.attach_trace(None)
        self.pim.controller.attach_charge_log(None)

    def document(self, **meta: Any) -> TraceDocument:
        from repro.mapping.kmer_layout import scaled_layout

        sub_geom = self.pim.geometry.bank.mat.subarray
        layout = scaled_layout(sub_geom)
        timing = self.pim.controller.timing
        totals = self.pim.stats.totals()
        return TraceDocument(
            engine=self.engine,
            trace=self.trace,
            charge_log=self.charge_log,
            geometry={
                "rows": int(sub_geom.rows),
                "cols": int(sub_geom.cols),
                "compute_rows": int(sub_geom.compute_rows),
                "data_rows": int(sub_geom.data_rows),
            },
            layout={
                "kmer_rows": layout.kmer_rows,
                "value_rows": layout.value_rows,
                "temp_rows": layout.temp_rows,
            },
            timing={f: float(getattr(timing, f)) for f in _TIMING_FIELDS},
            ledger={
                "time_ns": totals.time_ns,
                "energy_nj": totals.energy_nj,
                "commands": {m: int(c) for m, c in totals.commands.items()},
            },
            complete=(self.engine == "scalar"),
            cold_start=False,
            meta=dict(meta),
        )
