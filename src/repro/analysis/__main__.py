"""``python -m repro.analysis`` — the full static-analysis gate.

Runs, in order:

1. the AST lint pass over ``src/repro`` (rules ``L00x``),
2. the gated mypy check of the curated strict module list (``T001``;
   reported as skipped when mypy is not installed),
3. a trace self-check: a small seeded assembly is recorded and
   verified under both execution engines (rules ``V00x``/``C00x``)
   and must come back finding-free; the scalar stream is additionally
   run through the verified trace optimizer, whose rewrite must be
   proven equivalent (``E00x``) and re-verify finding-free.

Exit codes follow :mod:`repro.analysis.findings`: 0 clean, 1 findings,
3 on an internal :class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import sys

from repro.analysis.findings import EXIT_RUNTIME, FindingReport
from repro.analysis.lint import lint_tree
from repro.analysis.typecheck import typecheck
from repro.errors import ReproError


def _self_check(report: FindingReport) -> dict[str, int]:
    """Record + verify a seeded pipeline under both engines."""
    from repro.analysis.tracefile import TraceRecorder
    from repro.analysis.verifier import verify_document
    from repro.assembly.pipeline import _sized_device, assemble_with_pim
    from repro.genome import ReadSimulator, synthetic_chromosome

    entries: dict[str, int] = {}
    for engine in ("scalar", "bulk"):
        reference = synthetic_chromosome(300, seed=7)
        simulator = ReadSimulator(read_length=40, seed=1)
        reads = simulator.sample(
            reference, simulator.reads_for_coverage(len(reference), 6)
        )
        pim = _sized_device(reads, 11)
        recorder = TraceRecorder(pim, engine=engine)
        with recorder:
            assemble_with_pim(reads, k=11, pim=pim, engine=engine)
        doc = recorder.document(workload="self-check")
        report.extend(verify_document(doc, source=f"<self-check:{engine}>"))
        entries[engine] = len(doc.trace)
        if engine == "scalar":
            from repro.analysis.optimizer import optimize_document

            # already verified above — skip the optimizer's own pass
            result = optimize_document(
                doc, source=f"<self-check:{engine}:opt>", verify_input=False
            )
            report.extend(result.report)
            report.extend(
                verify_document(
                    result.document, source=f"<self-check:{engine}:opt>"
                )
            )
            entries[f"{engine}-optimized"] = len(result.document.trace)
    return entries


def main(argv: "list[str] | None" = None) -> int:
    del argv
    report = FindingReport()

    lint_report = lint_tree()
    report.extend(lint_report)
    print(f"lint: {len(lint_report)} finding(s)")

    type_report, ran = typecheck()
    report.extend(type_report)
    if ran:
        print(f"typecheck: {len(type_report)} finding(s)")
    else:
        print("typecheck: SKIPPED (mypy not installed)")

    try:
        entries = _self_check(report)
    except ReproError as exc:
        print(f"trace self-check failed: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    print(
        "trace self-check: "
        + ", ".join(f"{eng} ({n} commands)" for eng, n in entries.items())
    )

    if report.findings:
        print(report.render(), file=sys.stderr)
    print(f"total: {len(report)} finding(s)")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
