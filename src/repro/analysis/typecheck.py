"""Gated strict type checking of the annotated core.

mypy is a dev-only dependency: CI installs it for the static-analysis
job, but the library itself must import and run on a bare interpreter.
This wrapper therefore *gates* — when mypy is importable it runs the
curated strict module list and converts diagnostics into findings
(rule ``T001``); when it is not, :func:`typecheck` reports a skip and
zero findings.

The checked list is deliberately narrow: the stable, fully annotated
contracts other layers build against (the error taxonomy, the ISA
dataclasses, the cost model, the trace format, and this analysis
package itself).  The mypy configuration lives in ``pyproject.toml``
(``[tool.mypy]``); this module only selects the targets.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

from repro.analysis.findings import FindingReport

__all__ = ["CHECKED_MODULES", "mypy_available", "typecheck"]

#: modules under src/repro held to strict annotations
CHECKED_MODULES = (
    "errors.py",
    "core/isa.py",
    "core/timing.py",
    "core/trace.py",
    "analysis/findings.py",
    "analysis/tracefile.py",
    "analysis/verifier.py",
    "analysis/equiv.py",
    "analysis/optimizer.py",
    "analysis/lint.py",
    "analysis/typecheck.py",
)


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def typecheck(root: "Path | str | None" = None) -> tuple[FindingReport, bool]:
    """Run mypy over :data:`CHECKED_MODULES`.

    Returns:
        ``(report, ran)`` — ``ran`` is False when mypy is not installed
        (the report is then empty and the caller should say "skipped",
        not "clean").
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    report = FindingReport()
    if not mypy_available():
        return report, False
    targets = [str(root / m) for m in CHECKED_MODULES]
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--no-error-summary",
            "--hide-error-context",
            *targets,
        ],
        capture_output=True,
        text=True,
        cwd=str(root.parent.parent),  # repo root, where pyproject.toml lives
    )
    for line in proc.stdout.splitlines():
        # mypy line format: path:line: error: message  [code]
        parts = line.split(":", 3)
        if len(parts) < 4 or "error" not in parts[2]:
            continue
        path, lineno = parts[0], parts[1]
        try:
            location = int(lineno)
        except ValueError:
            location = None
        report.add(
            "T001",
            parts[3].strip(),
            source=path,
            location=location,
        )
    if proc.returncode not in (0, 1):
        report.add(
            "T001",
            "mypy crashed: "
            + (proc.stderr.strip().splitlines() or ["unknown error"])[-1],
            source="mypy",
        )
    return report, True
