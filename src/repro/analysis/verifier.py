"""Dataflow verification of recorded AAP command streams.

The paper's correctness story rests on hard ISA rules: a type-2/3 AAP
may only land results on designated compute rows, TRA majority needs
three initialised operand rows, and the add-on latch must be loaded
before the sum MUX reads it.  This module checks a recorded command
stream (a :class:`~repro.analysis.tracefile.TraceDocument`, or a live
controller feed through :class:`InlineChecker`) against those rules
and reports typed findings.

Rule catalogue
==============

Stream rules (any document):

=====  ===================================================================
V001   unknown mnemonic (not in :data:`repro.core.isa.ALL_MNEMONICS`)
V002   malformed operands: wrong arity, row out of range, bad payload,
       degenerate self-copy, repeated two-/three-row-activation operand
=====  ===================================================================

Dataflow rules (complete scalar streams):

=====  ===================================================================
V003   read of an uninitialised row (TRA/activation operands included)
V004   latch use-before-load: ``SUM`` with unknown latch state
V005   missing precharge: an activation's destination is one of its own
       activated source rows (type-2/``SUM``; the in-place TRA form
       ``AAP3 src==des`` is legal — Ambit's majority lands on all three
       activated rows)
=====  ===================================================================

Layout rules (inside a ``hashmap:begin``/``end`` window, suspended
inside ``scrub:begin``/``end``):

=====  ===================================================================
V006   copy clobbers a live table row: ``AAP1`` into an occupied k-mer
       slot, or into the value/temp region
V007   operand outside the designated row set: compute destinations off
       the compute rows, host writes into the k-mer region
=====  ===================================================================

Accounting rules (complete scalar documents carrying ledger totals):

=====  ===================================================================
V008   cost-table-inconsistent timing: ledger time differs from
       Σ count × latency, or an unpriced mnemonic was charged
V009   trace/ledger command-count mismatch (``AAP1`` ledger count folds
       the ``ROW_INIT`` trace entries, which hardware issues as AAP1)
=====  ===================================================================

Charge-log rules (bulk documents):

=====  ===================================================================
C001   charge with an unknown mnemonic
C002   charge with a non-positive count
C003   charge total inconsistent with count × cost-table latency
C004   flush math wrong: serial ≠ Σ charges, makespan ≠ busiest
       resource, or makespan > serial (non-monotone timing)
C005   charges left unflushed at end of stream
=====  ===================================================================
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.analysis.findings import FindingReport
from repro.analysis.tracefile import TraceDocument
from repro.core.isa import ALL_MNEMONICS
from repro.core.timing import (
    DEFAULT_TIMING,
    TimingParameters,
    command_latency_table,
)
from repro.core.trace import ChargeLog, TraceEntry
from repro.errors import TraceHazardError

__all__ = [
    "InlineChecker",
    "StreamVerifier",
    "verify_charge_log",
    "verify_document",
]

#: mnemonics whose ledger counts a complete scalar trace must match 1:1
_LEDGER_MATCHED = (
    "AAP2",
    "AAP3",
    "SUM",
    "LATCH_LD",
    "MEM_WR",
    "MEM_RD",
    "DPU",
)

_REL_TOL = 1e-9
_ABS_TOL = 1e-6


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


class StreamVerifier:
    """Streaming rule engine over one command stream.

    Feed entries in issue order via :meth:`feed` (and window markers
    via :meth:`feed_mark`), then call :meth:`finish`.  Findings
    accumulate in :attr:`report`.

    Args:
        geometry: ``{"rows", "cols", "compute_rows", "data_rows"}`` of
            the sub-arrays the stream targets.
        layout: hash-table row regions (enables V006/V007 inside
            hashmap windows); ``None`` disables the layout rules.
        cold_start: treat *all* rows as uninitialised at stream start
            (crafted test streams); the default assumes data rows hold
            pre-loaded content and only compute rows start undefined.
        check_dataflow: enable V003-V007 (complete streams only — a
            partial stream would see reads of rows whose writes were
            never recorded).
        source: artefact name used in findings.
    """

    def __init__(
        self,
        geometry: dict,
        layout: dict | None = None,
        cold_start: bool = False,
        check_dataflow: bool = True,
        source: str = "<trace>",
        report: FindingReport | None = None,
    ) -> None:
        self.report = report if report is not None else FindingReport()
        self.source = source
        self.rows = int(geometry["rows"])
        self.cols = int(geometry["cols"])
        self.data_rows = int(geometry["data_rows"])
        self.layout = layout
        self.cold_start = cold_start
        self.check_dataflow = check_dataflow
        self._index = 0
        #: per-subarray set of initialised rows (dataflow state)
        self._defined: dict[tuple[int, ...], set[int]] = {}
        #: per-subarray "latch holds a known value" flag
        self._latch_known: dict[tuple[int, ...], bool] = {}
        #: per-subarray occupied k-mer slots inside the hashmap window
        self._inserted: dict[tuple[int, ...], set[int]] = {}
        self._in_hashmap = False
        self._in_scrub = False

    # ----- helpers ---------------------------------------------------------

    def _flag(self, rule: str, message: str, index: int | None = None) -> None:
        self.report.add(
            rule,
            message,
            source=self.source,
            location=self._index if index is None else index,
        )

    def _defined_rows(self, sub: tuple[int, ...]) -> set[int]:
        if sub not in self._defined:
            if self.cold_start:
                self._defined[sub] = set()
            else:
                # data rows hold pre-existing content; compute rows
                # behind the modified decoder always start undefined
                self._defined[sub] = set(range(self.data_rows))
        return self._defined[sub]

    def _check_read(self, sub: tuple[int, ...], row: int, what: str) -> None:
        if not self.check_dataflow:
            return
        if row not in self._defined_rows(sub):
            self._flag(
                "V003",
                f"{what} reads uninitialised row {row} of sub-array {sub}",
            )

    def _define(self, sub: tuple[int, ...], row: int) -> None:
        if self.check_dataflow:
            self._defined_rows(sub).add(row)

    def _is_compute(self, row: int) -> bool:
        return row >= self.data_rows

    def _rows_ok(
        self, mnemonic: str, sub: tuple[int, ...], rows: tuple[int, ...]
    ) -> bool:
        for row in rows:
            if not 0 <= row < self.rows:
                self._flag(
                    "V002",
                    f"{mnemonic} row {row} outside sub-array "
                    f"[0, {self.rows}) at {sub}",
                )
                return False
        return True

    # ----- window marks ----------------------------------------------------

    def feed_mark(self, label: str) -> None:
        if label == "hashmap:begin":
            self._in_hashmap = True
        elif label == "hashmap:end":
            self._in_hashmap = False
            self._inserted.clear()
        elif label == "scrub:begin":
            self._in_scrub = True
        elif label == "scrub:end":
            self._in_scrub = False

    # ----- layout (window) rules -------------------------------------------

    def _layout_rules(
        self,
        mnemonic: str,
        sub: tuple[int, ...],
        rows: tuple[int, ...],
    ) -> None:
        if self.layout is None or not self._in_hashmap or self._in_scrub:
            return
        kmer_rows = int(self.layout["kmer_rows"])
        value_end = kmer_rows + int(self.layout["value_rows"])
        temp_end = value_end + int(self.layout["temp_rows"])

        if mnemonic == "AAP1":
            des = rows[1]
            if des < kmer_rows:
                slots = self._inserted.setdefault(tuple(sub), set())
                if des in slots:
                    self._flag(
                        "V006",
                        f"AAP1 clobbers live k-mer slot row {des} of "
                        f"sub-array {sub} (already inserted this window)",
                    )
                slots.add(des)
            elif des < temp_end:
                region = "value" if des < value_end else "temp"
                self._flag(
                    "V006",
                    f"AAP1 copy into the {region} region (row {des}) of "
                    f"sub-array {sub} during the hashmap window",
                )
        elif mnemonic in ("AAP2", "AAP3", "SUM"):
            des = rows[-1]
            if not self._is_compute(des):
                self._flag(
                    "V007",
                    f"{mnemonic} destination row {des} of sub-array {sub} "
                    f"is outside the designated compute rows "
                    f"[{self.data_rows}, {self.rows}) during the hashmap "
                    "window",
                )
        elif mnemonic in ("MEM_WR", "ROW_INIT"):
            des = rows[0]
            if des < kmer_rows:
                self._flag(
                    "V007",
                    f"{mnemonic} host write into the k-mer region "
                    f"(row {des}) of sub-array {sub} during the hashmap "
                    "window (only temp/value rows take host writes)",
                )

    # ----- the per-entry rule engine ---------------------------------------

    def feed(
        self,
        mnemonic: str,
        subarray: tuple[int, ...],
        rows: tuple[int, ...],
        payload: tuple[int, ...] | None = None,
    ) -> int:
        """Check one command; returns the number of new findings."""
        before = len(self.report)
        sub = tuple(subarray)
        if mnemonic not in ALL_MNEMONICS:
            self._flag("V001", f"unknown mnemonic {mnemonic!r}")
            self._index += 1
            return len(self.report) - before

        arity = {
            "AAP1": 2,
            "AAP2": 3,
            "AAP3": 4,
            "SUM": 3,
            "LATCH_LD": 1,
            "LATCH_CLR": 0,
            "ROW_INIT": 1,
            "MEM_WR": 1,
            "MEM_RD": 1,
        }
        if mnemonic == "DPU":
            if len(rows) > 1:
                self._flag("V002", f"DPU takes at most one row, got {len(rows)}")
                self._index += 1
                return len(self.report) - before
        elif len(rows) != arity[mnemonic]:
            self._flag(
                "V002",
                f"{mnemonic} takes {arity[mnemonic]} row operand(s), "
                f"got {len(rows)}",
            )
            self._index += 1
            return len(self.report) - before
        if not self._rows_ok(mnemonic, sub, rows):
            self._index += 1
            return len(self.report) - before

        if mnemonic == "AAP1":
            src, des = rows
            if src == des:
                self._flag(
                    "V002",
                    f"AAP1 with src == des (row {src}) is a dead command "
                    "(RowClone onto itself)",
                )
            else:
                self._check_read(sub, src, "AAP1")
                self._define(sub, des)
            self._layout_rules(mnemonic, sub, rows)
        elif mnemonic == "AAP2":
            s1, s2, des = rows
            if s1 == s2:
                self._flag(
                    "V002",
                    f"AAP2 requires two distinct source rows, got {s1} twice",
                )
            if des in (s1, s2):
                self._flag(
                    "V005",
                    f"AAP2 destination row {des} is an activated source — "
                    "missing precharge between activations",
                )
            self._check_read(sub, s1, "AAP2")
            if s2 != s1:
                self._check_read(sub, s2, "AAP2")
            if des not in (s1, s2):
                self._define(sub, des)
            self._layout_rules(mnemonic, sub, rows)
        elif mnemonic == "AAP3":
            s1, s2, s3, des = rows
            if len({s1, s2, s3}) != 3:
                self._flag(
                    "V002",
                    f"AAP3 requires three distinct source rows, got "
                    f"({s1}, {s2}, {s3})",
                )
            for s in dict.fromkeys((s1, s2, s3)):
                self._check_read(sub, s, "AAP3")
            # in-place TRA (des == a source) is legal: the majority
            # lands on all three activated rows
            self._define(sub, des)
            self._latch_known[sub] = True  # TRA captures the carry
            self._layout_rules(mnemonic, sub, rows)
        elif mnemonic == "SUM":
            s1, s2, des = rows
            if s1 == s2:
                self._flag(
                    "V002",
                    f"SUM requires two distinct addend rows, got {s1} twice",
                )
            if des in (s1, s2):
                self._flag(
                    "V005",
                    f"SUM destination row {des} is an activated addend — "
                    "missing precharge between activations",
                )
            if self.check_dataflow and not self._latch_known.get(sub, False):
                self._flag(
                    "V004",
                    f"SUM on sub-array {sub} consumes the carry latch "
                    "before any LATCH_LD/TRA/LATCH_CLR set it",
                )
            self._check_read(sub, s1, "SUM")
            if s2 != s1:
                self._check_read(sub, s2, "SUM")
            if des not in (s1, s2):
                self._define(sub, des)
            self._layout_rules(mnemonic, sub, rows)
        elif mnemonic == "LATCH_LD":
            self._check_read(sub, rows[0], "LATCH_LD")
            self._latch_known[sub] = True
        elif mnemonic == "LATCH_CLR":
            self._latch_known[sub] = True
        elif mnemonic == "ROW_INIT":
            if payload is None or len(payload) != 1 or payload[0] not in (0, 1):
                self._flag(
                    "V002",
                    "ROW_INIT payload must be a single 0/1 fill value, "
                    f"got {payload!r}",
                )
            self._define(sub, rows[0])
            self._layout_rules(mnemonic, sub, rows)
        elif mnemonic == "MEM_WR":
            if payload is None or len(payload) != self.cols:
                got = "none" if payload is None else str(len(payload))
                self._flag(
                    "V002",
                    f"MEM_WR payload must cover the {self.cols}-column "
                    f"row, got {got} bits",
                )
            self._define(sub, rows[0])
            self._layout_rules(mnemonic, sub, rows)
        elif mnemonic == "MEM_RD":
            self._check_read(sub, rows[0], "MEM_RD")
        elif mnemonic == "DPU":
            if rows:
                self._check_read(sub, rows[0], "DPU")

        self._index += 1
        return len(self.report) - before

    def feed_entry(self, entry: TraceEntry) -> int:
        return self.feed(entry.mnemonic, entry.subarray, entry.rows, entry.payload)

    def finish(self) -> FindingReport:
        return self.report


def _iter_with_marks(doc: TraceDocument) -> Iterable[tuple[str, object]]:
    """Merge entries and marks into one ordered stream."""
    marks = sorted(doc.trace.marks, key=lambda m: m[0])
    mi = 0
    for entry in doc.trace:
        while mi < len(marks) and marks[mi][0] <= entry.index:
            yield "mark", marks[mi][1]
            mi += 1
        yield "entry", entry
    while mi < len(marks):
        yield "mark", marks[mi][1]
        mi += 1


def _doc_timing(doc: TraceDocument) -> TimingParameters:
    if not doc.timing:
        return DEFAULT_TIMING
    fields = {k: float(v) for k, v in doc.timing.items()}
    return TimingParameters(**fields)


def verify_charge_log(
    log: ChargeLog,
    timing: TimingParameters,
    report: FindingReport,
    source: str = "<charge-log>",
) -> None:
    """Check a batched-scheduler charge log (rules C001-C005)."""
    latencies = command_latency_table(timing)
    charges = log.charges
    flushes = log.flushes
    window_start = 0
    flush_points = list(flushes)
    fi = 0
    serial = 0.0
    commands = 0
    busy: dict[tuple, float] = {}
    for pos, (mnemonic, sub, count, time_ns) in enumerate(charges):
        while fi < len(flush_points) and flush_points[fi][0] <= pos:
            _check_flush(
                flush_points[fi], serial, busy, commands, report, source
            )
            serial, commands, busy = 0.0, 0, {}
            window_start = flush_points[fi][0]
            fi += 1
        if mnemonic not in latencies:
            report.add(
                "C001",
                f"charge of unknown mnemonic {mnemonic!r}",
                source=source,
                location=pos,
            )
            continue
        if count <= 0:
            report.add(
                "C002",
                f"charge of {mnemonic} with non-positive count {count}",
                source=source,
                location=pos,
            )
            continue
        expected = count * latencies[mnemonic]
        if not _close(time_ns, expected):
            report.add(
                "C003",
                f"charge of {count}x {mnemonic} records {time_ns:.3f} ns, "
                f"cost table says {expected:.3f} ns",
                source=source,
                location=pos,
            )
        serial += time_ns
        commands += count
        if mnemonic == "DPU":
            busy[("dpu", sub[0], sub[1])] = (
                busy.get(("dpu", sub[0], sub[1]), 0.0) + time_ns
            )
        else:
            busy[tuple(sub)] = busy.get(tuple(sub), 0.0) + time_ns
            if mnemonic in ("MEM_RD", "MEM_WR"):
                grb = ("grb", sub[0], sub[1])
                busy[grb] = busy.get(grb, 0.0) + time_ns
    while fi < len(flush_points):
        _check_flush(flush_points[fi], serial, busy, commands, report, source)
        serial, commands, busy = 0.0, 0, {}
        fi += 1
    del window_start
    if commands:
        report.add(
            "C005",
            f"{commands} command(s) charged after the last flush were "
            "never flushed to the ledger",
            source=source,
            location=len(charges),
        )


def _check_flush(
    flush: tuple[int, float, float, int],
    serial: float,
    busy: dict,
    commands: int,
    report: FindingReport,
    source: str,
) -> None:
    at, serial_rec, makespan_rec, commands_rec = flush
    if not _close(serial_rec, serial):
        report.add(
            "C004",
            f"flush at charge #{at} records serial {serial_rec:.3f} ns, "
            f"charges sum to {serial:.3f} ns",
            source=source,
            location=at,
        )
    makespan = max(busy.values(), default=0.0)
    if not _close(makespan_rec, makespan):
        report.add(
            "C004",
            f"flush at charge #{at} records makespan {makespan_rec:.3f} ns, "
            f"busiest resource is {makespan:.3f} ns",
            source=source,
            location=at,
        )
    if makespan_rec > serial_rec + _ABS_TOL:
        report.add(
            "C004",
            f"flush at charge #{at} has makespan {makespan_rec:.3f} ns "
            f"exceeding serial time {serial_rec:.3f} ns (non-monotone "
            "timing)",
            source=source,
            location=at,
        )
    if commands_rec != commands:
        report.add(
            "C004",
            f"flush at charge #{at} records {commands_rec} commands, "
            f"charges sum to {commands}",
            source=source,
            location=at,
        )


def _verify_accounting(
    doc: TraceDocument, report: FindingReport, source: str
) -> None:
    """Ledger-side rules V008/V009 for complete scalar documents."""
    ledger = doc.ledger or {}
    counts = {str(k): int(v) for k, v in (ledger.get("commands") or {}).items()}
    if not counts:
        return
    if any(m.startswith("VRF_") for m in counts):
        # verified runs recharge retried ops without re-tracing them;
        # count/time folding is only exact for unverified streams
        return
    timing = _doc_timing(doc)
    latencies = command_latency_table(timing)
    expected_time = 0.0
    priced = True
    for mnemonic, count in counts.items():
        if mnemonic not in latencies:
            report.add(
                "V008",
                f"ledger charges {count}x {mnemonic}, which the cost "
                "table does not price",
                source=source,
            )
            priced = False
            continue
        expected_time += count * latencies[mnemonic]
    time_ns = float(ledger.get("time_ns", 0.0))
    if priced and not _close(time_ns, expected_time):
        report.add(
            "V008",
            f"ledger total {time_ns:.3f} ns is inconsistent with the "
            f"cost table (sum of count x latency = {expected_time:.3f} ns)",
            source=source,
        )

    from collections import Counter

    traced: Counter = Counter()
    for entry in doc.trace:
        traced[entry.mnemonic] += 1
    # hardware issues ROW_INIT as an AAP1 (RowClone off the constant
    # row); the ledger charges it under AAP1
    folded_aap1 = traced["AAP1"] + traced["ROW_INIT"]
    if counts.get("AAP1", 0) != folded_aap1:
        report.add(
            "V009",
            f"ledger counts {counts.get('AAP1', 0)} AAP1 but the trace "
            f"holds {traced['AAP1']} AAP1 + {traced['ROW_INIT']} ROW_INIT "
            f"= {folded_aap1}",
            source=source,
        )
    for mnemonic in _LEDGER_MATCHED:
        if counts.get(mnemonic, 0) != traced[mnemonic]:
            report.add(
                "V009",
                f"ledger counts {counts.get(mnemonic, 0)} {mnemonic} but "
                f"the trace holds {traced[mnemonic]}",
                source=source,
            )
    if "LATCH_CLR" in counts:
        report.add(
            "V009",
            "LATCH_CLR is a free precharge side effect and must not be "
            "charged to the ledger",
            source=source,
        )


def verify_document(doc: TraceDocument, source: str = "<trace>") -> FindingReport:
    """Run every applicable rule over one trace document."""
    report = FindingReport()
    verifier = StreamVerifier(
        geometry=doc.geometry,
        layout=doc.layout,
        cold_start=doc.cold_start,
        check_dataflow=doc.complete,
        source=source,
        report=report,
    )
    for kind, item in _iter_with_marks(doc):
        if kind == "mark":
            verifier.feed_mark(item)  # type: ignore[arg-type]
        else:
            verifier.feed_entry(item)  # type: ignore[arg-type]
    verifier.finish()
    verify_charge_log(
        doc.charge_log, _doc_timing(doc), report, source=f"{source}#charges"
    )
    if doc.complete:
        _verify_accounting(doc, report, source=source)
    return report


class InlineChecker:
    """Opt-in live hazard checking during simulation.

    Duck-types the :class:`~repro.core.trace.CommandTrace` recording
    interface (``record``/``mark``), so it plugs straight into
    ``controller.attach_trace``.  Each command is checked as it is
    issued; in ``strict`` mode the first hazard raises
    :class:`~repro.errors.TraceHazardError` at the faulty call site,
    otherwise findings accumulate in :attr:`report`.

    A ``tee`` trace can ride along so a run is simultaneously checked
    and recorded::

        checker = InlineChecker.for_platform(pim, tee=CommandTrace())
        pim.controller.attach_trace(checker)
    """

    def __init__(
        self,
        geometry: dict,
        layout: dict | None = None,
        strict: bool = True,
        tee: Any = None,
    ) -> None:
        self._verifier = StreamVerifier(
            geometry=geometry,
            layout=layout,
            cold_start=False,
            check_dataflow=True,
            source="<inline>",
        )
        self.strict = strict
        self.tee = tee

    @classmethod
    def for_platform(
        cls, pim: Any, strict: bool = True, tee: Any = None
    ) -> "InlineChecker":
        from repro.mapping.kmer_layout import scaled_layout

        sub_geom = pim.geometry.bank.mat.subarray
        layout = scaled_layout(sub_geom)
        return cls(
            geometry={
                "rows": int(sub_geom.rows),
                "cols": int(sub_geom.cols),
                "compute_rows": int(sub_geom.compute_rows),
                "data_rows": int(sub_geom.data_rows),
            },
            layout={
                "kmer_rows": layout.kmer_rows,
                "value_rows": layout.value_rows,
                "temp_rows": layout.temp_rows,
            },
            strict=strict,
            tee=tee,
        )

    @property
    def report(self) -> FindingReport:
        return self._verifier.report

    def record(
        self,
        mnemonic: str,
        subarray: tuple[int, ...],
        rows: tuple[int, ...],
        payload: Any = None,
    ) -> None:
        if self.tee is not None:
            self.tee.record(mnemonic, subarray, rows, payload)
        payload_tuple = (
            tuple(int(b) for b in payload) if payload is not None else None
        )
        new = self._verifier.feed(mnemonic, subarray, tuple(rows), payload_tuple)
        if new and self.strict:
            latest = self.report.findings[-1]
            raise TraceHazardError(str(latest))

    def mark(self, label: str) -> None:
        if self.tee is not None and hasattr(self.tee, "mark"):
            self.tee.mark(label)
        self._verifier.feed_mark(label)
