"""Admission control: per-tenant quotas and typed load shedding.

Admission is the service's first line of graceful degradation: a
submission that would overrun a bound is *shed* with a typed
:class:`~repro.errors.AdmissionError` carrying a stable machine-readable
``reason`` code — never silently dropped, never allowed to wedge the
deployment.  Reason codes:

==================  =====================================================
tenant-unknown      tenant id is empty / malformed
duplicate-job       a job with this name already exists for the tenant
input-too-large     input exceeds the tenant's ``max_input_bytes``
tenant-queue-full   the tenant's own bounded FIFO is at capacity
service-queue-full  the service-wide queued-job bound is reached
breaker-open        the tenant's circuit breaker is open
                    (:class:`~repro.errors.CircuitOpenError`)
==================  =====================================================

The quota model is three numbers per tenant (defaults apply when a
tenant has no explicit quota): how many jobs it may have queued, how
many it may have running at once, and how large one job's input may
be.  The in-flight cap is enforced by the *scheduler* (an over-cap
tenant's jobs wait, they are not shed); the other two shed at submit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionError

__all__ = ["TenantQuota", "AdmissionController"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds.

    Attributes:
        max_queued: jobs the tenant may hold in its FIFO.
        max_in_flight: jobs the tenant may have running concurrently.
        max_input_bytes: largest admissible input payload (``None``
            disables the size check).
    """

    max_queued: int = 8
    max_in_flight: int = 1
    max_input_bytes: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_input_bytes is not None and self.max_input_bytes < 1:
            raise ValueError("max_input_bytes must be >= 1 or None")


class AdmissionController:
    """Decides whether a submission is admitted, and why not if not."""

    def __init__(
        self,
        default_quota: "TenantQuota | None" = None,
        quotas: "dict[str, TenantQuota] | None" = None,
        max_total_queued: int = 64,
    ) -> None:
        if max_total_queued < 1:
            raise ValueError("max_total_queued must be >= 1")
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.max_total_queued = max_total_queued

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def check(
        self,
        tenant: str,
        *,
        input_bytes: int,
        tenant_queued: int,
        total_queued: int,
        known_names: "set[str] | frozenset[str]" = frozenset(),
        name: "str | None" = None,
    ) -> TenantQuota:
        """Admit or raise a typed :class:`AdmissionError`.

        Returns the tenant's effective quota so the caller does not
        look it up twice.
        """
        if not tenant or any(ch.isspace() for ch in tenant):
            raise AdmissionError(
                tenant or "<empty>",
                "tenant-unknown",
                f"tenant id {tenant!r} is empty or contains whitespace",
            )
        if name is not None and name in known_names:
            raise AdmissionError(
                tenant,
                "duplicate-job",
                f"tenant {tenant!r} already submitted a job named "
                f"{name!r}; job names are the at-most-once key",
            )
        quota = self.quota_for(tenant)
        if (
            quota.max_input_bytes is not None
            and input_bytes > quota.max_input_bytes
        ):
            raise AdmissionError(
                tenant,
                "input-too-large",
                f"input of {input_bytes} bytes exceeds tenant "
                f"{tenant!r}'s cap of {quota.max_input_bytes} bytes",
            )
        if tenant_queued >= quota.max_queued:
            raise AdmissionError(
                tenant,
                "tenant-queue-full",
                f"tenant {tenant!r} already has {tenant_queued} job(s) "
                f"queued (cap {quota.max_queued}); retry after some "
                "drain",
            )
        if total_queued >= self.max_total_queued:
            raise AdmissionError(
                tenant,
                "service-queue-full",
                f"service queue is at its global cap of "
                f"{self.max_total_queued} job(s); retry after some drain",
            )
        return quota
